"""Domain scenario 5 — from search to serving: export, registry, inference.

A FastFT search is paid once; its product should serve traffic forever.
This script walks the full serving path:

1. *Search & export*: run a search, fit the downstream model on the
   transformed training data, and package both as a
   ``PipelineArtifact`` with a content-hashed provenance manifest.
2. *Registry*: publish two versions into an ``ArtifactRegistry``, promote
   one to the ``prod`` tag, and resolve through the tag.
3. *Compiled plans*: the artifact applies a CSE-deduplicated, vectorized
   program that is byte-identical to ``TransformationPlan.apply``.
4. *Serving*: a micro-batching ``InferenceServer`` answers JSON
   ``/predict`` requests over a real socket.

Run:  python examples/export_and_serve.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request

import numpy as np

from repro import api
from repro.data import load_dataset


def main() -> None:
    ds = load_dataset("pima_indian", scale=0.3, seed=0)
    result = api.search(
        ds.X, ds.y, ds.task, episodes=4, steps_per_episode=3,
        cold_start_episodes=1, seed=0, feature_names=ds.feature_names,
    )
    print(f"search    : {result.base_score:.4f} -> {result.best_score:.4f}")

    with tempfile.TemporaryDirectory() as root:
        # -- export two versions, promote the second to prod ------------------
        artifact, v1 = api.export(
            result, ds.X, ds.y, registry=root, name="pima"
        )
        _, v2 = api.export(
            result, ds.X, ds.y, registry=root, name="pima", tag="prod"
        )
        print(f"published : {v1} and {v2}; tag prod -> {v2}")
        print(f"hash      : {artifact.manifest['content_hash'][:16]}…")

        # -- compiled execution is byte-identical to the interpreter ----------
        served = api.load_pipeline(registry=root, name="pima", tag="prod")
        compiled = served.compiled
        assert np.array_equal(served.transform(ds.X), result.plan.apply(ds.X))
        print(
            f"compiled  : {compiled.n_nodes} nodes -> "
            f"{len(compiled.instructions)} instructions "
            f"(CSE merged {compiled.n_merged})"
        )

        # -- serve over a real socket ----------------------------------------
        with api.serve(served, port=0) as server:
            rows = ds.X[:3].tolist()
            req = urllib.request.Request(
                server.url + "/predict",
                data=json.dumps({"rows": rows}).encode(),
                headers={"Content-Type": "application/json"},
            )
            body = json.loads(urllib.request.urlopen(req, timeout=10).read())
            print(f"served    : {server.url}/predict -> {body['predictions']}")
            health = json.loads(
                urllib.request.urlopen(server.url + "/healthz", timeout=10).read()
            )
            print(f"health    : {health['status']}, batcher {health['batcher']}")


if __name__ == "__main__":
    main()
