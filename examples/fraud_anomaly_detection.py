"""Domain scenario 2 — transaction anomaly detection (the paper's D-task rows).

Detection datasets (Mammography, Thyroid, SMTP in Table I) are heavily
imbalanced: a few percent of samples violate a hidden relationship between
indicators. FastFT's job is to construct the ratio/difference features that
expose the violation, lifting the AUC of a plain random-forest detector.

The script also contrasts FastFT with OpenFE (the strongest non-RL baseline
on detection rows) on both AUC and wall time — the Fig 9 trade-off in
miniature.

Run:  python examples/fraud_anomaly_detection.py
"""

from __future__ import annotations

import time

from repro import api
from repro.baselines import OpenFE
from repro.core import FastFTConfig
from repro.data import load_dataset


def main() -> None:
    dataset = load_dataset("mammography", scale=0.08, seed=0)
    positives = int(dataset.y.sum())
    print(
        f"Detection dataset: {dataset.n_samples} samples, "
        f"{positives} anomalies ({100 * positives / dataset.n_samples:.1f}%)"
    )

    config = FastFTConfig(
        episodes=8,
        steps_per_episode=5,
        cold_start_episodes=2,
        retrain_every_episodes=2,
        component_epochs=4,
        cv_splits=3,
        rf_estimators=8,
        seed=0,
    )
    start = time.perf_counter()
    # time_budget caps the search wall time — production jobs stop cleanly
    # with the best plan found so far instead of overrunning.
    fastft = api.search(
        dataset.X, dataset.y, task="detection", config=config,
        feature_names=dataset.feature_names, time_budget=120.0,
    )
    fastft_time = time.perf_counter() - start

    openfe = OpenFE(cv_splits=3, rf_estimators=8, seed=0).fit(
        dataset.X, dataset.y, task="detection", feature_names=dataset.feature_names
    )

    print("\nMethod    AUC      wall(s)")
    print(f"base      {fastft.base_score:.3f}    -")
    print(f"OpenFE    {openfe.best_score:.3f}    {openfe.wall_time:.1f}")
    print(f"FastFT    {fastft.best_score:.3f}    {fastft_time:.1f}")

    print("\nDetector features FastFT constructed:")
    new_features = [e for e in fastft.expressions() if "(" in e]
    for expr in new_features[:6]:
        print(f"  {expr}")

    # The plan generalizes: apply to a freshly sampled slice of the stream.
    fresh = load_dataset("mammography", scale=0.04, seed=99)
    transformed = fastft.transform(fresh.X)
    print(f"\nPlan re-applied to a new batch: {transformed.shape[0]}x{transformed.shape[1]}")


if __name__ == "__main__":
    main()
