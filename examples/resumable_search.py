"""Domain scenario 4 — long-running searches: sessions, callbacks, resume.

The blocking ``FastFT.fit`` call is fine for minutes-long runs; production
searches need to pause, observe, budget, and survive restarts. This script
shows the session-based workflow end to end:

1. *Stepping*: a ``SearchSession`` is an iterator of ``StepRecord``s — the
   caller owns the loop and can stop, inspect, or checkpoint at any step.
2. *Callbacks*: ``TimeBudget``, ``EarlyStopping`` and ``HistoryCollector``
   observe a run without touching engine code.
3. *Checkpoint → resume*: the search is interrupted mid-episode, restored
   from disk, and finishes with bit-identical results to an uninterrupted
   run (seeded-RNG state travels with the checkpoint).
4. *Cached batches*: ``api.run_batch`` shares an ``EvaluationCache`` so
   repeated feature matrices never pay for cross-validation twice.

Run:  python examples/resumable_search.py
"""

from __future__ import annotations

import os
import tempfile

from repro import api
from repro.core import EarlyStopping, FastFTConfig, HistoryCollector, SearchSession
from repro.data import load_dataset


def main() -> None:
    dataset = load_dataset("wine_quality_white", scale=0.15, seed=0)
    print(f"Dataset: {dataset.name} ({dataset.n_samples}x{dataset.n_features}, {dataset.task})")

    config = FastFTConfig(
        episodes=6,
        steps_per_episode=4,
        cold_start_episodes=2,
        retrain_every_episodes=2,
        component_epochs=3,
        cv_splits=3,
        rf_estimators=6,
        seed=0,
    )

    # 1+2. Step the session manually with observers attached.
    collector = HistoryCollector()
    session = SearchSession(
        dataset.X,
        dataset.y,
        task=dataset.task,
        config=config,
        feature_names=dataset.feature_names,
        callbacks=[collector, EarlyStopping(patience=4)],
    )
    ckpt = os.path.join(tempfile.gettempdir(), "fastft_demo.ckpt")
    for record in session:
        if record.global_step == 6:  # interrupt mid-episode, mid-search
            session.checkpoint(ckpt)
            print(f"checkpointed at step {record.global_step} -> {ckpt}")
            break

    # 3. Restore and finish. The resumed run reproduces exactly what the
    #    uninterrupted run would have done.
    restored = SearchSession.resume(ckpt)
    print(
        f"resumed at episode {restored.episode}, step {restored.global_step} "
        f"(best so far {restored.best_score:.4f})"
    )
    result = restored.run()
    print(
        f"finished  : {result.base_score:.4f} -> {result.best_score:.4f} "
        f"({result.n_downstream_calls} downstream calls)"
    )

    # 4. Batch over two dataset slices with one shared evaluation cache.
    cache = api.EvaluationCache()
    jobs = [
        load_dataset("wine_quality_white", scale=0.15, seed=0),
        load_dataset("wine_quality_white", scale=0.15, seed=0),  # identical twin
    ]
    jobs[1].name = "wine_quality_white_rerun"
    results = api.run_batch(jobs, config=config, cache=cache)
    for name, res in results.items():
        print(f"batch[{name}]: best={res.best_score:.4f} evals={res.n_downstream_calls}")
    print(
        f"cache: {cache.hits} hits / {cache.misses} misses "
        f"({100 * cache.hit_rate:.0f}% hit rate) — the rerun cost almost nothing"
    )
    os.unlink(ckpt)


if __name__ == "__main__":
    main()
