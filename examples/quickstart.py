"""Quickstart: reinforced feature transformation in ~20 lines.

Runs FastFT on a synthetic version of the paper's OpenML-589 regression
dataset through the ``repro.api`` facade, prints the score improvement, the
time breakdown, and the traceable formulas of the best discovered features.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import api
from repro.data import load_dataset


def main() -> None:
    # A laptop-scale slice of the paper's OpenML-589 regression task.
    dataset = load_dataset("openml_589", scale=0.25, seed=0)
    print(f"Dataset: {dataset.name} ({dataset.n_samples}x{dataset.n_features}, {dataset.task})")

    # Any FastFTConfig field can be passed as a keyword override.
    result = api.search(
        dataset.X,
        dataset.y,
        task=dataset.task,
        feature_names=dataset.feature_names,
        episodes=8,
        steps_per_episode=5,
        cold_start_episodes=2,
        retrain_every_episodes=2,
        component_epochs=4,
        cv_splits=3,
        rf_estimators=8,
        seed=0,
        verbose=True,
    )

    print(f"\nBase 1-RAE      : {result.base_score:.4f}")
    print(f"FastFT 1-RAE    : {result.best_score:.4f}  (+{result.improvement:.4f})")
    print(f"Downstream calls: {result.n_downstream_calls}")
    print(
        "Time (s)        : "
        f"optimization={result.time.optimization:.1f} "
        f"estimation={result.time.estimation:.1f} "
        f"evaluation={result.time.evaluation:.1f}"
    )

    print("\nDiscovered features (traceable formulas):")
    generated = [e for e in result.expressions() if "(" in e]
    for expr in generated[:8]:
        print(f"  {expr}")

    # The fitted plan re-applies to new data with the same columns.
    transformed = result.transform(dataset.X)
    print(f"\nTransformed matrix: {transformed.shape[0]}x{transformed.shape[1]}")


if __name__ == "__main__":
    main()
