"""Domain scenario 5 — the multi-seed protocol, serial and parallel.

Paper-style results are never single-seed numbers: Table I reports each
method as mean ± std over repeated seeded runs. This script shows the
sweep workflow end to end:

1. *Sweep*: ``api.sweep`` runs one seeded search per seed and returns a
   ``SweepResult`` — per-seed results, mean/std, and the best seed picked
   deterministically (score, ties broken in seed order).
2. *Parallelism*: the same call with ``n_jobs>1`` fans seeds across worker
   processes. Results are bit-identical to the serial sweep — the script
   proves it by comparing plan JSON and scores seed by seed.
3. *Shared oracle cache*: workers share one cross-process evaluation
   cache, merged back into the local ``EvaluationCache`` you pass; a
   repeat sweep answers entirely from cache.
4. *Observability*: ``callbacks_factory`` attaches parent-side observers
   per seed; worker events arrive over a queue, so a ``HistoryCollector``
   works exactly as it does for an in-process session.

Run:  python examples/multi_seed_sweep.py
"""

from __future__ import annotations

import os
import time

from repro import api
from repro.core import FastFTConfig, HistoryCollector
from repro.data import load_dataset


def main() -> None:
    dataset = load_dataset("wine_quality_red", scale=0.15, seed=0)
    print(f"Dataset: {dataset.name} ({dataset.n_samples}x{dataset.n_features}, {dataset.task})")

    config = FastFTConfig(
        episodes=4,
        steps_per_episode=3,
        cold_start_episodes=1,
        retrain_every_episodes=2,
        component_epochs=3,
        cv_splits=3,
        rf_estimators=6,
    )
    seeds = [0, 1, 2, 3]

    # 1. The serial protocol: one seeded search per seed.
    start = time.perf_counter()
    serial = api.sweep(
        dataset.X, dataset.y, dataset.task,
        seeds=seeds, n_jobs=1, config=config,
        feature_names=dataset.feature_names,
    )
    serial_t = time.perf_counter() - start
    print(f"\nserial sweep ({serial_t:.1f}s):")
    print(serial.summary())

    # 2. The same sweep across a process pool. On a multi-core box this is
    #    the wall-clock win; on any box it is the same numbers.
    n_jobs = min(4, os.cpu_count() or 1)
    collectors: dict[str, HistoryCollector] = {}

    def factory(label: str) -> list:
        collectors[label] = HistoryCollector()  # 4. parent-side observer
        return [collectors[label]]

    cache = api.EvaluationCache()  # 3. receives the shared entries
    start = time.perf_counter()
    parallel = api.sweep(
        dataset.X, dataset.y, dataset.task,
        seeds=seeds, n_jobs=n_jobs, config=config,
        feature_names=dataset.feature_names,
        callbacks_factory=factory, cache=cache,
    )
    parallel_t = time.perf_counter() - start

    identical = all(
        parallel[s].plan.to_json() == serial[s].plan.to_json()
        and repr(parallel[s].best_score) == repr(serial[s].best_score)
        for s in seeds
    )
    print(f"\nparallel sweep ({parallel_t:.1f}s, {n_jobs} workers):")
    print(f"  bit-identical to serial: {identical}")
    print(f"  merged cache entries   : {len(cache)}")
    for label in sorted(collectors):
        c = collectors[label]
        print(f"  {label}: {len(c.records)} steps relayed, "
              f"{c.n_real_evaluations} real evaluations observed")

    # The best seed's plan, exactly as a single search would report it.
    best = parallel.best
    print(f"\nbest seed {parallel.best_seed}: "
          f"{best.base_score:.4f} -> {best.best_score:.4f}")
    for expr in best.expressions()[: dataset.n_features + 3]:
        print(f"  {expr}")

    # A repeat sweep seeded from the merged cache pays zero oracle calls.
    rerun = api.sweep(
        dataset.X, dataset.y, dataset.task,
        seeds=seeds, n_jobs=1, config=config,
        feature_names=dataset.feature_names, cache=cache,
    )
    print(f"\nrerun from cache: {rerun.n_downstream_calls} downstream calls "
          f"({cache.hits} hits / {cache.misses} misses)")


if __name__ == "__main__":
    main()
