"""Domain scenario 1 — cardiovascular risk screening (the paper's Fig 15 case).

FastFT searches feature crossings of named medical indicators (Weight, DBP,
Active, ...). The script shows the paper's two qualitative claims:

1. *Traceability*: every generated feature is an explicit formula, so a
   domain expert can inspect what the agent discovered (e.g. ratios that
   flag blood pressure out of line with weight and activity).
2. *Robustness*: the discovered features transfer across downstream models
   (random forest, boosting, logistic regression, SVM — Table III's check).

Run:  python examples/medical_risk_screening.py
"""

from __future__ import annotations

from repro import api
from repro.core import FastFTConfig
from repro.core.tracing import feature_importance_table, reward_peak_features
from repro.data import load_dataset
from repro.ml import (
    DownstreamEvaluator,
    GradientBoostingClassifier,
    LinearSVMClassifier,
    LogisticRegression,
    RandomForestClassifier,
)


def main() -> None:
    dataset = load_dataset("cardiovascular", scale=0.15, seed=0)
    print(f"Screening dataset: {dataset.n_samples} patients, features: {dataset.feature_names}")

    config = FastFTConfig(
        episodes=8,
        steps_per_episode=5,
        cold_start_episodes=2,
        retrain_every_episodes=2,
        component_epochs=4,
        cv_splits=3,
        rf_estimators=8,
        seed=0,
    )
    result = api.search(
        dataset.X, dataset.y, task="classification", config=config,
        feature_names=dataset.feature_names,
    )
    print(f"\nF1: {result.base_score:.3f} -> {result.best_score:.3f}")

    print("\n-- Features generated at reward peaks (Fig 15 style) --")
    for peak in reward_peak_features(result, top_k=3):
        where = f"episode {peak['episode']}, step {peak['step']}"
        print(f"  reward {peak['reward']:+.3f} at {where}:")
        for expr in peak["expressions"]:
            print(f"    {expr}")

    transformed = result.transform(dataset.X)
    print("\n-- Most important screening features (Table IV style) --")
    for row in feature_importance_table(
        transformed, dataset.y, "classification", result.expressions(), top_k=5
    ):
        print(f"  {row.importance:.3f}  {row.expression}")

    print("\n-- Robustness across downstream models (Table III style) --")
    evaluator = DownstreamEvaluator("classification", n_splits=3, seed=0)
    models = {
        "RandomForest": RandomForestClassifier(n_estimators=10, seed=0),
        "GradientBoosting": GradientBoostingClassifier(n_estimators=20, seed=0),
        "LogisticRegression": LogisticRegression(),
        "LinearSVM": LinearSVMClassifier(),
    }
    for name, model in models.items():
        base = evaluator.evaluate_with_model(dataset.X, dataset.y, model)
        ours = evaluator.evaluate_with_model(transformed, dataset.y, model)
        print(f"  {name:18s}: {base:.3f} -> {ours:.3f}")


if __name__ == "__main__":
    main()
