"""Domain scenario 3 — advanced API: custom oracles, ablations, plan reuse.

Shows the knobs a power user reaches for:

1. a custom downstream oracle (gradient boosting + macro-F1 instead of the
   default random forest + weighted-F1), memoized by an ``EvaluationCache``;
2. ablation toggles (the Fig 6 arms) from plain config flags;
3. swapping the RL framework and the sequence encoder (Fig 7 / Fig 8 arms);
4. persisting a fitted plan's formulas and re-executing them on held-out data.

Run:  python examples/custom_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.core import FastFTConfig
from repro.data import load_dataset
from repro.ml import GradientBoostingClassifier, f1_score
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.model_selection import train_test_split


def macro_f1(y_true, y_pred):
    return f1_score(y_true, y_pred, average="macro")


def main() -> None:
    dataset = load_dataset("wine_quality_red", scale=0.3, seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.25, seed=0, stratify=dataset.y
    )
    print(f"Train {X_train.shape}, held-out test {X_test.shape}")

    # 1. Custom oracle: boosting + macro-F1.
    oracle = DownstreamEvaluator(
        "classification",
        model=GradientBoostingClassifier(n_estimators=15, seed=0),
        metric=macro_f1,
        n_splits=3,
        seed=0,
    )

    # 2+3. Config with ablation and framework choices.
    config = FastFTConfig(
        episodes=6,
        steps_per_episode=4,
        cold_start_episodes=2,
        retrain_every_episodes=2,
        component_epochs=3,
        cv_splits=3,
        rf_estimators=8,
        rl_framework="actor_critic",  # try: "dueling_double_dqn"
        seq_model="lstm",             # try: "rnn" / "transformer"
        use_novelty=True,             # False reproduces the -NE ablation
        prioritized_replay=True,      # False reproduces the -RCT ablation
        seed=0,
    )
    cache = api.EvaluationCache()  # repeated candidate matrices skip CV
    result = api.search(
        X_train, y_train, task="classification", config=config,
        feature_names=dataset.feature_names, evaluator=oracle, cache=cache,
    )
    print(f"CV macro-F1 (train): {result.base_score:.3f} -> {result.best_score:.3f}")
    print(f"Oracle calls: {result.n_downstream_calls} ({cache.hits} served from cache)")

    # 4. Persist the plan as formulas + re-execute on held-out data.
    print("\nDiscovered feature program:")
    for expr in result.expressions():
        print(f"  {expr}")

    model = GradientBoostingClassifier(n_estimators=15, seed=0)
    model.fit(result.transform(X_train), y_train)
    test_pred = model.predict(result.transform(X_test))
    base_model = GradientBoostingClassifier(n_estimators=15, seed=0).fit(X_train, y_train)
    base_pred = base_model.predict(X_test)
    print(f"\nHeld-out macro-F1: base={macro_f1(y_test, base_pred):.3f} "
          f"fastft={macro_f1(y_test, test_pred):.3f}")

    # Every transformed column is finite by construction.
    assert np.isfinite(result.transform(X_test)).all()


if __name__ == "__main__":
    main()
