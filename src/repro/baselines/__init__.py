"""The 10 baseline feature-transformation methods of Table I (+ RDG of Table III).

Every baseline implements the same protocol as FastFT's result surface:
``fit(X, y, task, feature_names) -> BaselineResult`` with a re-applicable
transformation plan, the achieved downstream score and wall-time accounting —
so the Table I / Fig 9 / Fig 10 harnesses can sweep methods uniformly.

- ``RFG``     random feature generation
- ``RDG``     random generation, smaller budget (Table III variant)
- ``ERG``     expand (all ops) then reduce (MI selection)
- ``LDA``     latent-topic dimensionality reduction (PLSA/EM variant)
- ``AFT``     autofeat-style iterative generate/select with redundancy control
- ``NFS``     RNN controller trained with REINFORCE
- ``TTG``     transformation-graph exploration with Q-learning
- ``DIFER``   sequence-embedding predictor + greedy search (differentiable AFE)
- ``OpenFE``  feature boosting with two-stage candidate pruning
- ``CAAFE``   pseudo-LLM semantic proposals (substitution documented in DESIGN.md)
- ``GRFG``    group-wise cascading RL (FastFT ancestor, no PP/NE)
"""

from repro.baselines.aft import AFT
from repro.baselines.base import BaselineResult, FeatureTransformBaseline
from repro.baselines.caafe import CAAFE
from repro.baselines.difer import DIFER
from repro.baselines.erg import ERG
from repro.baselines.grfg import GRFG
from repro.baselines.lda import LDA
from repro.baselines.nfs import NFS
from repro.baselines.openfe import OpenFE
from repro.baselines.rfg import RDG, RFG
from repro.baselines.ttg import TTG

BASELINE_REGISTRY = {
    "rfg": RFG,
    "rdg": RDG,
    "erg": ERG,
    "lda": LDA,
    "aft": AFT,
    "nfs": NFS,
    "ttg": TTG,
    "difer": DIFER,
    "openfe": OpenFE,
    "caafe": CAAFE,
    "grfg": GRFG,
}

__all__ = [
    "BaselineResult",
    "FeatureTransformBaseline",
    "RFG",
    "RDG",
    "ERG",
    "LDA",
    "AFT",
    "NFS",
    "TTG",
    "DIFER",
    "OpenFE",
    "CAAFE",
    "GRFG",
    "BASELINE_REGISTRY",
]
