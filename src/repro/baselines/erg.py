"""ERG — expansion-reduction generation (Table I baseline 2).

Expand: apply every unary operation to every feature and a budget of binary
crossings over the most label-relevant pairs. Reduce: keep the top-k features
by mutual information with the target. One downstream evaluation at the end
(plus the baseline evaluation) — cheap but blind, which is why it trails the
iterative methods in Table I.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline
from repro.core.operations import BINARY_OPERATIONS, UNARY_OPERATIONS
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["ERG"]


class ERG(FeatureTransformBaseline):
    """Expand with all operations, select by MI, evaluate once."""

    name = "ERG"

    def __init__(
        self,
        keep_factor: float = 2.0,
        binary_pair_budget: int = 32,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        if keep_factor <= 0:
            raise ValueError("keep_factor must be positive")
        self.keep_factor = keep_factor
        self.binary_pair_budget = binary_pair_budget

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        space = FeatureSpace(X, feature_names)
        originals = list(space.original_ids)

        # Expansion: every unary op on every original feature.
        for op in UNARY_OPERATIONS:
            space.apply_unary(op.name, originals)

        # Binary crossings over the most relevant original pairs.
        relevance = mutual_info_with_target(X, y, task=task)
        ranked = np.argsort(-relevance)
        pairs = []
        for i in range(len(ranked)):
            for j in range(i + 1, len(ranked)):
                pairs.append((originals[ranked[i]], originals[ranked[j]]))
        if len(pairs) > self.binary_pair_budget:
            chosen = rng.choice(len(pairs), size=self.binary_pair_budget, replace=False)
            pairs = [pairs[i] for i in chosen]
        for op in BINARY_OPERATIONS:
            for h, t in pairs:
                space.apply_binary(op.name, [h], [t])

        # Reduction: keep top-k by MI with the target.
        matrix = sanitize_features(space.matrix())
        expanded_relevance = mutual_info_with_target(matrix, y, task=task)
        keep_n = max(X.shape[1], int(self.keep_factor * X.shape[1]))
        live = space.live_ids
        keep = [live[i] for i in np.argsort(-expanded_relevance)[:keep_n]]
        space.prune(keep)

        score = evaluator(space.matrix(), y)
        if score >= base_score:
            return score, space.snapshot(), {}
        return base_score, FeatureSpace(X, feature_names).snapshot(), {"fell_back": True}
