"""OpenFE — feature boosting with two-stage pruning (Table I baseline 8).

Following Zhang et al. (ICML 2023): (1) enumerate a large candidate pool;
(2) **stage 1** scores every candidate cheaply by *feature boosting* — the
incremental gain of adding the candidate to a gradient-boosting model's
residuals on a data subsample — and keeps the top fraction via successive
halving; (3) **stage 2** greedily admits surviving candidates when they
improve full cross-validated performance. Evaluating each admission against
the full downstream task is what makes OpenFE accurate but poorly scalable —
the behaviour Fig 10 contrasts with FastFT.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline
from repro.core.operations import BINARY_OPERATIONS, UNARY_OPERATIONS
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["OpenFE"]


class OpenFE(FeatureTransformBaseline):
    """Candidate enumeration → feature-boost halving → greedy admission."""

    name = "OpenFE"

    def __init__(
        self,
        binary_pair_budget: int = 24,
        halving_rounds: int = 2,
        keep_fraction: float = 0.33,
        admit_budget: int = 6,
        subsample: int = 256,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.binary_pair_budget = binary_pair_budget
        self.halving_rounds = halving_rounds
        self.keep_fraction = keep_fraction
        self.admit_budget = admit_budget
        self.subsample = subsample

    def _enumerate(self, space: FeatureSpace, y: np.ndarray, task: str,
                   rng: np.random.Generator) -> list[int]:
        originals = list(space.original_ids)
        candidates: list[int] = []
        for op in UNARY_OPERATIONS:
            candidates.extend(space.apply_unary(op.name, originals))
        relevance = mutual_info_with_target(space.matrix(originals), y, task=task)
        ranked = np.argsort(-relevance)
        pairs = [
            (originals[ranked[i]], originals[ranked[j]])
            for i in range(len(ranked))
            for j in range(i + 1, len(ranked))
        ]
        if len(pairs) > self.binary_pair_budget:
            idx = rng.choice(len(pairs), size=self.binary_pair_budget, replace=False)
            pairs = [pairs[i] for i in idx]
        for op in BINARY_OPERATIONS:
            for h, t in pairs:
                candidates.extend(space.apply_binary(op.name, [h], [t]))
        return candidates

    def _feature_boost_scores(
        self,
        space: FeatureSpace,
        candidates: list[int],
        y: np.ndarray,
        task: str,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Stage-1 score: how well a candidate explains the base model's
        residuals on a subsample (OpenFE's 'feature boosting')."""
        base_matrix = sanitize_features(space.matrix(list(space.original_ids)))
        n = base_matrix.shape[0]
        rows = (
            rng.choice(n, size=min(self.subsample, n), replace=False)
            if n > self.subsample
            else np.arange(n)
        )
        y_numeric = y.astype(float)
        booster = GradientBoostingRegressor(n_estimators=10, max_depth=3, seed=self.seed)
        booster.fit(base_matrix[rows], y_numeric[rows])
        residual = y_numeric[rows] - booster.predict(base_matrix[rows])
        scores = np.empty(len(candidates))
        res_std = residual.std() or 1.0
        for k, fid in enumerate(candidates):
            values = space.values(fid)[rows]
            std = values.std()
            if std == 0:
                scores[k] = 0.0
                continue
            scores[k] = abs(float(np.corrcoef(values, residual)[0, 1]))
        return np.nan_to_num(scores)

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        space = FeatureSpace(X, feature_names)
        candidates = self._enumerate(space, y, task, rng)

        # Stage 1: successive halving on the feature-boost score.
        survivors = list(candidates)
        for _ in range(self.halving_rounds):
            if len(survivors) <= self.admit_budget:
                break
            scores = self._feature_boost_scores(space, survivors, y, task, rng)
            keep_n = max(self.admit_budget, int(len(survivors) * self.keep_fraction))
            order = np.argsort(-scores)[:keep_n]
            survivors = [survivors[i] for i in order]

        # Stage 2: greedy admission with full downstream validation.
        kept = list(space.original_ids)
        space.prune(kept)
        best_score = base_score
        best_plan = space.snapshot()
        admitted = 0
        for fid in survivors:
            if admitted >= self.admit_budget:
                break
            trial = kept + [fid]
            space.prune(trial)
            score = evaluator(space.matrix(), y)
            if score > best_score:
                best_score = score
                kept = trial
                best_plan = space.snapshot()
                admitted += 1
            else:
                space.prune(kept)
        return best_score, best_plan, {"n_candidates": len(candidates), "admitted": admitted}
