"""CAAFE — context-aware (LLM-driven) feature engineering (Table I baseline 9).

The real CAAFE prompts GPT-4 with the dataset description and feature names
and iteratively accepts proposed features that improve cross-validated
performance. No LLM is available offline, so — per the DESIGN.md
substitution policy — we reproduce the *system shape* with a deterministic
"semantic prior" proposal engine:

- proposals are derived from feature-name templates (ratio/product/log rules
  such as ``Weight/Height²`` when both names are present) plus MI-guided
  generic combinations, mimicking an LLM's domain-prior suggestions;
- the accept/reject loop is identical to CAAFE's (propose k, evaluate, keep
  on improvement);
- every "LLM call" charges a configurable simulated latency, reproducing
  CAAFE's runtime profile in Figs 9/10 (large constant cost per iteration
  that dominates on small datasets).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["CAAFE", "SemanticProposalEngine"]

# Name-pattern templates: (keyword_a, keyword_b, op, rationale).
_TEMPLATES = [
    ("weight", "height", "divide", "body-mass-style ratio"),
    ("weight", "active", "divide", "load per activity level"),
    ("sbp", "dbp", "subtract", "pulse pressure"),
    ("glucose", "bmi", "multiply", "metabolic interaction"),
    ("alcohol", "density", "divide", "concentration ratio"),
    ("sulphates", "chlorides", "divide", "chemical balance"),
    ("age", "pregnancies", "divide", "age per pregnancy"),
    ("insulin", "glucose", "divide", "insulin sensitivity"),
]


class SemanticProposalEngine:
    """Deterministic stand-in for the LLM: metadata-conditioned proposals."""

    def __init__(self, feature_names: list[str], seed: int | None = 0) -> None:
        self.feature_names = [n.lower() for n in feature_names]
        self._rng = np.random.default_rng(seed)

    def _find(self, keyword: str) -> int | None:
        for i, name in enumerate(self.feature_names):
            if keyword in name:
                return i
        return None

    def propose(
        self, X: np.ndarray, y: np.ndarray, task: str, k: int
    ) -> list[tuple[str, int, int]]:
        """Return up to ``k`` (op_name, col_i, col_j) proposals.

        Template matches come first (the 'domain knowledge' an LLM would
        surface from names); the remainder are MI-guided combinations (the
        LLM's statistical fallback when names are opaque).
        """
        proposals: list[tuple[str, int, int]] = []
        for key_a, key_b, op, _ in _TEMPLATES:
            i, j = self._find(key_a), self._find(key_b)
            if i is not None and j is not None and i != j:
                proposals.append((op, i, j))
        relevance = mutual_info_with_target(sanitize_features(X), y, task=task)
        ranked = np.argsort(-relevance)
        ops = ["multiply", "divide", "add", "subtract"]
        idx = 0
        while len(proposals) < k and idx < len(ranked) * (len(ranked) - 1):
            i = int(ranked[idx % len(ranked)])
            j = int(ranked[(idx // len(ranked) + 1) % len(ranked)])
            if i != j:
                proposals.append((ops[idx % len(ops)], i, j))
            idx += 1
        return proposals[:k]


class CAAFE(FeatureTransformBaseline):
    """Propose-evaluate-accept loop with simulated per-call LLM latency."""

    name = "CAAFE"

    def __init__(
        self,
        n_iterations: int = 4,
        proposals_per_iteration: int = 3,
        simulated_llm_latency: float = 2.5,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.n_iterations = n_iterations
        self.proposals_per_iteration = proposals_per_iteration
        self.simulated_llm_latency = simulated_llm_latency

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        names = feature_names or [f"f{j + 1}" for j in range(X.shape[1])]
        engine = SemanticProposalEngine(names, seed=self.seed)
        space = FeatureSpace(X, names)
        originals = list(space.original_ids)

        best_score = base_score
        best_plan = space.snapshot()
        kept = list(originals)
        llm_calls = 0
        accepted = 0

        for _ in range(self.n_iterations):
            llm_calls += 1  # one "LLM call" proposes a batch
            proposals = engine.propose(
                space.matrix(originals), y, task, self.proposals_per_iteration
            )
            for op_name, i, j in proposals:
                new = space.apply_binary(op_name, [originals[i]], [originals[j]])
                trial = kept + new
                space.prune(trial)
                score = evaluator(space.matrix(), y)
                if score > best_score:
                    best_score = score
                    kept = trial
                    best_plan = space.snapshot()
                    accepted += 1
                else:
                    space.prune(kept)

        extra = {
            "llm_calls": llm_calls,
            "accepted": accepted,
            # Charged into wall_time by the base class (no real sleep).
            "simulated_latency": llm_calls * self.simulated_llm_latency,
        }
        return best_score, best_plan, extra
