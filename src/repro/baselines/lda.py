"""LDA — latent-topic dimensionality reduction (Table I baseline 3).

The paper uses Latent Dirichlet Allocation (Blei et al.) to project the
feature matrix into a low-dimensional topic space. We implement the
maximum-likelihood variant (PLSA: LDA with uniform Dirichlet priors removed)
trained by exact EM on a discretized non-negative rendering of the features.
As in the paper, this baseline usually *loses* information for supervised
tasks — its role in Table I is a dimensionality-reduction strawman, and no
fallback to the original features is applied.

Note: because the output is a projection, the "plan" replays the projection
via a stored factor matrix rather than an expression tree.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import BaselineResult, FeatureTransformBaseline
from repro.ml.preprocessing import sanitize_features

__all__ = ["LDA", "LatentTopicModel"]


class LatentTopicModel:
    """PLSA topic model: p(feature | sample) = Σ_k θ_sk φ_kf, fit by EM."""

    def __init__(self, n_topics: int = 8, n_iter: int = 40, seed: int | None = 0) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        self.n_topics = n_topics
        self.n_iter = n_iter
        self.seed = seed
        self.phi_: np.ndarray | None = None  # (topics, features)
        self._shift: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def _to_counts(self, X: np.ndarray) -> np.ndarray:
        """Render features as non-negative pseudo-counts (fit stores the map)."""
        X = np.asarray(X, dtype=float)
        if self._shift is None:
            self._shift = X.min(axis=0)
            span = X.max(axis=0) - self._shift
            self._scale = np.where(span > 0, span, 1.0)
        scaled = (X - self._shift) / self._scale
        return np.clip(scaled, 0.0, 1.5) * 10.0 + 1e-3

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        counts = self._to_counts(X)
        n, d = counts.shape
        k = min(self.n_topics, d)
        rng = np.random.default_rng(self.seed)
        theta = rng.dirichlet(np.ones(k), size=n)  # (n, k)
        phi = rng.dirichlet(np.ones(d), size=k)  # (k, d)
        for _ in range(self.n_iter):
            # E-step responsibilities r[n, k, d] ∝ θ_nk φ_kd, done blockwise.
            weighted = theta[:, :, None] * phi[None, :, :]  # (n, k, d)
            denom = weighted.sum(axis=1, keepdims=True) + 1e-12
            resp = weighted / denom
            # M-step.
            expected = resp * counts[:, None, :]  # (n, k, d)
            theta = expected.sum(axis=2)
            theta /= theta.sum(axis=1, keepdims=True) + 1e-12
            phi = expected.sum(axis=0)
            phi /= phi.sum(axis=1, keepdims=True) + 1e-12
        self.phi_ = phi
        return self._infer_theta(counts)

    def _infer_theta(self, counts: np.ndarray, n_iter: int = 15) -> np.ndarray:
        """Fold-in: infer θ for (possibly new) samples with φ fixed."""
        n = counts.shape[0]
        k = self.phi_.shape[0]
        rng = np.random.default_rng(self.seed)
        theta = rng.dirichlet(np.ones(k), size=n)
        for _ in range(n_iter):
            weighted = theta[:, :, None] * self.phi_[None, :, :]
            denom = weighted.sum(axis=1, keepdims=True) + 1e-12
            resp = weighted / denom
            theta = (resp * counts[:, None, :]).sum(axis=2)
            theta /= theta.sum(axis=1, keepdims=True) + 1e-12
        return theta

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.phi_ is None:
            raise RuntimeError("Model is not fitted")
        return self._infer_theta(self._to_counts(X))


class _ProjectionPlan:
    """Duck-typed TransformationPlan replaying the fitted topic projection."""

    def __init__(self, model: LatentTopicModel, n_input_columns: int) -> None:
        self._model = model
        self.n_input_columns = n_input_columns
        self.live_ids = list(range(model.n_topics))

    def apply(self, X: np.ndarray) -> np.ndarray:
        X = sanitize_features(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_input_columns:
            raise ValueError("Column-count mismatch")
        return self._model.transform(X)

    def expressions(self) -> list[str]:
        return [f"topic_{k}" for k in range(len(self.live_ids))]

    @property
    def n_features(self) -> int:
        return len(self.live_ids)


class LDA(FeatureTransformBaseline):
    """Project features into topic space and evaluate the projection."""

    name = "LDA"

    def __init__(
        self,
        n_topics: int = 8,
        n_iter: int = 40,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.n_topics = n_topics
        self.n_iter = n_iter

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
    ) -> BaselineResult:
        X = sanitize_features(np.asarray(X, dtype=float))
        y = np.asarray(y)
        evaluator = self._make_evaluator(task)
        start = time.perf_counter()
        base_score = evaluator(X, y)
        model = LatentTopicModel(self.n_topics, self.n_iter, self.seed)
        projected = model.fit_transform(X)
        score = evaluator(projected, y)
        wall = time.perf_counter() - start
        # No fallback: the paper's LDA column reports the projection as-is.
        return BaselineResult(
            name=self.name,
            base_score=base_score,
            best_score=score,
            plan=_ProjectionPlan(model, X.shape[1]),
            wall_time=wall,
            n_evaluations=evaluator.n_calls,
            extra={"n_topics": min(self.n_topics, X.shape[1])},
        )

    def _search(self, *args, **kwargs):  # pragma: no cover - fit() overridden
        raise NotImplementedError
