"""RFG — random feature generation (Table I baseline 1) and RDG (Table III).

RFG repeatedly applies random operations to random candidate features,
evaluates the grown set after every round, and keeps the best-scoring state.
Its instability and limited exploration are exactly what the paper contrasts
against: no learning signal steers the choice of operation or operands.

RDG is the Table III variant with a smaller round budget (random *direct*
generation in the GRFG lineage's terminology).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline, random_transform_step
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["RFG", "RDG"]


class RFG(FeatureTransformBaseline):
    """Random generation with per-round evaluation and feature-count capping."""

    name = "RFG"

    def __init__(
        self,
        n_rounds: int = 20,
        steps_per_round: int = 3,
        max_features_factor: int = 3,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.n_rounds = n_rounds
        self.steps_per_round = steps_per_round
        self.max_features_factor = max_features_factor

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        space = FeatureSpace(X, feature_names)
        cap = self.max_features_factor * X.shape[1]
        best_score = base_score
        best_plan = space.snapshot()
        for _ in range(self.n_rounds):
            for _ in range(self.steps_per_round):
                random_transform_step(space, rng)
            if space.n_features > cap:
                matrix = sanitize_features(space.matrix())
                relevance = mutual_info_with_target(matrix, y, task=task)
                live = space.live_ids
                keep = [live[i] for i in np.argsort(-relevance)[:cap]]
                space.prune(keep)
            score = evaluator(space.matrix(), y)
            if score > best_score:
                best_score = score
                best_plan = space.snapshot()
        return best_score, best_plan, {}


class RDG(RFG):
    """Random direct generation: the smaller-budget Table III variant."""

    name = "RDG"

    def __init__(self, n_rounds: int = 10, **kwargs) -> None:
        super().__init__(n_rounds=n_rounds, **kwargs)
