"""Shared baseline protocol and helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.operations import BINARY_OPERATIONS, UNARY_OPERATIONS, Operation
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.evaluation import DownstreamEvaluator, default_model_for_task
from repro.ml.preprocessing import sanitize_features

__all__ = ["BaselineResult", "FeatureTransformBaseline", "random_transform_step"]


@dataclass
class BaselineResult:
    """Uniform result record across all Table I methods."""

    name: str
    base_score: float
    best_score: float
    plan: TransformationPlan
    wall_time: float
    n_evaluations: int
    extra: dict = field(default_factory=dict)

    def transform(self, X: np.ndarray) -> np.ndarray:
        return self.plan.apply(X)

    @property
    def improvement(self) -> float:
        return self.best_score - self.base_score


class FeatureTransformBaseline:
    """Base class: evaluator plumbing, timing, and the fit() contract."""

    name = "baseline"

    def __init__(
        self,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        self.cv_splits = cv_splits
        self.rf_estimators = rf_estimators
        self.seed = seed

    def _make_evaluator(self, task: str) -> DownstreamEvaluator:
        return DownstreamEvaluator(
            task,
            model=default_model_for_task(task, n_estimators=self.rf_estimators, seed=self.seed),
            n_splits=self.cv_splits,
            seed=self.seed,
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
    ) -> BaselineResult:
        """Template method: times the subclass search and packages the result."""
        X = sanitize_features(np.asarray(X, dtype=float))
        y = np.asarray(y)
        evaluator = self._make_evaluator(task)
        start = time.perf_counter()
        base_score = evaluator(X, y)
        best_score, plan, extra = self._search(X, y, task, feature_names, evaluator, base_score)
        wall = time.perf_counter() - start + float(extra.pop("simulated_latency", 0.0))
        return BaselineResult(
            name=self.name,
            base_score=base_score,
            best_score=best_score,
            plan=plan,
            wall_time=wall,
            n_evaluations=evaluator.n_calls,
            extra=extra,
        )

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        raise NotImplementedError


def random_transform_step(
    space: FeatureSpace,
    rng: np.random.Generator,
    max_new: int = 4,
    unary_ops: list[Operation] | None = None,
    binary_ops: list[Operation] | None = None,
) -> list[int]:
    """Apply one uniformly random operation to random live features."""
    unary_ops = unary_ops or UNARY_OPERATIONS
    binary_ops = binary_ops or BINARY_OPERATIONS
    live = space.live_ids
    if rng.random() < len(unary_ops) / (len(unary_ops) + len(binary_ops)):
        op = unary_ops[int(rng.integers(0, len(unary_ops)))]
        heads = [live[i] for i in rng.choice(len(live), size=min(max_new, len(live)), replace=False)]
        return space.apply_unary(op.name, heads)
    op = binary_ops[int(rng.integers(0, len(binary_ops)))]
    n_pick = min(2, len(live))
    heads = [live[int(rng.integers(0, len(live)))]]
    tails = [live[int(rng.integers(0, len(live)))]]
    return space.apply_binary(op.name, heads, tails, max_new=max_new, rng=rng)
