"""TTG — transformation-graph exploration (Table I baseline 6).

Following Khurana et al. (AAAI 2018): nodes of a directed graph are entire
datasets; an edge applies one operation to *all* features of a node (plus a
union/merge action). A Q-function over (node-state, action) pairs — here a
hashed linear approximation — is learned while the graph is expanded under a
node budget, and the best-evaluated node wins. networkx tracks the graph so
the exploration trace is inspectable.
"""

from __future__ import annotations

import numpy as np

try:  # networkx is available in the target environment; degrade gracefully.
    import networkx as nx
except ImportError:  # pragma: no cover
    nx = None

from repro.baselines.base import FeatureTransformBaseline
from repro.core.operations import UNARY_OPERATIONS
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.core.state import describe_matrix
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["TTG"]


class TTG(FeatureTransformBaseline):
    """Budgeted transformation-graph search with linear Q-learning."""

    name = "TTG"

    def __init__(
        self,
        node_budget: int = 14,
        epsilon: float = 0.3,
        lr: float = 0.05,
        gamma: float = 0.9,
        max_features_factor: int = 3,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.node_budget = node_budget
        self.epsilon = epsilon
        self.lr = lr
        self.gamma = gamma
        self.max_features_factor = max_features_factor

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        actions = [op.name for op in UNARY_OPERATIONS]
        n_actions = len(actions)
        weights = np.zeros((n_actions, 49))  # linear Q over describe-vectors

        graph = nx.DiGraph() if nx is not None else None
        root = FeatureSpace(X, feature_names)
        nodes: list[tuple[FeatureSpace, float, np.ndarray]] = [
            (root, base_score, describe_matrix(X))
        ]
        if graph is not None:
            graph.add_node(0, score=base_score)
        cap = self.max_features_factor * X.shape[1]

        best_score, best_plan = base_score, root.snapshot()
        while len(nodes) < self.node_budget:
            parent_idx = int(rng.integers(0, len(nodes)))
            parent_space, parent_score, parent_state = nodes[parent_idx]

            if rng.random() < self.epsilon:
                action = int(rng.integers(0, n_actions))
            else:
                q = weights @ parent_state
                action = int(np.argmax(q))
            op_name = actions[action]

            # Expand: apply the op to every live feature of a copied space.
            child = FeatureSpace(X, feature_names)
            child_live = self._replay(parent_space, child)
            child.apply_unary(op_name, child_live)
            if child.n_features > cap:
                matrix = sanitize_features(child.matrix())
                relevance = mutual_info_with_target(matrix, y, task=task)
                live = child.live_ids
                child.prune([live[i] for i in np.argsort(-relevance)[:cap]])

            score = evaluator(child.matrix(), y)
            state = describe_matrix(child.matrix())
            reward = score - parent_score

            # Q-learning update on the linear approximation.
            q_next = float((weights @ state).max())
            td = reward + self.gamma * q_next - float(weights[action] @ parent_state)
            weights[action] += self.lr * td * parent_state

            nodes.append((child, score, state))
            if graph is not None:
                node_id = len(nodes) - 1
                graph.add_node(node_id, score=score)
                graph.add_edge(parent_idx, node_id, op=op_name)
            if score > best_score:
                best_score, best_plan = score, child.snapshot()

        extra = {}
        if graph is not None:
            extra["graph_nodes"] = graph.number_of_nodes()
            extra["graph_edges"] = graph.number_of_edges()
        return best_score, best_plan, extra

    @staticmethod
    def _replay(parent: FeatureSpace, child: FeatureSpace) -> list[int]:
        """Recreate the parent's live features inside a fresh space."""
        plan = parent.snapshot()
        mapping: dict[int, int] = {}

        def rebuild(fid: int) -> int:
            if fid in mapping:
                return mapping[fid]
            node = plan.nodes[fid]
            if node.op is None:
                new_id = child.original_ids[node.source_col]
            else:
                children = [rebuild(c) for c in node.children]
                if len(children) == 1:
                    new_id = child.apply_unary(node.op, [children[0]])[0]
                else:
                    new_id = child.apply_binary(node.op, [children[0]], [children[1]])[0]
            mapping[fid] = new_id
            return new_id

        live = [rebuild(fid) for fid in plan.live_ids]
        child.prune(live)
        return live
