"""AFT — autofeat-style iterative generation and selection (Table I baseline 4).

Each round: (1) generate a candidate pool by applying unary operations to the
current features and binary operations to relevant pairs; (2) select the
candidates whose mutual information with the target is high while their
redundancy against already-kept features is low (the autofeat library's
"minimize redundancy, optimize exploration" loop); (3) keep the round only if
the downstream score improves.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline
from repro.core.operations import BINARY_OPERATIONS, UNARY_OPERATIONS
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.mutual_info import mutual_info_features, mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["AFT"]


class AFT(FeatureTransformBaseline):
    """Iterative generate-select with MI relevance / redundancy filtering."""

    name = "AFT"

    def __init__(
        self,
        n_rounds: int = 4,
        candidates_per_round: int = 24,
        keep_per_round: int = 6,
        redundancy_threshold: float = 0.7,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.n_rounds = n_rounds
        self.candidates_per_round = candidates_per_round
        self.keep_per_round = keep_per_round
        self.redundancy_threshold = redundancy_threshold

    def _generate_candidates(
        self, space: FeatureSpace, y: np.ndarray, task: str, rng: np.random.Generator
    ) -> list[int]:
        live = space.live_ids
        relevance = mutual_info_with_target(sanitize_features(space.matrix()), y, task=task)
        ranked = [live[i] for i in np.argsort(-relevance)]
        top = ranked[: max(3, len(ranked) // 2)]
        new_ids: list[int] = []
        budget = self.candidates_per_round
        while len(new_ids) < budget:
            if rng.random() < 0.5:
                op = UNARY_OPERATIONS[int(rng.integers(0, len(UNARY_OPERATIONS)))]
                head = top[int(rng.integers(0, len(top)))]
                new_ids.extend(space.apply_unary(op.name, [head]))
            else:
                op = BINARY_OPERATIONS[int(rng.integers(0, len(BINARY_OPERATIONS)))]
                h = top[int(rng.integers(0, len(top)))]
                t = ranked[int(rng.integers(0, len(ranked)))]
                new_ids.extend(space.apply_binary(op.name, [h], [t]))
        return new_ids[:budget]

    def _select(
        self,
        space: FeatureSpace,
        candidate_ids: list[int],
        keep_ids: list[int],
        y: np.ndarray,
        task: str,
    ) -> list[int]:
        """Greedy mRMR-style pick: high target-MI, low redundancy vs kept."""
        if not candidate_ids:
            return []
        cand_matrix = sanitize_features(space.matrix(candidate_ids))
        relevance = mutual_info_with_target(cand_matrix, y, task=task)
        order = np.argsort(-relevance)
        selected: list[int] = []
        for idx in order:
            if len(selected) >= self.keep_per_round:
                break
            fid = candidate_ids[idx]
            values = space.values(fid)
            redundant = False
            for kept in selected + keep_ids[-8:]:
                mi = mutual_info_features(values, space.values(kept))
                if mi > self.redundancy_threshold:
                    redundant = True
                    break
            if not redundant:
                selected.append(fid)
        return selected

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        space = FeatureSpace(X, feature_names)
        keep_ids = list(space.original_ids)
        best_score = base_score
        best_plan = space.snapshot()

        for _ in range(self.n_rounds):
            candidates = self._generate_candidates(space, y, task, rng)
            selected = self._select(space, candidates, keep_ids, y, task)
            trial_ids = keep_ids + selected
            space.prune(trial_ids)
            score = evaluator(space.matrix(), y)
            if score > best_score:
                best_score = score
                best_plan = space.snapshot()
                keep_ids = trial_ids
            else:
                space.prune(keep_ids)
        return best_score, best_plan, {}
