"""DIFER — differentiable automated feature engineering (Table I baseline 7).

Following Zhu et al. (AutoML-Conf 2022): transformation sequences are embedded
into a continuous space by an LSTM encoder; a predictor regresses downstream
performance from the embedding; search then proceeds in the learned space and
decodes back to features. Our faithful compact version: (1) collect a corpus
of random ⟨sequence, score⟩ pairs, (2) train the encoder-predictor, (3) run a
greedy hill-climb that mutates the best sequences and keeps predictor-ranked
candidates, evaluating only the top ones downstream.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline
from repro.core.operations import BINARY_OPERATIONS, OPERATION_NAMES, UNARY_OPERATIONS
from repro.core.predictor import PerformancePredictor
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.core.tokens import TokenVocabulary
from repro.ml.evaluation import DownstreamEvaluator

__all__ = ["DIFER"]

_Step = tuple[str, int, int | None]  # (op, head original col, tail original col | None)


class DIFER(FeatureTransformBaseline):
    """Embed → predict → greedy search over transformation programs."""

    name = "DIFER"

    def __init__(
        self,
        corpus_size: int = 16,
        program_length: int = 3,
        search_rounds: int = 4,
        mutations_per_round: int = 12,
        evaluate_top: int = 2,
        predictor_epochs: int = 8,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.corpus_size = corpus_size
        self.program_length = program_length
        self.search_rounds = search_rounds
        self.mutations_per_round = mutations_per_round
        self.evaluate_top = evaluate_top
        self.predictor_epochs = predictor_epochs

    # -- programs ------------------------------------------------------------

    def _random_program(self, d: int, rng: np.random.Generator) -> list[_Step]:
        program: list[_Step] = []
        for _ in range(self.program_length):
            if rng.random() < 0.5:
                op = UNARY_OPERATIONS[int(rng.integers(0, len(UNARY_OPERATIONS)))]
                program.append((op.name, int(rng.integers(0, d)), None))
            else:
                op = BINARY_OPERATIONS[int(rng.integers(0, len(BINARY_OPERATIONS)))]
                program.append((op.name, int(rng.integers(0, d)), int(rng.integers(0, d))))
        return program

    def _mutate(self, program: list[_Step], d: int, rng: np.random.Generator) -> list[_Step]:
        mutated = list(program)
        slot = int(rng.integers(0, len(mutated)))
        mutated[slot] = self._random_program(d, rng)[0]
        return mutated

    def _execute(
        self, program: list[_Step], X: np.ndarray, feature_names: list[str] | None
    ) -> FeatureSpace:
        space = FeatureSpace(X, feature_names)
        originals = list(space.original_ids)
        for op_name, head, tail in program:
            if tail is None:
                space.apply_unary(op_name, [originals[head]])
            else:
                space.apply_binary(op_name, [originals[head]], [originals[tail]])
        return space

    def _tokens(self, program: list[_Step], vocab: TokenVocabulary) -> np.ndarray:
        body: list[int] = []
        for op_name, head, tail in program:
            body.extend(vocab.step_tokens(op_name, [head], [tail] if tail is not None else None))
        return vocab.finalize(body)

    # -- search ----------------------------------------------------------------

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        d = X.shape[1]
        vocab = TokenVocabulary(OPERATION_NAMES, n_feature_slots=max(64, d))

        # Stage 1: corpus of random programs with measured scores.
        corpus: list[tuple[list[_Step], float]] = []
        best_score, best_plan = base_score, FeatureSpace(X, feature_names).snapshot()
        for _ in range(self.corpus_size):
            program = self._random_program(d, rng)
            space = self._execute(program, X, feature_names)
            score = evaluator(space.matrix(), y)
            corpus.append((program, score))
            if score > best_score:
                best_score, best_plan = score, space.snapshot()

        # Stage 2: encoder-predictor over the embedding space.
        predictor = PerformancePredictor(
            len(vocab), seq_model="lstm", embed_dim=16, hidden_dim=16, num_layers=1,
            head_dims=(8, 1), seed=self.seed,
        )
        sequences = [self._tokens(p, vocab) for p, _ in corpus]
        scores = np.array([s for _, s in corpus])
        predictor.fit(sequences, scores, epochs=self.predictor_epochs, rng=rng)

        # Stage 3: predictor-guided greedy hill-climb.
        for _ in range(self.search_rounds):
            corpus.sort(key=lambda item: item[1], reverse=True)
            seeds = [p for p, _ in corpus[:3]]
            candidates = [self._mutate(seeds[int(rng.integers(0, len(seeds)))], d, rng)
                          for _ in range(self.mutations_per_round)]
            predicted = predictor.predict_batch([self._tokens(c, vocab) for c in candidates])
            ranked = np.argsort(-predicted)[: self.evaluate_top]
            for idx in ranked:
                program = candidates[int(idx)]
                space = self._execute(program, X, feature_names)
                score = evaluator(space.matrix(), y)
                corpus.append((program, score))
                if score > best_score:
                    best_score, best_plan = score, space.snapshot()

        return best_score, best_plan, {"corpus_size": len(corpus)}
