"""NFS — neural feature search (Table I baseline 5).

Following Chen et al. (ICDM 2019): an RNN controller emits, for every
original feature, a short pipeline of unary transformations (or a binary
crossing with another feature); the transformed dataset is evaluated and the
controller is trained with REINFORCE on the downstream score. We parameterize
the controller with our numpy RNN substrate and a per-slot softmax head.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FeatureTransformBaseline
from repro.core.operations import OPERATIONS
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.ml.evaluation import DownstreamEvaluator
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.recurrent import RNNEncoder
from repro.nn.tensor import Tensor, log_softmax

__all__ = ["NFS"]

_NOOP = len(OPERATIONS)  # extra action: leave the feature unchanged


class NFS(FeatureTransformBaseline):
    """RNN controller + REINFORCE over per-feature transformation pipelines."""

    name = "NFS"

    def __init__(
        self,
        n_epochs: int = 8,
        pipeline_length: int = 2,
        lr: float = 5e-3,
        hidden: int = 32,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.n_epochs = n_epochs
        self.pipeline_length = pipeline_length
        self.lr = lr
        self.hidden = hidden

    def _controller_logits(self, encoder, head, d: int) -> Tensor:
        """Encode the feature-index sequence; head scores every action slot."""
        tokens = np.arange(1, d + 1, dtype=np.int64).reshape(1, -1)
        context = encoder(tokens)  # (1, hidden)
        return head(context).reshape(self.pipeline_length * d, _NOOP + 1)

    def _apply_pipeline(
        self, X: np.ndarray, feature_names: list[str] | None, actions: np.ndarray,
        rng: np.random.Generator,
    ) -> FeatureSpace:
        space = FeatureSpace(X, feature_names)
        originals = list(space.original_ids)
        d = len(originals)
        current = list(originals)
        for slot in range(self.pipeline_length):
            for j in range(d):
                action = int(actions[slot * d + j])
                if action == _NOOP:
                    continue
                op = OPERATIONS[action]
                if op.arity == 1:
                    new = space.apply_unary(op.name, [current[j]])
                else:
                    partner = current[int(rng.integers(0, d))]
                    new = space.apply_binary(op.name, [current[j]], [partner])
                if new:
                    current[j] = new[0]
        return space

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str,
        feature_names: list[str] | None,
        evaluator: DownstreamEvaluator,
        base_score: float,
    ) -> tuple[float, TransformationPlan, dict]:
        rng = np.random.default_rng(self.seed)
        d = X.shape[1]
        encoder = RNNEncoder(
            vocab_size=d + 1, embed_dim=16, hidden_dim=self.hidden, num_layers=1, seed=self.seed
        )
        head = Linear(
            self.hidden,
            self.pipeline_length * d * (_NOOP + 1),
            rng=np.random.default_rng(self.seed),
        )
        optimizer = Adam(list(encoder.parameters()) + list(head.parameters()), lr=self.lr)

        best_score = base_score
        best_plan = FeatureSpace(X, feature_names).snapshot()
        baseline_reward = base_score

        for _ in range(self.n_epochs):
            logits = self._controller_logits(encoder, head, d)
            logp = log_softmax(logits, axis=1)
            probs = np.exp(logp.data)
            actions = np.array(
                [rng.choice(_NOOP + 1, p=probs[i] / probs[i].sum()) for i in range(len(probs))]
            )
            space = self._apply_pipeline(X, feature_names, actions, rng)
            score = evaluator(space.matrix(), y)
            if score > best_score:
                best_score = score
                best_plan = space.snapshot()

            # REINFORCE with a moving-average baseline.
            advantage = score - baseline_reward
            baseline_reward = 0.8 * baseline_reward + 0.2 * score
            optimizer.zero_grad()
            picked = logp[np.arange(len(actions)), actions]
            loss = -(picked.mean() * float(advantage))
            loss.backward()
            optimizer.step()

        return best_score, best_plan, {}
