"""GRFG — group-wise reinforced feature generation (Table I baseline 10).

GRFG (Wang et al., KDD 2022) is FastFT's direct ancestor: the same cascading
head/operation/tail agents and group-wise crossing, but *every* step is
evaluated with the downstream task (no Performance Predictor), the reward has
no novelty term, and the replay buffer is conventional. We therefore realize
it as the FastFT engine with those three components disabled — which is
exactly the relationship the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, FeatureTransformBaseline
from repro.core.config import FastFTConfig
from repro.core.engine import FastFT

__all__ = ["GRFG"]


class GRFG(FeatureTransformBaseline):
    """Cascading-RL feature generation with per-step downstream evaluation."""

    name = "GRFG"

    def __init__(
        self,
        episodes: int = 6,
        steps_per_episode: int = 5,
        cv_splits: int = 5,
        rf_estimators: int = 10,
        seed: int | None = 0,
        **config_overrides,
    ) -> None:
        super().__init__(cv_splits, rf_estimators, seed)
        self.episodes = episodes
        self.steps_per_episode = steps_per_episode
        self.config_overrides = config_overrides

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
    ) -> BaselineResult:
        config = FastFTConfig(
            episodes=self.episodes,
            steps_per_episode=self.steps_per_episode,
            cold_start_episodes=self.episodes,  # never leaves downstream feedback
            use_performance_predictor=False,
            use_novelty=False,
            prioritized_replay=True,  # GRFG also replays experiences
            cv_splits=self.cv_splits,
            rf_estimators=self.rf_estimators,
            seed=self.seed,
            **self.config_overrides,
        )
        result = FastFT(config).fit(X, y, task, feature_names)
        return BaselineResult(
            name=self.name,
            base_score=result.base_score,
            best_score=result.best_score,
            plan=result.plan,
            wall_time=result.time.overall,
            n_evaluations=result.n_downstream_calls,
            extra={"history_steps": len(result.history)},
        )

    def _search(self, *args, **kwargs):  # pragma: no cover - fit() overridden
        raise NotImplementedError
