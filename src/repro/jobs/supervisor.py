"""Fleet supervision: spawn workers, reclaim leases, retry, gather.

:class:`JobFleetSupervisor` drives an initialized sweep directory to
convergence with local worker processes (``repro jobs run --workers N``);
:func:`gather` assembles the directory's results into a
:class:`~repro.core.parallel.SweepResult`; :func:`run_jobfile_sweep` is the
one-call backend behind ``api.sweep(..., backend="jobfile")``.

The supervisor is itself crash-only: all of its decisions re-derive from
the directory (results, failure markers, leases, ``attempts.json``), so a
killed supervisor restarted over the same sweep dir picks up exactly where
the files say things stand. Failure policy per job:

- a worker that exits without publishing a valid result (crash, SIGKILL,
  exception, corrupt result file) costs one *attempt*; retries are
  scheduled with bounded exponential backoff;
- a lease whose heartbeat goes stale — wedged worker, dead host — is
  reclaimed: the lease file is removed (and a local zombie process
  SIGKILLed), which also costs the job one attempt;
- after ``max_retries`` failed attempts the job is marked permanently
  failed; :func:`gather` then raises a structured
  :class:`SweepGatherError` naming the failed seeds, or — under
  ``allow_partial=True`` — returns a partial ``SweepResult`` with
  ``failed_seeds`` populated so completed work is never discarded.

Observability: lease reclaims, retries, permanent failures, spawns and
completions are counted on a :class:`repro.obs.MetricsRegistry`, and the
run/gather phases open spans on an optional :class:`repro.obs.Tracer`.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from contextlib import nullcontext
from typing import Callable

import numpy as np

from repro.core.config import FastFTConfig
from repro.core.parallel import SweepResult, resolve_config
from repro.jobs.cache import load_durable_entries
from repro.jobs.chaos import ChaosSpec
from repro.jobs.spec import (
    JobDir,
    SweepSpec,
    cache_dir,
    init_sweep,
    load_spec,
    make_owner_id,
)
from repro.jobs.worker import _process_entry
from repro.ml.cache import EvaluationCache

__all__ = ["JobFleetSupervisor", "SweepGatherError", "gather", "run_jobfile_sweep"]


class SweepGatherError(RuntimeError):
    """A gather found incomplete seeds and ``allow_partial`` was off.

    Carries the machine-readable failure map so callers can react without
    parsing the message; the message itself names every failed seed and
    its reason — completed seeds are listed too, because the work they
    represent still exists on disk and a partial gather can recover it.
    """

    def __init__(self, sweep_dir: str, reasons: dict[int, str], completed: list[int]) -> None:
        self.sweep_dir = sweep_dir
        self.failed_seeds = sorted(reasons)
        self.reasons = reasons
        self.completed_seeds = list(completed)
        detail = "; ".join(f"seed {s}: {reasons[s]}" for s in self.failed_seeds)
        super().__init__(
            f"sweep gather at {sweep_dir!r} is incomplete — "
            f"{len(self.failed_seeds)} seed(s) unavailable ({detail}); "
            f"{len(completed)} completed seed(s) {completed} are intact — "
            "re-run the supervisor to retry, or gather with "
            "allow_partial=True for a partial SweepResult"
        )


def gather(sweep_dir: str, *, allow_partial: bool = False) -> SweepResult:
    """Assemble a :class:`SweepResult` from completed job dirs.

    Purely a read: verifies each result's digest frame and never mutates
    the sweep. The returned per-seed results are the pickled
    ``FastFTResult`` objects the workers published — bit-identical to the
    in-process backends by the resume/determinism contracts.
    """
    spec = load_spec(sweep_dir)
    results, reasons = {}, {}
    for seed in spec.seeds:
        job = JobDir(sweep_dir, seed)
        result, reason = job.load_result()
        if result is not None:
            results[seed] = result
            continue
        failed = job.load_failed()
        if failed is not None:
            attempts = failed.get("attempts", "?")
            reasons[seed] = (
                f"permanently failed after {attempts} attempt(s): "
                f"{failed.get('last_error', 'unknown error')}"
            )
        elif reason == "missing":
            reasons[seed] = "no result (job never completed)"
        else:
            reasons[seed] = reason
    completed = [s for s in spec.seeds if s in results]
    if reasons and not allow_partial:
        raise SweepGatherError(sweep_dir, reasons, completed)
    return SweepResult(
        task=spec.task,
        seeds=completed,
        results=results,
        failed_seeds=[s for s in spec.seeds if s in reasons],
    )


class JobFleetSupervisor:
    """Drive an initialized sweep directory to convergence with local workers.

    Parameters
    ----------
    n_workers:
        Concurrent worker processes (``-1`` = all cores).
    max_retries:
        Failed attempts before a job is marked permanently failed
        (default: the spec's value).
    chaos_factory:
        ``factory(seed, attempt) -> ChaosSpec | None`` arming fault
        injection per spawn (tests/benchmarks only).
    metrics / tracer:
        Optional :class:`repro.obs.MetricsRegistry` /
        :class:`repro.obs.Tracer`; a registry is created when omitted so
        counters are always inspectable via :attr:`metrics`.
    """

    def __init__(
        self,
        sweep_dir: str,
        n_workers: int = 1,
        *,
        max_retries: int | None = None,
        poll_interval: float = 0.05,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        chaos_factory: "Callable[[int, int], ChaosSpec | None] | None" = None,
        metrics=None,
        tracer=None,
    ) -> None:
        if n_workers < 1 and n_workers != -1:
            raise ValueError("n_workers must be >= 1 or -1 (all cores)")
        if metrics is None:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self.sweep_dir = os.fspath(sweep_dir)
        self.spec = load_spec(sweep_dir)
        self.n_workers = (os.cpu_count() or 1) if n_workers == -1 else n_workers
        self.max_retries = self.spec.max_retries if max_retries is None else max_retries
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.chaos_factory = chaos_factory
        self.metrics = metrics
        self.tracer = tracer
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            self._ctx = multiprocessing.get_context("spawn")
        self._procs: dict[int, tuple] = {}  # seed -> (Process, owner)

    # -- metrics shorthands -----------------------------------------------------

    def _count(self, name: str, help: str) -> None:
        self.metrics.counter(f"jobs_{name}_total", help).inc()

    # -- failure bookkeeping ----------------------------------------------------

    def _record_failure(self, job: JobDir, error: str) -> None:
        backoff = min(self.backoff_max, self.backoff_base * 2 ** job.load_attempts()["count"])
        attempts = job.record_attempt_failure(error, time.time() + backoff)
        if attempts > self.max_retries:
            job.mark_failed(error, attempts)
            self._count("failed", "jobs marked permanently failed")
        else:
            self._count("retries", "failed worker attempts scheduled for retry")

    # -- the loop ---------------------------------------------------------------

    def _reap_exited_workers(self) -> None:
        for seed, (proc, owner) in list(self._procs.items()):
            if proc.is_alive():
                continue
            proc.join()
            del self._procs[seed]
            job = JobDir(self.sweep_dir, seed)
            result, reason = job.load_result()
            if result is not None:
                self._count("completed", "jobs completed with a valid result")
                continue
            if proc.exitcode == 3:
                continue  # lease contention, not a failure: re-polled next tick
            # A dead local worker cannot heartbeat; release its lease now
            # instead of waiting out the stale timeout.
            job.release(owner)
            detail = reason if reason != "missing" else f"worker exited with code {proc.exitcode}"
            if reason not in (None, "missing"):
                job.discard_result()
                self._count("corrupt_results", "result files that failed digest verification")
            self._record_failure(job, detail)

    def _reclaim_stale_leases(self) -> None:
        # Local children with live heartbeats never go stale; ones that are
        # wedged (frozen heartbeat) are exactly what this check catches, so
        # no seed is exempt from it.
        for seed in self.spec.seeds:
            job = JobDir(self.sweep_dir, seed)
            if job.state() != "leased":
                continue
            if job.reclaim_if_stale(self.spec.lease_timeout):
                self._count("lease_reclaims", "stale leases reclaimed by the supervisor")
                entry = self._procs.pop(seed, None)
                if entry is not None and entry[0].is_alive():
                    entry[0].kill()  # the wedged local zombie
                    entry[0].join()
                self._record_failure(job, "stale lease reclaimed (heartbeat timed out)")

    def _spawn_ready_jobs(self) -> None:
        now = time.time()
        for seed in self.spec.seeds:
            if len(self._procs) >= self.n_workers:
                return
            if seed in self._procs:
                continue
            job = JobDir(self.sweep_dir, seed)
            if job.state() != "pending":
                continue
            attempts = job.load_attempts()
            if attempts["count"] > self.max_retries or now < attempts.get("next_retry_at", 0.0):
                continue
            owner = make_owner_id()
            chaos = self.chaos_factory(seed, attempts["count"]) if self.chaos_factory else None
            proc = self._ctx.Process(
                target=_process_entry,
                args=(self.sweep_dir, seed, owner, chaos),
                name=f"fastft-job-seed{seed}",
            )
            proc.start()
            self._procs[seed] = (proc, owner)
            self._count("spawned", "worker processes spawned")

    def states(self) -> dict[int, str]:
        return {
            seed: JobDir(self.sweep_dir, seed).state(self.spec.lease_timeout)
            for seed in self.spec.seeds
        }

    def run(self, *, reset_failed: bool = False) -> dict[int, str]:
        """Drive every job to ``done`` or ``failed``; returns final states.

        ``reset_failed`` clears permanent-failure markers and retry
        counters first, giving previously failed jobs a fresh budget.
        """
        if reset_failed:
            for seed in self.spec.seeds:
                JobDir(self.sweep_dir, seed).reset_failure_state()
        span = self.tracer.span("jobs.supervise") if self.tracer is not None else nullcontext()
        with span:
            try:
                while True:
                    self._reap_exited_workers()
                    self._reclaim_stale_leases()
                    states = self.states()
                    pending = [
                        s for s, st in states.items() if st not in ("done", "failed")
                    ]
                    if not pending and not self._procs:
                        return states
                    self._spawn_ready_jobs()
                    time.sleep(self.poll_interval)
            finally:
                for proc, _owner in self._procs.values():
                    proc.kill()
                    proc.join()
                self._procs.clear()


def run_jobfile_sweep(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    *,
    seeds=(0, 1, 2),
    config: FastFTConfig | None = None,
    feature_names: list[str] | None = None,
    sweep_dir: str | None = None,
    n_workers: int = 1,
    max_retries: int = 2,
    lease_timeout: float = 30.0,
    checkpoint_every: int = 1,
    allow_partial: bool = False,
    cache: EvaluationCache | None = None,
    chaos_factory=None,
    metrics=None,
    tracer=None,
    poll_interval: float = 0.05,
    name: str = "sweep",
    **config_overrides,
) -> SweepResult:
    """The ``backend="jobfile"`` sweep: init (or adopt) a dir, supervise, gather.

    With ``sweep_dir=None`` the fleet runs in a temporary directory that
    is removed afterwards — pure drop-in for the pool backend. A persistent
    ``sweep_dir`` survives crashes: re-invoking over the same directory
    resumes unfinished jobs from their checkpoints (the spec's dataset,
    task and seeds must match the call's — drift raises).

    ``cache`` mirrors the pool backend's semantics: its entries pre-seed
    the sweep's durable oracle cache, and every durable entry folds back
    into it after the gather.
    """
    cfg = resolve_config(config, config_overrides)
    seeds = [int(s) for s in seeds]
    owns_dir = sweep_dir is None
    if owns_dir:
        sweep_dir = tempfile.mkdtemp(prefix="fastft-sweep-")
    try:
        spec = SweepSpec(
            task=task,
            seeds=seeds,
            config=cfg,
            feature_names=list(feature_names) if feature_names else None,
            name=name,
            lease_timeout=lease_timeout,
            max_retries=max_retries,
            checkpoint_every=checkpoint_every,
        )
        spec_path = os.path.join(sweep_dir, "spec.json")
        if os.path.exists(spec_path):
            existing = load_spec(sweep_dir)
            if existing.task != task or existing.seeds != seeds:
                raise ValueError(
                    f"sweep dir {sweep_dir!r} was initialized for task="
                    f"{existing.task!r} seeds={existing.seeds}, which does not "
                    f"match this call (task={task!r} seeds={seeds}); use a "
                    "fresh directory or matching arguments"
                )
        else:
            init_sweep(sweep_dir, X, y, spec)

        if cache is not None:
            _preseed_durable_cache(sweep_dir, cache)

        supervisor = JobFleetSupervisor(
            sweep_dir,
            n_workers,
            max_retries=max_retries,
            poll_interval=poll_interval,
            chaos_factory=chaos_factory,
            metrics=metrics,
            tracer=tracer,
        )
        supervisor.run()
        span = tracer.span("jobs.gather") if tracer is not None else nullcontext()
        with span:
            result = gather(sweep_dir, allow_partial=allow_partial)
        if cache is not None:
            merged = cache.merge_entries(load_durable_entries(cache_dir(sweep_dir)))
            supervisor.metrics.counter(
                "jobs_cache_entries_merged_total",
                "durable cache entries folded back into the caller's cache",
            ).inc(merged)
        return result
    finally:
        if owns_dir:
            shutil.rmtree(sweep_dir, ignore_errors=True)


def _preseed_durable_cache(sweep_dir: str, cache: EvaluationCache) -> None:
    """Append a local cache's entries into the sweep's durable cache."""
    from repro.jobs.cache import DurableOracleCache

    durable = DurableOracleCache(cache_dir(sweep_dir), owner="preseed")
    try:
        for key, score in cache.snapshot_entries().items():
            durable.put(key, score)
    finally:
        durable.close()
