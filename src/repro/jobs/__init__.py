"""Crash-safe job-fleet sweeps over a shared filesystem.

``repro.jobs`` turns a :func:`repro.api.sweep` into a directory of
independent, resumable jobs — one per seed — coordinated purely through
files: lease files with heartbeats, atomic checkpoint/result publication,
a durable append-only oracle cache, and retry counters. Any process (a
worker, the supervisor, the whole host) may die at any instruction;
re-running converges to a ``SweepResult`` bit-identical to the in-process
pool backend's. See ``README.md`` ("Scaling out") for the workflow and
``repro/jobs/chaos.py`` for the fault-injection layer that proves the
claim.

Entry points:

- :func:`run_jobfile_sweep` — the one-call backend behind
  ``api.sweep(..., backend="jobfile")``;
- :func:`init_sweep` / :func:`run_job` / :class:`JobFleetSupervisor` /
  :func:`gather` — the underlying init → work → collect protocol, also
  exposed as ``repro jobs init|run|worker|status|gather|launch``;
- :func:`write_launcher` — job-array scripts for schedulers.
"""

from repro.jobs.cache import DurableOracleCache, load_durable_entries
from repro.jobs.chaos import ChaosCallback, ChaosError, ChaosSpec
from repro.jobs.launcher import render_launcher, write_launcher
from repro.jobs.spec import JobDir, SweepSpec, cache_dir, init_sweep, load_spec, make_owner_id
from repro.jobs.supervisor import (
    JobFleetSupervisor,
    SweepGatherError,
    gather,
    run_jobfile_sweep,
)
from repro.jobs.worker import WORKER_ALREADY_DONE, WORKER_DONE, WORKER_LEASED, run_job

__all__ = [
    "ChaosCallback",
    "ChaosError",
    "ChaosSpec",
    "DurableOracleCache",
    "JobDir",
    "JobFleetSupervisor",
    "SweepGatherError",
    "SweepSpec",
    "WORKER_ALREADY_DONE",
    "WORKER_DONE",
    "WORKER_LEASED",
    "cache_dir",
    "gather",
    "init_sweep",
    "load_durable_entries",
    "load_spec",
    "make_owner_id",
    "render_launcher",
    "run_job",
    "run_jobfile_sweep",
    "write_launcher",
]
