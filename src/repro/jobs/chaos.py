"""Fault injection for the job fleet: kill, hang, freeze, corrupt.

The crash-only claim of :mod:`repro.jobs` — any process may die at any
instruction and a restart converges to the same bit-identical
``SweepResult`` — is only worth making if it is *tested*. This module is
the chaos layer those tests (and ``benchmarks/test_jobfleet.py``) drive:

- :class:`ChaosSpec` rides into a worker process (it is picklable and
  plumbed through the supervisor's ``chaos_factory``) and arms a
  :class:`ChaosCallback` that SIGKILLs, hangs, or raises at an exact
  global step — mid-episode, between checkpoints, wherever the test aims;
- ``freeze_heartbeat`` simulates a wedged-but-alive worker whose lease
  must go stale and be reclaimed;
- :func:`truncate_tail` / :func:`flip_byte` damage durable files the way
  disks and interrupted writers do, for torn-tail and corrupt-result
  recovery tests.

Nothing here is imported by production code paths; workers only consult a
chaos spec when a supervisor or test explicitly hands one over.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.core.callbacks import Callback

__all__ = [
    "ChaosSpec",
    "ChaosError",
    "ChaosCallback",
    "truncate_tail",
    "flip_byte",
]


class ChaosError(RuntimeError):
    """The injected clean-failure path (exception, not SIGKILL)."""


@dataclass
class ChaosSpec:
    """What to break inside one worker attempt.

    ``*_at_global_step`` counts the session's *global* step numbering, so
    a spec can target mid-episode precisely (e.g. step 4 of a
    3-steps-per-episode schedule is step 1 of episode 2 — after episode
    1's checkpoint, before episode 2's).
    """

    kill_at_global_step: int | None = None  # SIGKILL self — no cleanup at all
    raise_at_global_step: int | None = None  # raise ChaosError — the clean path
    hang_at_global_step: int | None = None  # sleep, heartbeat still live or frozen
    hang_seconds: float = 3600.0
    freeze_heartbeat: bool = False  # never renew the lease

    @property
    def is_noop(self) -> bool:
        return (
            self.kill_at_global_step is None
            and self.raise_at_global_step is None
            and self.hang_at_global_step is None
            and not self.freeze_heartbeat
        )


class ChaosCallback(Callback):
    """Arms a :class:`ChaosSpec` on the session's step stream."""

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec

    def on_step(self, session, record) -> None:
        step = record.global_step
        if self.spec.hang_at_global_step is not None and step == self.spec.hang_at_global_step:
            time.sleep(self.spec.hang_seconds)
        if self.spec.raise_at_global_step is not None and step == self.spec.raise_at_global_step:
            raise ChaosError(f"injected failure at global step {step}")
        if self.spec.kill_at_global_step is not None and step == self.spec.kill_at_global_step:
            # SIGKILL is the honest crash: no finally blocks, no flushes,
            # no lease release — exactly what the OOM killer delivers.
            os.kill(os.getpid(), signal.SIGKILL)


def truncate_tail(path: str, n_bytes: int) -> None:
    """Chop ``n_bytes`` off the end of a file — a torn final write."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(0, size - n_bytes))


def flip_byte(path: str, offset: int | None = None) -> None:
    """XOR one byte in place — silent media corruption.

    ``offset`` defaults to the middle of the file; negative offsets count
    from the end, as with ``seek``.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    if offset is None:
        offset = size // 2
    if offset < 0:
        offset += size
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
