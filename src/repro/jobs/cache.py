"""Durable append-only oracle cache for fleet workers on a shared filesystem.

The in-process backends memoize downstream CV scores in RAM
(:class:`repro.ml.cache.EvaluationCache`) or in a Manager process
(:class:`~repro.ml.cache.SharedEvaluationCache`) — both die with their
process. Fleet workers instead append every freshly computed score to a
per-owner segment file under ``<sweep_dir>/cache/``, using the *same*
content-signature keys, so a score any worker ever paid for survives every
crash and seeds every restart. Scores are exact, so sharing changes how
many real CV runs a sweep costs — never its trajectory.

Crash-safety of the log itself:

- **records are line-framed and checksummed** — ``<sha1-key> <score.hex()>
  <crc32>\\n``; ``float.hex()`` round-trips bit-exactly, and the CRC covers
  key and score together;
- **appends are flush+fsync'd**, so a record either made it to the device
  whole or is a *tail*;
- **torn tails never poison earlier entries**: a loader stops at the first
  record that fails framing or CRC, and repairs (truncates) the damage —
  but only in its *own* segment, because truncating a file another live
  worker is appending to would corrupt *their* tail;
- **one segment per owner**: concurrent appenders never interleave within
  a file, which is the property NFS and friends cannot otherwise promise.

The cache subclasses :class:`EvaluationCache`, so
:meth:`~repro.ml.cache.EvaluationCache.wrap` /
:class:`~repro.ml.cache.CachedEvaluator` work unchanged, and it seeds from
/ folds back into local caches through the inherited
``merge_entries`` / ``snapshot_entries`` API. Pickling (e.g. inside a
session checkpoint) strips durability down to a plain in-memory cache —
each worker process re-attaches its own fresh segment on resume.
"""

from __future__ import annotations

import os
import warnings
import zlib

from repro.ml.cache import EvaluationCache

__all__ = [
    "DurableOracleCache",
    "encode_record",
    "load_segment",
    "load_durable_entries",
]

SEGMENT_SUFFIX = ".log"
_KEY_LEN = 40  # sha1 hexdigest


def encode_record(key: str, score: float) -> bytes:
    """One checksummed cache record: ``<key> <score.hex()> <crc32>\\n``."""
    body = f"{key} {float(score).hex()}"
    crc = zlib.crc32(body.encode("ascii"))
    return f"{body} {crc:08x}\n".encode("ascii")


def _parse_record(line: bytes) -> tuple[str, float] | None:
    """Decode one record line; ``None`` if framing or checksum fails."""
    try:
        text = line.decode("ascii")
        key, score_hex, crc_hex = text.split(" ")
    except (UnicodeDecodeError, ValueError):
        return None
    if len(key) != _KEY_LEN or len(crc_hex) != 8:
        return None
    body = f"{key} {score_hex}"
    try:
        if zlib.crc32(body.encode("ascii")) != int(crc_hex, 16):
            return None
        return key, float.fromhex(score_hex)
    except ValueError:
        return None


def load_segment(path: str, *, repair: bool = False) -> dict[str, float]:
    """Read one segment, stopping at the first damaged record.

    Damage — a torn tail from a crashed appender, or injected corruption —
    invalidates the damaged record *and everything after it* (a corrupt
    region makes later framing untrustworthy), but never the records
    before it. With ``repair=True`` the file is truncated back to the last
    valid record; only ever do that to a segment you own.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return {}
    entries: dict[str, float] = {}
    valid_end = 0
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: record never finished
        parsed = _parse_record(data[offset:newline])
        if parsed is None:
            break
        entries[parsed[0]] = parsed[1]
        offset = newline + 1
        valid_end = offset
    if repair and valid_end < len(data):
        with open(path, "r+b") as fh:
            fh.truncate(valid_end)
            fh.flush()
            os.fsync(fh.fileno())
        warnings.warn(
            f"durable oracle cache segment {path!r} had a damaged tail; "
            f"truncated {len(data) - valid_end} byte(s), {len(entries)} "
            "earlier record(s) intact",
            RuntimeWarning,
            stacklevel=2,
        )
    return entries


def load_durable_entries(cache_dir: str) -> dict[str, float]:
    """Merge every segment under ``cache_dir`` (read-only, repair nothing).

    Segments are read in sorted name order; keys are content signatures of
    a deterministic evaluator, so duplicate keys across segments always
    carry the same score and merge order is immaterial.
    """
    entries: dict[str, float] = {}
    try:
        names = sorted(os.listdir(cache_dir))
    except FileNotFoundError:
        return entries
    for name in names:
        if name.endswith(SEGMENT_SUFFIX):
            entries.update(load_segment(os.path.join(cache_dir, name)))
    return entries


class DurableOracleCache(EvaluationCache):
    """An :class:`EvaluationCache` whose misses are durably appended.

    Parameters
    ----------
    cache_dir:
        Shared segment directory (``<sweep_dir>/cache``). Created if
        missing. All existing segments seed the in-memory store at open.
    owner:
        Segment identity for appends. ``None`` opens the cache read-only
        (loads and serves entries, never appends). Only the owner's own
        segment is tail-repaired at open.
    fsync:
        fsync every append (default). An append costs a fraction of the
        ~100ms+ CV evaluation it memoizes, so durability is cheap here.
    """

    def __init__(
        self,
        cache_dir: str,
        owner: str | None = None,
        max_entries: int = 1_000_000,
        *,
        fsync: bool = True,
    ) -> None:
        super().__init__(max_entries=max_entries)
        self._dir = os.fspath(cache_dir)
        self._owner = owner
        self._fsync = fsync
        self._fh = None
        os.makedirs(self._dir, exist_ok=True)
        own = self.segment_path
        for name in sorted(os.listdir(self._dir)):
            if not name.endswith(SEGMENT_SUFFIX):
                continue
            path = os.path.join(self._dir, name)
            self._entries.update(load_segment(path, repair=(path == own)))

    @property
    def segment_path(self) -> str | None:
        if self._owner is None:
            return None
        return os.path.join(self._dir, f"{self._owner}{SEGMENT_SUFFIX}")

    def put(self, key: str, score: float) -> None:
        score = float(score)
        known = self._entries.get(key)
        super().put(key, score)
        # Append only genuinely new knowledge: redundant puts of an
        # existing (key, score) — retries, racing result() calls — would
        # otherwise grow the log without adding information.
        if known == score or self._owner is None or self._dir is None:
            return
        if self._fh is None:
            self._fh = open(self.segment_path, "ab")
        self._fh.write(encode_record(key, score))
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def refresh(self) -> int:
        """Fold in records other workers appended since open; returns new count."""
        if self._dir is None:
            return 0
        before = len(self._entries)
        for key, score in load_durable_entries(self._dir).items():
            if key not in self._entries:
                self._entries[key] = score
        return len(self._entries) - before

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __getstate__(self) -> dict:
        # Checkpoints must stay portable across processes and hosts: the
        # pickled form degrades to a plain in-memory EvaluationCache (the
        # entries travel; the open segment handle and the owner identity —
        # which is per-process — do not). Workers re-attach a fresh
        # DurableOracleCache after resume.
        state = dict(self.__dict__)
        state["_fh"] = None
        state["_dir"] = None
        state["_owner"] = None
        return state
