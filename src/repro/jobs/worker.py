"""The fleet worker: claim a job, resume its checkpoint, publish its result.

One worker runs one seed of a sweep to completion. Its contract is
idempotence — running it any number of times, interleaved with crashes at
any instruction, converges to the same published result:

- a job with a valid result is a no-op (``already-done``);
- a job whose lease another live worker holds is skipped (``leased``);
- otherwise the worker claims the lease, heartbeats it from a daemon
  thread, and runs the seeded :class:`~repro.core.session.SearchSession`
  **from its last durable checkpoint** when one exists — PR 1's
  bit-identical resume contract means a crashed-and-restarted job replays
  the exact trajectory an uninterrupted run would have taken;
- every downstream score it computes is appended to the sweep's durable
  oracle cache, so a restart never re-pays CV work any attempt (by any
  worker) already did;
- the final result publishes atomically with a digest frame, then the
  lease is released.

A corrupt checkpoint (external damage — the write itself is atomic) is
quarantined with a warning and the job restarts from scratch: slower,
never wrong. Exit codes for scheduler arrays: 0 done, 3 lease contention
(retry later), 1 failure.
"""

from __future__ import annotations

import os
import sys
import threading
import warnings
from dataclasses import replace

from repro.core.callbacks import Callback, Checkpointer
from repro.core.session import CheckpointCorruptError, SearchSession, make_default_evaluator
from repro.jobs.cache import DurableOracleCache
from repro.jobs.chaos import ChaosCallback, ChaosSpec
from repro.jobs.spec import JobDir, cache_dir, load_data, load_spec, make_owner_id

__all__ = ["run_job", "WORKER_DONE", "WORKER_LEASED", "WORKER_ALREADY_DONE"]

WORKER_DONE = "done"
WORKER_ALREADY_DONE = "already-done"
WORKER_LEASED = "leased"


class _Heartbeat(threading.Thread):
    """Renews the job lease until stopped or until ownership is lost.

    Losing ownership (a supervisor reclaimed the lease as stale) stops the
    renewals — a resurrected lease would fight the replacement worker —
    but deliberately does *not* abort the run: both workers execute the
    same deterministic search against idempotent storage, so letting the
    zombie finish is harmless and occasionally even useful.
    """

    def __init__(self, job: JobDir, owner: str, interval: float) -> None:
        super().__init__(name=f"fastft-lease-{job.seed}", daemon=True)
        self._job = job
        self._owner = owner
        self._interval = interval
        self._stop_flag = threading.Event()

    def run(self) -> None:
        while not self._stop_flag.wait(self._interval):
            if not self._job.renew(self._owner):
                return

    def stop(self) -> None:
        self._stop_flag.set()
        self.join(timeout=5.0)


def run_job(
    sweep_dir: str,
    seed: int,
    *,
    owner: str | None = None,
    chaos: ChaosSpec | None = None,
    extra_callbacks: "list[Callback] | None" = None,
) -> str:
    """Run one job of an initialized sweep; returns a status string.

    ``owner`` defaults to a fresh unique id. ``chaos`` arms the
    fault-injection layer (tests only). Raises on search failure — the
    supervisor (or the scheduler) counts the attempt and retries.
    """
    spec = load_spec(sweep_dir)
    if seed not in spec.seeds:
        raise ValueError(f"seed {seed} is not part of this sweep (seeds: {spec.seeds})")
    job = JobDir(sweep_dir, seed)
    if job.load_result()[0] is not None:
        return WORKER_ALREADY_DONE
    owner = owner or make_owner_id()
    if not job.claim(owner):
        return WORKER_LEASED

    heartbeat = None
    cache = None
    try:
        if not (chaos is not None and chaos.freeze_heartbeat):
            interval = max(0.01, spec.lease_timeout / 4.0)
            heartbeat = _Heartbeat(job, owner, interval)
            heartbeat.start()

        cache = DurableOracleCache(cache_dir(sweep_dir), owner=owner)
        callbacks: list[Callback] = [
            Checkpointer(job.checkpoint_path, every_episodes=spec.checkpoint_every)
        ]
        if chaos is not None:
            callbacks.append(ChaosCallback(chaos))
        callbacks.extend(extra_callbacks or [])

        session = None
        if os.path.exists(job.checkpoint_path):
            try:
                session = SearchSession.resume(job.checkpoint_path, callbacks=callbacks)
            except (CheckpointCorruptError, ValueError) as exc:
                # Atomic writes make a *torn* checkpoint impossible; this
                # is external damage. Quarantine and restart from scratch:
                # the rerun is bit-identical to what an uninterrupted run
                # would have produced, just slower.
                warnings.warn(
                    f"discarding unreadable checkpoint for seed {seed} "
                    f"({exc}); restarting the job from scratch",
                    RuntimeWarning,
                    stacklevel=2,
                )
                try:
                    os.replace(job.checkpoint_path, job.checkpoint_path + ".corrupt")
                except OSError:
                    pass
            else:
                # The checkpoint degraded its durable cache to a plain
                # in-memory one (see DurableOracleCache.__getstate__);
                # re-attach this process's own segment, pre-seeded with
                # everything any worker ever computed.
                evaluator = getattr(session, "_evaluator", None)
                if evaluator is not None and hasattr(evaluator, "cache"):
                    evaluator.cache = cache
        if session is None:
            config = replace(spec.config, seed=seed)
            session = SearchSession(
                *load_data(sweep_dir),
                task=spec.task,
                config=config,
                feature_names=spec.feature_names,
                evaluator=cache.wrap(make_default_evaluator(spec.task, config)),
                callbacks=callbacks,
            )

        result = session.run()
        job.publish_result(result)
        return WORKER_DONE
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if cache is not None:
            cache.close()
        job.release(owner)


def _process_entry(sweep_dir: str, seed: int, owner: str, chaos: ChaosSpec | None) -> None:
    """Worker-process body: maps :func:`run_job` statuses onto exit codes."""
    try:
        status = run_job(sweep_dir, seed, owner=owner, chaos=chaos)
    except Exception as exc:  # the supervisor counts the attempt and retries
        print(f"[fastft-jobs] seed={seed} failed: {exc!r}", file=sys.stderr)
        sys.exit(1)
    sys.exit(3 if status == WORKER_LEASED else 0)
