"""Sweep specs and per-job directories — the on-disk truth of a job fleet.

A :mod:`repro.jobs` sweep is a directory, not a process. Everything a
worker needs lives under it, and everything a worker produces returns to
it, so any process — the supervisor, a worker, a scheduler array task, a
human with ``ls`` — can die at any instruction and a restart converges::

    sweep_dir/
      spec.json           # commit point: the sweep exists once this does
      data.npz            # X / y, exact-byte numpy round trip
      jobs/seed=<s>/
        lease.json        # who is running this job, heartbeat-renewed
        checkpoint.pkl    # SearchSession checkpoint (atomic, resumable)
        result.pkl        # digest-framed final FastFTResult (atomic)
        attempts.json     # supervisor bookkeeping: retries, backoff
        failed.json       # permanent-failure marker after max_retries
      cache/<owner>.log   # durable oracle cache segments (repro.jobs.cache)

Invariants:

- every durable file is published with tmp + ``os.replace`` + fsync
  (:mod:`repro.core.fsio`), so readers see *absent* or *complete*, never torn;
- job dirs are idempotent: re-running a job that already has a valid
  result is a no-op, and re-running a crashed job resumes from its last
  checkpoint (bit-identical continuation — the PR 1 contract);
- results carry a sha256 digest frame, so external corruption is detected
  at load and the job is retried instead of poisoning the gather;
- leases are advisory but crash-safe: claimed with ``O_CREAT | O_EXCL``,
  renewed atomically, reclaimed by the supervisor once the heartbeat goes
  stale. Two workers briefly owning one job (reclaim racing a frozen but
  live worker) is *benign by construction*: both run the same
  deterministic search, checkpoints and results are atomic and
  content-identical, and cache segments are per-owner.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import FastFTConfig
from repro.core.fsio import atomic_write_bytes, atomic_write_text, fsync_dir

__all__ = [
    "SweepSpec",
    "JobDir",
    "SPEC_FORMAT",
    "SPEC_VERSION",
    "SPEC_FILE",
    "DATA_FILE",
    "make_owner_id",
    "init_sweep",
    "load_spec",
    "load_data",
    "job_dirs",
]

SPEC_FORMAT = "fastft-sweep"
SPEC_VERSION = 1
SPEC_FILE = "spec.json"
DATA_FILE = "data.npz"
CACHE_DIRNAME = "cache"
JOBS_DIRNAME = "jobs"

RESULT_FORMAT = "fastft-job-result"
RESULT_VERSION = 1
# 8-byte magic + 32-byte sha256 of the payload, then the payload itself.
RESULT_MAGIC = b"FFTJOBR\x01"


def make_owner_id() -> str:
    """A lease owner id unique across hosts, processes and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class SweepSpec:
    """The serializable description of one multi-seed sweep.

    ``config`` is the *base* config; each job runs ``replace(config,
    seed=<job seed>)``, exactly like the in-process pool backend, which is
    what makes the two backends bit-identical.
    """

    task: str
    seeds: list[int]
    config: FastFTConfig = field(default_factory=FastFTConfig)
    feature_names: list[str] | None = None
    name: str = "sweep"
    lease_timeout: float = 30.0
    max_retries: int = 2
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        self.seeds = [int(s) for s in self.seeds]
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"seeds must be unique, got {self.seeds}")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

    def to_jsonable(self) -> dict:
        return {
            "format": SPEC_FORMAT,
            "version": SPEC_VERSION,
            "name": self.name,
            "task": self.task,
            "seeds": list(self.seeds),
            "feature_names": self.feature_names,
            "lease_timeout": self.lease_timeout,
            "max_retries": self.max_retries,
            "checkpoint_every": self.checkpoint_every,
            "config": self.config.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "SweepSpec":
        if payload.get("format") != SPEC_FORMAT:
            raise ValueError("not a FastFT sweep spec")
        if payload.get("version") != SPEC_VERSION:
            raise ValueError(
                f"unsupported sweep-spec version {payload.get('version')!r} "
                f"(this build reads version {SPEC_VERSION})"
            )
        return cls(
            task=payload["task"],
            seeds=[int(s) for s in payload["seeds"]],
            config=FastFTConfig.from_jsonable(payload["config"]),
            feature_names=payload.get("feature_names"),
            name=payload.get("name", "sweep"),
            lease_timeout=float(payload.get("lease_timeout", 30.0)),
            max_retries=int(payload.get("max_retries", 2)),
            checkpoint_every=int(payload.get("checkpoint_every", 1)),
        )


def init_sweep(sweep_dir: str, X: np.ndarray, y: np.ndarray, spec: SweepSpec) -> None:
    """Materialize a sweep directory; ``spec.json`` is the commit point.

    Writing order matters for crash safety: data first, the spec last and
    atomically — a directory without a readable ``spec.json`` is simply
    not a sweep yet, whatever else a crashed initializer left behind.
    """
    sweep_dir = os.fspath(sweep_dir)
    os.makedirs(sweep_dir, exist_ok=True)
    os.makedirs(os.path.join(sweep_dir, JOBS_DIRNAME), exist_ok=True)
    os.makedirs(os.path.join(sweep_dir, CACHE_DIRNAME), exist_ok=True)
    for seed in spec.seeds:
        os.makedirs(JobDir(sweep_dir, seed).path, exist_ok=True)

    data_path = os.path.join(sweep_dir, DATA_FILE)
    fd, tmp = tempfile.mkstemp(prefix=DATA_FILE + ".", suffix=".tmp", dir=sweep_dir)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, X=np.asarray(X), y=np.asarray(y))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, data_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(sweep_dir)
    atomic_write_text(
        os.path.join(sweep_dir, SPEC_FILE),
        json.dumps(spec.to_jsonable(), indent=2) + "\n",
    )


def load_spec(sweep_dir: str) -> SweepSpec:
    path = os.path.join(os.fspath(sweep_dir), SPEC_FILE)
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"{sweep_dir!r} is not an initialized sweep directory (no {SPEC_FILE})"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path!r} is not a readable sweep spec: {exc}") from exc
    return SweepSpec.from_jsonable(payload)


def load_data(sweep_dir: str) -> tuple[np.ndarray, np.ndarray]:
    """The exact arrays the sweep was initialized with (byte-for-byte)."""
    with np.load(os.path.join(os.fspath(sweep_dir), DATA_FILE)) as data:
        return data["X"], data["y"]


def cache_dir(sweep_dir: str) -> str:
    return os.path.join(os.fspath(sweep_dir), CACHE_DIRNAME)


def job_dirs(sweep_dir: str, spec: SweepSpec) -> "list[JobDir]":
    return [JobDir(sweep_dir, seed) for seed in spec.seeds]


class JobDir:
    """One seed's idempotent working directory: lease, checkpoint, result."""

    def __init__(self, sweep_dir: str, seed: int) -> None:
        self.sweep_dir = os.fspath(sweep_dir)
        self.seed = int(seed)
        self.path = os.path.join(self.sweep_dir, JOBS_DIRNAME, f"seed={self.seed}")
        self.lease_path = os.path.join(self.path, "lease.json")
        self.checkpoint_path = os.path.join(self.path, "checkpoint.pkl")
        self.result_path = os.path.join(self.path, "result.pkl")
        self.attempts_path = os.path.join(self.path, "attempts.json")
        self.failed_path = os.path.join(self.path, "failed.json")

    # -- leases -----------------------------------------------------------------

    def claim(self, owner: str) -> bool:
        """Try to take the lease; ``O_CREAT | O_EXCL`` makes it exclusive."""
        os.makedirs(self.path, exist_ok=True)
        try:
            fd = os.open(self.lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            now = time.time()
            payload = json.dumps(
                {"owner": owner, "acquired_at": now, "renewed_at": now,
                 "pid": os.getpid(), "host": socket.gethostname()}
            ).encode("utf-8")
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def read_lease(self) -> dict | None:
        """The lease payload, or ``None`` when unleased.

        A lease file that exists but cannot be parsed (a claimer died
        between create and write) is reported with its file mtime standing
        in for ``renewed_at``, so staleness still measures from the last
        observable activity.
        """
        try:
            with open(self.lease_path, encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        try:
            lease = json.loads(raw)
            if not isinstance(lease, dict) or "renewed_at" not in lease:
                raise ValueError
        except ValueError:
            try:
                mtime = os.stat(self.lease_path).st_mtime
            except OSError:
                return None
            lease = {"owner": None, "acquired_at": mtime, "renewed_at": mtime}
        return lease

    def renew(self, owner: str) -> bool:
        """Heartbeat: refresh ``renewed_at`` if we still own the lease.

        Returns ``False`` (without writing) when the lease is gone or owned
        by someone else — the signal for a heartbeat thread to stop rather
        than resurrect a reclaimed lease.
        """
        lease = self.read_lease()
        if lease is None or lease.get("owner") != owner:
            return False
        lease["renewed_at"] = time.time()
        atomic_write_text(self.lease_path, json.dumps(lease), fsync=False)
        return True

    def release(self, owner: str) -> bool:
        """Drop the lease if ``owner`` still holds it."""
        lease = self.read_lease()
        if lease is None or lease.get("owner") != owner:
            return False
        try:
            os.unlink(self.lease_path)
        except FileNotFoundError:
            return False
        return True

    def lease_age(self, now: float | None = None) -> float | None:
        """Seconds since the last heartbeat, or ``None`` when unleased."""
        lease = self.read_lease()
        if lease is None:
            return None
        return (now if now is not None else time.time()) - float(lease["renewed_at"])

    def reclaim_if_stale(self, timeout: float, now: float | None = None) -> bool:
        """Supervisor-side: drop a lease whose heartbeat went stale."""
        age = self.lease_age(now)
        if age is None or age <= timeout:
            return False
        try:
            os.unlink(self.lease_path)
        except FileNotFoundError:
            return False
        return True

    # -- results ----------------------------------------------------------------

    def publish_result(self, result: Any) -> None:
        """Atomically publish the job's final result with a digest frame.

        The frame (magic + sha256 + payload) is what lets a later reader
        distinguish *external* corruption from a valid file — atomic
        publication already rules out torn writes.
        """
        payload = pickle.dumps(
            {"format": RESULT_FORMAT, "version": RESULT_VERSION,
             "seed": self.seed, "result": result}
        )
        digest = hashlib.sha256(payload).digest()
        atomic_write_bytes(self.result_path, RESULT_MAGIC + digest + payload)

    def load_result(self) -> tuple[Any | None, str | None]:
        """Returns ``(result, None)`` or ``(None, reason)``.

        ``reason`` is ``None`` only on success; "missing" means the job
        never completed, anything else describes damage (digest mismatch,
        bad frame) that the supervisor should treat as a failed attempt.
        """
        try:
            with open(self.result_path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return None, "missing"
        if len(blob) < len(RESULT_MAGIC) + 32 or not blob.startswith(RESULT_MAGIC):
            return None, "corrupt result: bad frame header"
        digest = blob[len(RESULT_MAGIC):len(RESULT_MAGIC) + 32]
        payload = blob[len(RESULT_MAGIC) + 32:]
        if hashlib.sha256(payload).digest() != digest:
            return None, "corrupt result: sha256 digest mismatch"
        try:
            frame = pickle.loads(payload)
        except Exception as exc:
            return None, f"corrupt result: unreadable payload ({type(exc).__name__})"
        if (
            not isinstance(frame, dict)
            or frame.get("format") != RESULT_FORMAT
            or frame.get("seed") != self.seed
        ):
            return None, "corrupt result: frame/seed mismatch"
        return frame["result"], None

    def discard_result(self) -> None:
        try:
            os.unlink(self.result_path)
        except FileNotFoundError:
            pass

    # -- retry bookkeeping -------------------------------------------------------

    def load_attempts(self) -> dict:
        try:
            with open(self.attempts_path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if isinstance(payload, dict):
                return payload
        except (OSError, json.JSONDecodeError):
            pass
        return {"count": 0, "last_error": None, "next_retry_at": 0.0}

    def record_attempt_failure(self, error: str, next_retry_at: float) -> int:
        """Count one failed attempt; returns the new attempt count."""
        attempts = self.load_attempts()
        attempts["count"] = int(attempts.get("count", 0)) + 1
        attempts["last_error"] = error
        attempts["next_retry_at"] = next_retry_at
        atomic_write_text(self.attempts_path, json.dumps(attempts), fsync=False)
        return attempts["count"]

    def mark_failed(self, error: str, attempts: int) -> None:
        atomic_write_text(
            self.failed_path,
            json.dumps({"seed": self.seed, "attempts": attempts, "last_error": error}),
        )

    def load_failed(self) -> dict | None:
        try:
            with open(self.failed_path, encoding="utf-8") as fh:
                payload = json.load(fh)
            return payload if isinstance(payload, dict) else {"last_error": "unknown"}
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return {"last_error": "unreadable failure marker"}

    def reset_failure_state(self) -> None:
        """Clear the failure marker and retry counters (manual retry)."""
        for path in (self.failed_path, self.attempts_path):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    # -- state ------------------------------------------------------------------

    def state(self, lease_timeout: float | None = None) -> str:
        """``done`` | ``failed`` | ``leased`` | ``stale`` | ``pending``.

        A valid result wins over everything (a job that completed after
        its failure marker was written has healed itself); ``stale`` is
        only distinguished from ``leased`` when ``lease_timeout`` is given.
        """
        result, _reason = self.load_result()
        if result is not None:
            return "done"
        if self.load_failed() is not None:
            return "failed"
        age = self.lease_age()
        if age is not None:
            if lease_timeout is not None and age > lease_timeout:
                return "stale"
            return "leased"
        return "pending"
