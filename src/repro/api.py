"""High-level FastFT facade: one import, four verbs.

::

    from repro import api

    result = api.search(X, y, task="classification", episodes=20)
    X_star = api.fit_transform(X, y, task="classification")

    cache = api.EvaluationCache()          # memoize downstream CV scores
    result = api.search(X, y, cache=cache)

    results = api.run_batch(jobs)          # multi-dataset sweep, shared cache

    artifact, v = api.export(result, X, y, registry="reg/", name="churn")
    server = api.serve(api.load_pipeline(registry="reg/", name="churn"))

Everything here is sugar over :class:`repro.core.session.SearchSession`;
use the session directly for stepping, checkpoint/resume and custom
callback wiring. Any :class:`~repro.core.config.FastFTConfig` field can be
overridden by keyword — including the oracle knobs
(``api.search(X, y, oracle_engine="naive", cv_jobs=-1)``), which select
the downstream forest's split engine (presort and naive are bit-identical;
presort is faster) and fold-parallel cross-validation.

The :class:`EvaluationCache` attacks the *evaluation* bucket of the
paper's Table II time breakdown: downstream cross-validation dominates
search cost, and identical feature matrices recur — across restarted
sessions, repeated plans within a search, ablation arms sharing a cold
start, and batch jobs re-validating the same candidates. Scores are
memoized by a content signature of the evaluated matrix/target plus an
evaluator fingerprint, so a hit is exact, not approximate.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import replace
from typing import Any, Iterable, Mapping

import numpy as np

from pathlib import Path

from repro.core.callbacks import Callback, Checkpointer, TimeBudget
from repro.core.config import FastFTConfig
from repro.core.result import FastFTResult
from repro.core.session import SearchSession, make_default_evaluator
from repro.ml.evaluation import DownstreamEvaluator
from repro.serve.artifact import PipelineArtifact
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import InferenceServer

__all__ = [
    "search",
    "fit_transform",
    "run_batch",
    "session",
    "EvaluationCache",
    "CachedEvaluator",
    "default_evaluator",
    "export",
    "load_pipeline",
    "serve",
]


def _resolve_config(config: FastFTConfig | None, overrides: dict) -> FastFTConfig:
    if config is None:
        return FastFTConfig(**overrides)
    return replace(config, **overrides) if overrides else config


def default_evaluator(task: str, config: FastFTConfig) -> DownstreamEvaluator:
    """The oracle a session builds when none is supplied (paper defaults)."""
    return make_default_evaluator(task, config)


class EvaluationCache:
    """Process-local memo of downstream CV scores, keyed by content.

    The key covers the exact feature matrix bytes, the target bytes and a
    fingerprint of the evaluator (task, folds, seed, model template), so
    two differently-configured oracles never share entries. Use
    :meth:`wrap` to attach the cache to an evaluator::

        cache = EvaluationCache()
        result = api.search(X, y, cache=cache)
        cache.hits, cache.misses

    The cache is a plain picklable object: a session checkpointed with a
    cache-wrapped evaluator carries its entries into the resumed run.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _digest_array(arr: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(arr)
        h = hashlib.sha1()
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
        return h.digest()

    def signature(self, X: np.ndarray, y: np.ndarray, fingerprint: bytes = b"") -> str:
        h = hashlib.sha1()
        h.update(fingerprint)
        h.update(self._digest_array(np.asarray(X)))
        h.update(self._digest_array(np.asarray(y)))
        return h.hexdigest()

    def get(self, key: str) -> float | None:
        score = self._entries.get(key)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def put(self, key: str, score: float) -> None:
        if len(self._entries) >= self.max_entries and key not in self._entries:
            # Drop the oldest entry (dicts preserve insertion order).
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = float(score)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def wrap(self, evaluator: DownstreamEvaluator) -> "CachedEvaluator":
        return CachedEvaluator(evaluator, self)


class CachedEvaluator:
    """Drop-in :class:`DownstreamEvaluator` front that consults a cache.

    ``n_calls``/``total_time`` mirror the wrapped evaluator, so they count
    only *actual* CV runs — exactly what
    :meth:`SearchSession._evaluate_matrix` needs to report honest
    ``n_downstream_calls`` figures.
    """

    def __init__(self, evaluator: DownstreamEvaluator, cache: EvaluationCache) -> None:
        self.evaluator = evaluator
        self.cache = cache
        self._fingerprint = self._evaluator_fingerprint(evaluator)

    @staticmethod
    def _evaluator_fingerprint(evaluator: DownstreamEvaluator) -> bytes:
        # Metrics and models are keyed by their pickled bytes. Two distinct
        # closures share a __qualname__, so anything unpicklable falls back
        # to its object identity: such evaluators never share cache entries
        # (correct, just less sharing) instead of silently colliding.
        def blob(obj) -> bytes:
            try:
                return pickle.dumps(obj)
            except Exception:
                return f"{obj!r}@{id(obj)}".encode()

        h = hashlib.sha1()
        h.update(getattr(evaluator, "task", "?").encode())
        h.update(str(getattr(evaluator, "n_splits", "?")).encode())
        h.update(str(getattr(evaluator, "seed", "?")).encode())
        h.update(blob(getattr(evaluator, "metric", None)))
        h.update(blob(getattr(evaluator, "model", None)))
        return h.digest()

    # -- DownstreamEvaluator interface parity ---------------------------------

    @property
    def task(self) -> str:
        return self.evaluator.task

    @property
    def n_calls(self) -> int:
        return self.evaluator.n_calls

    @property
    def total_time(self) -> float:
        return self.evaluator.total_time

    def reset_counters(self) -> None:
        self.evaluator.reset_counters()

    def __call__(self, X: np.ndarray, y: np.ndarray) -> float:
        key = self.cache.signature(X, y, self._fingerprint)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        score = self.evaluator(X, y)
        self.cache.put(key, score)
        return score

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> float:
        """Alias of :meth:`__call__`, mirroring ``DownstreamEvaluator``."""
        return self(X, y)


def session(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    *,
    config: FastFTConfig | None = None,
    feature_names: list[str] | None = None,
    callbacks: list[Callback] | None = None,
    evaluator: DownstreamEvaluator | None = None,
    cache: EvaluationCache | None = None,
    **config_overrides: Any,
) -> SearchSession:
    """Build an unstarted :class:`SearchSession` with facade conveniences
    (keyword config overrides and optional cached evaluation)."""
    cfg = _resolve_config(config, config_overrides)
    if cache is not None:
        evaluator = cache.wrap(evaluator or default_evaluator(task, cfg))
    return SearchSession(
        X,
        y,
        task=task,
        config=cfg,
        feature_names=feature_names,
        evaluator=evaluator,
        callbacks=callbacks,
    )


def search(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    *,
    config: FastFTConfig | None = None,
    feature_names: list[str] | None = None,
    callbacks: list[Callback] | None = None,
    evaluator: DownstreamEvaluator | None = None,
    cache: EvaluationCache | None = None,
    time_budget: float | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 1,
    **config_overrides: Any,
) -> FastFTResult:
    """Run one full FastFT search and return its :class:`FastFTResult`.

    ``time_budget`` (seconds) and ``checkpoint_path`` attach the matching
    built-in callbacks; any :class:`FastFTConfig` field can be overridden
    by keyword (``api.search(X, y, episodes=20, seed=1)``).
    """
    callbacks = list(callbacks or [])
    if time_budget is not None:
        callbacks.append(TimeBudget(time_budget))
    if checkpoint_path is not None:
        callbacks.append(Checkpointer(checkpoint_path, every_episodes=checkpoint_every))
    return session(
        X,
        y,
        task,
        config=config,
        feature_names=feature_names,
        callbacks=callbacks,
        evaluator=evaluator,
        cache=cache,
        **config_overrides,
    ).run()


def fit_transform(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    **kwargs: Any,
) -> np.ndarray:
    """Search, then return the transformed feature matrix T*(X)."""
    return search(X, y, task, **kwargs).transform(np.asarray(X, dtype=float))


def _job_fields(job) -> tuple[str, np.ndarray, np.ndarray, str, list[str] | None]:
    """Accept Dataset-like objects, mappings, or (name, X, y, task) tuples."""
    if isinstance(job, Mapping):
        return (
            job.get("name", "job"),
            job["X"],
            job["y"],
            job.get("task", "classification"),
            job.get("feature_names"),
        )
    if hasattr(job, "X") and hasattr(job, "y"):
        return (
            getattr(job, "name", "job"),
            job.X,
            job.y,
            getattr(job, "task", "classification"),
            list(getattr(job, "feature_names", []) or []) or None,
        )
    name, X, y, task = job
    return name, X, y, task, None


def run_batch(
    jobs: Iterable,
    *,
    config: FastFTConfig | None = None,
    callbacks_factory=None,
    cache: EvaluationCache | None = None,
    time_budget: float | None = None,
    **config_overrides: Any,
) -> dict[str, FastFTResult]:
    """Run FastFT over several datasets, sharing one evaluation cache.

    ``jobs`` yields :class:`repro.data.Dataset` objects, mappings with
    ``X``/``y`` (plus optional ``name``/``task``/``feature_names``), or
    ``(name, X, y, task)`` tuples. ``callbacks_factory(name) -> list``
    builds per-job observers; ``time_budget`` applies per job. Returns
    ``{name: FastFTResult}`` in input order.
    """
    cache = cache if cache is not None else EvaluationCache()
    results: dict[str, FastFTResult] = {}
    for job in jobs:
        name, X, y, task, feature_names = _job_fields(job)
        if name in results:
            raise ValueError(f"Duplicate job name {name!r} in batch")
        callbacks = list(callbacks_factory(name)) if callbacks_factory else []
        results[name] = search(
            X,
            y,
            task,
            config=config,
            feature_names=feature_names,
            callbacks=callbacks,
            cache=cache,
            time_budget=time_budget,
            **config_overrides,
        )
    return results


# -- serving -------------------------------------------------------------------


def _resolve_registry(registry: "str | Path | ArtifactRegistry") -> ArtifactRegistry:
    return registry if isinstance(registry, ArtifactRegistry) else ArtifactRegistry(registry)


def export(
    result: FastFTResult,
    X,
    y,
    *,
    path: str | Path | None = None,
    registry: "str | Path | ArtifactRegistry | None" = None,
    name: str | None = None,
    tag: str | None = None,
    model=None,
    **extra_manifest,
) -> tuple[PipelineArtifact, str | None]:
    """Package a finished search as a servable :class:`PipelineArtifact`.

    Fits the downstream model on ``T*(X)`` (see
    :meth:`FastFTResult.to_artifact`) and optionally persists the bundle:
    ``path`` saves an artifact directory, ``registry`` + ``name`` publishes
    a new registry version (``tag`` promotes it, e.g. ``"prod"``). Returns
    ``(artifact, version)`` — ``version`` is the published registry version
    string, or ``None`` when not publishing.
    """
    if path is not None and registry is not None:
        raise ValueError("Pass path or registry, not both")
    artifact = result.to_artifact(X, y, model=model, **extra_manifest)
    version = None
    if registry is not None:
        if name is None:
            raise ValueError("Publishing to a registry requires a name")
        version = _resolve_registry(registry).publish(artifact, name, tag=tag)
    elif path is not None:
        artifact.save(path)
    return artifact, version


def load_pipeline(
    path: str | Path | None = None,
    *,
    registry: "str | Path | ArtifactRegistry | None" = None,
    name: str | None = None,
    version: int | str | None = None,
    tag: str | None = None,
) -> PipelineArtifact:
    """Load a pipeline artifact from a directory or a registry.

    ``load_pipeline("artifact/")`` reads a saved directory;
    ``load_pipeline(registry="reg/", name="churn", tag="prod")`` resolves
    through an :class:`ArtifactRegistry` (``version``/``tag`` optional —
    default latest).
    """
    if (path is None) == (registry is None):
        raise ValueError("Pass exactly one of path or registry")
    if path is not None:
        return PipelineArtifact.load(path)
    if name is None:
        raise ValueError("Loading from a registry requires a name")
    return _resolve_registry(registry).get(name, version=version, tag=tag)


def serve(
    artifact: "PipelineArtifact | str | Path",
    host: str = "127.0.0.1",
    port: int = 8000,
    **server_kwargs,
) -> InferenceServer:
    """Build an :class:`InferenceServer` for an artifact (or its directory).

    The server is bound but not yet serving: call ``.start()`` for a
    background thread or ``.serve_forever()`` to block. ``server_kwargs``
    forward to :class:`InferenceServer` (``max_wait_ms``,
    ``max_batch_rows``, ``max_requests``).
    """
    if not isinstance(artifact, PipelineArtifact):
        artifact = PipelineArtifact.load(artifact)
    return InferenceServer(artifact, host=host, port=port, **server_kwargs)
