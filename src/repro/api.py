"""High-level FastFT facade: one import, four verbs.

::

    from repro import api

    result = api.search(X, y, task="classification", episodes=20)
    X_star = api.fit_transform(X, y, task="classification")

    cache = api.EvaluationCache()          # memoize downstream CV scores
    result = api.search(X, y, cache=cache)

    results = api.run_batch(jobs, n_jobs=4)     # datasets across a process pool
    swept = api.sweep(X, y, seeds=[0, 1, 2], n_jobs=3)   # multi-seed protocol

    artifact, v = api.export(result, X, y, registry="reg/", name="churn")
    server = api.serve(api.load_pipeline(registry="reg/", name="churn"))

Everything here is sugar over :class:`repro.core.session.SearchSession`;
use the session directly for stepping, checkpoint/resume and custom
callback wiring. Any :class:`~repro.core.config.FastFTConfig` field can be
overridden by keyword — including the oracle knobs
(``api.search(X, y, oracle_engine="naive", cv_jobs=-1)``), which select
the downstream forest's split engine (presort and naive are bit-identical;
presort is faster) and fold-parallel cross-validation, and the async
oracle (``api.search(X, y, oracle_mode="async", oracle_workers=4,
reconcile_every_k=4)``), which overlaps triggered downstream evaluations
with the search loop: steps advance on predictor estimates while worker
processes run the real CV, and scores land at schedule-pinned reconcile
points so the trajectory is deterministic for a given
``reconcile_every_k`` — bit-identical to the ``oracle_workers=0`` inline
reference arm at any pool size (see :mod:`repro.core.async_oracle`).

The :class:`EvaluationCache` (re-exported from :mod:`repro.ml.cache`)
attacks the *evaluation* bucket of the paper's Table II time breakdown:
downstream cross-validation dominates search cost, and identical feature
matrices recur — across restarted sessions, repeated plans within a
search, ablation arms sharing a cold start, and batch jobs re-validating
the same candidates. Scores are memoized by a content signature of the
evaluated matrix/target plus an evaluator fingerprint, so a hit is exact,
not approximate.

``sweep`` and ``run_batch(n_jobs=...)`` are sugar over
:class:`repro.core.parallel.SearchOrchestrator`: seeded sessions fan out
across a process pool, workers share one
:class:`~repro.ml.cache.SharedEvaluationCache`, and every per-seed result
is bit-identical to the same seed run serially (see the determinism
contract in :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable

import numpy as np

from pathlib import Path

from repro.core.callbacks import Callback, Checkpointer, TimeBudget
from repro.core.config import FastFTConfig
from repro.core.parallel import (
    SearchOrchestrator,
    SweepResult,
    resolve_config as _resolve_config,
)
from repro.core.result import FastFTResult
from repro.core.session import SearchSession, make_default_evaluator
from repro.ml.cache import CachedEvaluator, EvaluationCache, SharedEvaluationCache
from repro.ml.evaluation import DownstreamEvaluator
from repro.serve.artifact import PipelineArtifact
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import InferenceServer

__all__ = [
    "search",
    "fit_transform",
    "run_batch",
    "sweep",
    "session",
    "EvaluationCache",
    "SharedEvaluationCache",
    "CachedEvaluator",
    "SweepResult",
    "SearchOrchestrator",
    "default_evaluator",
    "export",
    "load_pipeline",
    "serve",
    "serve_from_registry",
]


def default_evaluator(task: str, config: FastFTConfig) -> DownstreamEvaluator:
    """The oracle a session builds when none is supplied (paper defaults)."""
    return make_default_evaluator(task, config)


def session(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    *,
    config: FastFTConfig | None = None,
    feature_names: list[str] | None = None,
    callbacks: list[Callback] | None = None,
    evaluator: DownstreamEvaluator | None = None,
    cache: EvaluationCache | None = None,
    **config_overrides: Any,
) -> SearchSession:
    """Build an unstarted :class:`SearchSession` with facade conveniences
    (keyword config overrides and optional cached evaluation)."""
    cfg = _resolve_config(config, config_overrides)
    if cache is not None:
        evaluator = cache.wrap(evaluator or default_evaluator(task, cfg))
    return SearchSession(
        X,
        y,
        task=task,
        config=cfg,
        feature_names=feature_names,
        evaluator=evaluator,
        callbacks=callbacks,
    )


def search(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    *,
    config: FastFTConfig | None = None,
    feature_names: list[str] | None = None,
    callbacks: list[Callback] | None = None,
    evaluator: DownstreamEvaluator | None = None,
    cache: EvaluationCache | None = None,
    time_budget: float | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 1,
    **config_overrides: Any,
) -> FastFTResult:
    """Run one full FastFT search and return its :class:`FastFTResult`.

    ``time_budget`` (seconds) and ``checkpoint_path`` attach the matching
    built-in callbacks; any :class:`FastFTConfig` field can be overridden
    by keyword (``api.search(X, y, episodes=20, seed=1)``).
    """
    callbacks = list(callbacks or [])
    if time_budget is not None:
        callbacks.append(TimeBudget(time_budget))
    if checkpoint_path is not None:
        callbacks.append(Checkpointer(checkpoint_path, every_episodes=checkpoint_every))
    return session(
        X,
        y,
        task,
        config=config,
        feature_names=feature_names,
        callbacks=callbacks,
        evaluator=evaluator,
        cache=cache,
        **config_overrides,
    ).run()


def fit_transform(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    **kwargs: Any,
) -> np.ndarray:
    """Search, then return the transformed feature matrix T*(X)."""
    return search(X, y, task, **kwargs).transform(np.asarray(X, dtype=float))


def run_batch(
    jobs: Iterable,
    *,
    config: FastFTConfig | None = None,
    callbacks_factory: Callable[[str], list[Callback]] | None = None,
    cache: "EvaluationCache | SharedEvaluationCache | None" = None,
    time_budget: float | None = None,
    n_jobs: int = 1,
    **config_overrides: Any,
) -> dict[str, FastFTResult]:
    """Run FastFT over several datasets, sharing one evaluation cache.

    ``jobs`` yields :class:`repro.data.Dataset` objects, mappings with
    ``X``/``y`` (plus optional ``name``/``task``/``feature_names``), or
    ``(name, X, y, task)`` tuples. ``callbacks_factory(name) -> list``
    builds per-job observers; ``time_budget`` applies per job. Returns
    ``{name: FastFTResult}`` in input order.

    ``n_jobs`` schedules whole jobs across a process pool (``-1`` = all
    cores). Results stay in input order and each job's result is
    bit-identical to a serial run; duplicate job names are rejected
    *before* any work launches, on both paths. Under parallelism the
    workers share one :class:`SharedEvaluationCache` (seeded from
    ``cache`` and merged back into it on completion), and
    ``callbacks_factory`` observers receive relayed
    :class:`~repro.core.parallel.SessionView` events instead of the live
    session.
    """
    orchestrator = SearchOrchestrator(
        n_jobs,
        cache=cache,
        callbacks_factory=callbacks_factory,
        time_budget=time_budget,
    )
    return orchestrator.run_batch(jobs, config=config, **config_overrides)


def sweep(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    *,
    seeds: Iterable[int] = (0, 1, 2),
    n_jobs: int = 1,
    config: FastFTConfig | None = None,
    feature_names: list[str] | None = None,
    callbacks_factory: Callable[[str], list[Callback]] | None = None,
    cache: "EvaluationCache | SharedEvaluationCache | None" = None,
    time_budget: float | None = None,
    backend: str = "pool",
    sweep_dir: "str | Path | None" = None,
    lease_timeout: float = 30.0,
    max_retries: int = 2,
    allow_partial: bool = False,
    **config_overrides: Any,
) -> SweepResult:
    """Run the paper's multi-seed protocol: one seeded search per seed.

    Returns a :class:`~repro.core.parallel.SweepResult` — per-seed
    :class:`FastFTResult`\\ s, ``score_mean``/``score_std`` for
    Table-I-style rows, and ``best`` selected by score with a
    deterministic seed-order tie-break. ``n_jobs`` fans seeds out across
    worker processes; every per-seed result is bit-identical to the same
    seed run serially (see :mod:`repro.core.parallel`).

    ``backend`` selects the execution substrate:

    - ``"pool"`` (default): the in-process orchestrator above.
    - ``"jobfile"``: the crash-safe file-backed fleet
      (:mod:`repro.jobs`) — one resumable job per seed under
      ``sweep_dir`` (a temp dir when ``None``), coordinated through
      lease files and a durable oracle cache. Per-seed results are
      bit-identical to the pool's, including across worker crashes.
      ``lease_timeout``/``max_retries`` tune reclaim and retry;
      ``allow_partial=True`` returns a partial result with
      ``failed_seeds`` instead of raising when seeds exhaust their
      retries. ``callbacks_factory`` and ``time_budget`` are
      pool-only (live callbacks cannot cross a crash boundary, and a
      deadline would break run-to-run determinism) — passing them
      with this backend raises.
    """
    if backend == "jobfile":
        if callbacks_factory is not None:
            raise ValueError(
                "callbacks_factory is not supported with backend='jobfile': "
                "fleet workers run in independent (possibly remote) processes "
                "and may restart at any point, so live callbacks cannot be "
                "delivered; use backend='pool' or attach callbacks per-job "
                "via repro.jobs.run_job(extra_callbacks=...)"
            )
        if time_budget is not None:
            raise ValueError(
                "time_budget is not supported with backend='jobfile': a "
                "wall-clock cutoff would make the result depend on crash/retry "
                "timing and break the backend's bit-identity contract; "
                "use backend='pool' for budgeted exploratory runs"
            )
        from repro.jobs import run_jobfile_sweep

        local_cache = None
        if cache is not None:
            # SharedEvaluationCache has the same snapshot/merge surface as
            # EvaluationCache, which is all run_jobfile_sweep touches.
            local_cache = cache
        return run_jobfile_sweep(
            X,
            y,
            task,
            seeds=seeds,
            config=config,
            feature_names=feature_names,
            sweep_dir=None if sweep_dir is None else os.fspath(sweep_dir),
            n_workers=(os.cpu_count() or 1) if n_jobs == -1 else max(1, n_jobs),
            lease_timeout=lease_timeout,
            max_retries=max_retries,
            allow_partial=allow_partial,
            cache=local_cache,
            **config_overrides,
        )
    if backend != "pool":
        raise ValueError(f"unknown sweep backend {backend!r}; choose 'pool' or 'jobfile'")
    orchestrator = SearchOrchestrator(
        n_jobs,
        cache=cache,
        callbacks_factory=callbacks_factory,
        time_budget=time_budget,
    )
    return orchestrator.sweep(
        X,
        y,
        task,
        seeds=seeds,
        config=config,
        feature_names=feature_names,
        **config_overrides,
    )


# -- serving -------------------------------------------------------------------


def _resolve_registry(registry: "str | Path | ArtifactRegistry") -> ArtifactRegistry:
    return registry if isinstance(registry, ArtifactRegistry) else ArtifactRegistry(registry)


def export(
    result: FastFTResult,
    X,
    y,
    *,
    path: str | Path | None = None,
    registry: "str | Path | ArtifactRegistry | None" = None,
    name: str | None = None,
    tag: str | None = None,
    model=None,
    **extra_manifest,
) -> tuple[PipelineArtifact, str | None]:
    """Package a finished search as a servable :class:`PipelineArtifact`.

    Fits the downstream model on ``T*(X)`` (see
    :meth:`FastFTResult.to_artifact`) and optionally persists the bundle:
    ``path`` saves an artifact directory, ``registry`` + ``name`` publishes
    a new registry version (``tag`` promotes it, e.g. ``"prod"``). Returns
    ``(artifact, version)`` — ``version`` is the published registry version
    string, or ``None`` when not publishing.
    """
    if path is not None and registry is not None:
        raise ValueError("Pass path or registry, not both")
    artifact = result.to_artifact(X, y, model=model, **extra_manifest)
    version = None
    if registry is not None:
        if name is None:
            raise ValueError("Publishing to a registry requires a name")
        version = _resolve_registry(registry).publish(artifact, name, tag=tag)
    elif path is not None:
        artifact.save(path)
    return artifact, version


def load_pipeline(
    path: str | Path | None = None,
    *,
    registry: "str | Path | ArtifactRegistry | None" = None,
    name: str | None = None,
    version: int | str | None = None,
    tag: str | None = None,
) -> PipelineArtifact:
    """Load a pipeline artifact from a directory or a registry.

    ``load_pipeline("artifact/")`` reads a saved directory;
    ``load_pipeline(registry="reg/", name="churn", tag="prod")`` resolves
    through an :class:`ArtifactRegistry` (``version``/``tag`` optional —
    default latest).
    """
    if (path is None) == (registry is None):
        raise ValueError("Pass exactly one of path or registry")
    if path is not None:
        return PipelineArtifact.load(path)
    if name is None:
        raise ValueError("Loading from a registry requires a name")
    return _resolve_registry(registry).get(name, version=version, tag=tag)


def serve(
    artifact: "PipelineArtifact | str | Path",
    host: str = "127.0.0.1",
    port: int = 8000,
    **server_kwargs,
) -> InferenceServer:
    """Build an :class:`InferenceServer` for an artifact (or its directory).

    The server is bound but not yet serving: call ``.start()`` for a
    background thread or ``.serve_forever()`` to block. ``server_kwargs``
    forward to :class:`InferenceServer` (``max_wait_ms``,
    ``max_batch_rows``, ``max_requests``, ``max_queue``, ``deadline_ms``,
    ...). For registry-backed serving with hot reload or shadow routing,
    use :func:`serve_from_registry`.
    """
    if not isinstance(artifact, PipelineArtifact):
        artifact = PipelineArtifact.load(artifact)
    return InferenceServer(artifact, host=host, port=port, **server_kwargs)


def serve_from_registry(
    registry: "str | Path | ArtifactRegistry",
    name: str,
    *,
    version: "int | str | None" = None,
    tag: str | None = None,
    reload: bool = False,
    shadow_tag: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    **server_kwargs,
) -> InferenceServer:
    """Build an :class:`InferenceServer` resolved through a registry.

    The served artifact is labeled with its registry version (responses
    carry it as ``artifact_version``). ``reload=True`` wires
    ``POST /admin/reload`` to re-resolve ``tag`` (or latest) and hot-swap
    the new version with zero downtime; ``shadow_tag`` mirrors live
    traffic onto that tag's artifact and counts output divergences.
    """
    reg = _resolve_registry(registry)
    resolved = reg.resolve_version(name, version=version, tag=tag)
    artifact = reg.get(name, version=resolved)
    reload_source = None
    if reload:
        if version is not None:
            raise ValueError(
                "reload re-resolves a tag (or latest); it cannot follow a pinned version"
            )

        def reload_source():
            current = reg.resolve_version(name, tag=tag)
            return reg.get(name, version=current), current

    shadow_artifact = shadow_version = None
    if shadow_tag is not None:
        shadow_version = reg.resolve_version(name, tag=shadow_tag)
        shadow_artifact = reg.get(name, version=shadow_version)
    return InferenceServer(
        artifact,
        host=host,
        port=port,
        version=resolved,
        reload_source=reload_source,
        shadow_artifact=shadow_artifact,
        shadow_version=shadow_version,
        **server_kwargs,
    )
