"""Fig 12 — the efficiency/efficacy trade-off of the trigger thresholds α, β.

Sweeps α with β fixed (and vice versa) and reports evaluation time and final
performance. The paper's shape: lowering either threshold cuts evaluation
time with only minor performance fluctuation — except at α=β=0, where no
downstream feedback ever reaches the agents and exploration degenerates.
"""

from __future__ import annotations

from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["run", "format_report"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "wine_quality_red",
    alpha_values: list[float] | None = None,
    beta_values: list[float] | None = None,
    fixed_alpha: float = 10.0,
    fixed_beta: float = 5.0,
) -> dict:
    alpha_values = alpha_values if alpha_values is not None else [0.0, 5.0, 10.0, 20.0]
    beta_values = beta_values if beta_values is not None else [0.0, 5.0, 10.0, 20.0]
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)

    def sweep(param: str, values: list[float]) -> list[dict]:
        points = []
        for value in values:
            alpha = value if param == "alpha" else fixed_alpha
            beta = value if param == "beta" else fixed_beta
            # α=β=0 disables triggering entirely; also disable the warmup
            # overrides so the degenerate case is genuinely evaluation-free.
            result, _ = run_fastft_on_dataset(
                dataset,
                profile,
                seed=seed,
                alpha=alpha,
                beta=beta,
                trigger_warmup=0 if alpha == 0 and beta == 0 else profile.trigger_warmup,
            )
            points.append(
                {
                    param: value,
                    "evaluation_time": result.time.evaluation,
                    "overall_time": result.time.overall,
                    "score": result.best_score,
                    "n_downstream_calls": result.n_downstream_calls,
                }
            )
        return points

    return {
        "dataset": dataset_name,
        "alpha_sweep": sweep("alpha", alpha_values),
        "beta_sweep": sweep("beta", beta_values),
        "fixed_alpha": fixed_alpha,
        "fixed_beta": fixed_beta,
        "profile": profile.name,
    }


def _sweep_table(points: list[dict], param: str, title: str) -> str:
    rows = [
        [
            f"{p[param]:.0f}",
            f"{p['evaluation_time']:.2f}",
            f"{p['overall_time']:.2f}",
            f"{p['score']:.3f}",
            str(p["n_downstream_calls"]),
        ]
        for p in points
    ]
    return format_table(
        [param, "Eval time(s)", "Overall(s)", "Score", "Downstream calls"], rows, title=title
    )


def format_report(data: dict) -> str:
    a = _sweep_table(
        data["alpha_sweep"],
        "alpha",
        f"Fig 12a — α sweep (β={data['fixed_beta']:.0f}) on {data['dataset']}",
    )
    b = _sweep_table(
        data["beta_sweep"],
        "beta",
        f"Fig 12b — β sweep (α={data['fixed_alpha']:.0f}) on {data['dataset']}",
    )
    return a + "\n\n" + b
