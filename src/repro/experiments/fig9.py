"""Fig 9 — downstream performance vs time consumption, all methods.

The paper's scatter: FastFT reaches the best scores at expansion-reduction-
level time cost, far below the iterative/generative baselines; FastFT−PP
matches performance at ~5× the runtime. We emit the (time, score) pairs per
method per dataset.
"""

from __future__ import annotations

from repro.experiments.harness import (
    METHOD_ORDER,
    load_profile_dataset,
    run_baseline_on_dataset,
    run_fastft_on_dataset,
)
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["DEFAULT_DATASETS", "run", "format_report"]

DEFAULT_DATASETS = ["wine_quality_red", "openml_589"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    datasets: list[str] | None = None,
    methods: list[str] | None = None,
) -> dict:
    datasets = datasets or DEFAULT_DATASETS
    methods = methods or (METHOD_ORDER + ["fastft_no_pp", "fastft_async"])
    points: dict[str, dict[str, tuple[float, float]]] = {}
    for ds_name in datasets:
        dataset = load_profile_dataset(ds_name, profile, seed=seed)
        points[ds_name] = {}
        for method in methods:
            if method == "fastft":
                result, wall = run_fastft_on_dataset(dataset, profile, seed=seed)
                points[ds_name][method] = (wall, result.best_score)
            elif method == "fastft_no_pp":
                result, wall = run_fastft_on_dataset(
                    dataset, profile, seed=seed, use_performance_predictor=False
                )
                points[ds_name][method] = (wall, result.best_score)
            elif method == "fastft_async":
                # The async-oracle arm: triggered evaluations overlap with
                # the search loop (repro.core.async_oracle); its trajectory
                # is pinned by reconcile_every_k, not by worker timing.
                result, wall = run_fastft_on_dataset(
                    dataset, profile, seed=seed, oracle_mode="async"
                )
                points[ds_name][method] = (wall, result.best_score)
            else:
                res = run_baseline_on_dataset(method, dataset, profile, seed=seed)
                points[ds_name][method] = (res.wall_time, res.best_score)
    return {
        "datasets": datasets,
        "methods": methods,
        "points": points,
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    headers = ["Method"] + [
        col for ds in data["datasets"] for col in (f"{ds} time(s)", f"{ds} score")
    ]
    rows = []
    for method in data["methods"]:
        row = [method]
        for ds in data["datasets"]:
            wall, score = data["points"][ds][method]
            row.extend([f"{wall:.1f}", f"{score:.3f}"])
        rows.append(row)
    return format_table(
        headers, rows, title=f"Fig 9 — performance vs time (profile={data['profile']})"
    )
