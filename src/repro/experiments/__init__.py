"""Experiment harnesses: one module per table/figure of the paper's evaluation.

Every module exposes ``run(profile, seed) -> dict`` (the raw series/rows) and
``format_report(data) -> str`` (the paper-style text rendering). The
``benchmarks/`` tree calls these with the scaled-down ``SMOKE``/``DEFAULT``
profiles; passing ``FULL`` reproduces the paper's settings (hours of compute).
"""

from repro.experiments.profiles import DEFAULT, FULL, SMOKE, RunProfile
from repro.experiments.harness import (
    make_baseline,
    make_fastft_config,
    run_baseline_on_dataset,
    run_fastft_on_dataset,
    run_fastft_sweep_on_dataset,
)

__all__ = [
    "RunProfile",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "make_fastft_config",
    "make_baseline",
    "run_fastft_on_dataset",
    "run_fastft_sweep_on_dataset",
    "run_baseline_on_dataset",
]
