"""Table I — overall comparison: datasets × methods with t-statistics.

Reproduces the paper's headline table: per-dataset scores (weighted F1 for
classification, 1-RAE for regression, AUC for detection) for every baseline
and FastFT (mean ± std over ``profile.n_runs`` seeds), plus the paired
t-statistic/p-value of FastFT against each baseline across datasets.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.data import DATASET_SPECS
from repro.experiments.harness import (
    METHOD_ORDER,
    load_profile_dataset,
    run_baseline_on_dataset,
    run_fastft_on_dataset,
)
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["DEFAULT_DATASETS", "run", "format_report"]

# A task-balanced default subset (full 23-dataset sweep via datasets=...).
DEFAULT_DATASETS = [
    "pima_indian",        # classification, small
    "wine_quality_red",   # classification, multiclass
    "openml_589",         # regression
    "openml_637",         # regression
    "mammography",        # detection
]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    datasets: list[str] | None = None,
    methods: list[str] | None = None,
) -> dict:
    """Execute the sweep; returns per-dataset per-method score statistics."""
    datasets = datasets or DEFAULT_DATASETS
    methods = methods or METHOD_ORDER
    scores: dict[str, dict[str, list[float]]] = {d: {m: [] for m in methods} for d in datasets}
    times: dict[str, dict[str, list[float]]] = {d: {m: [] for m in methods} for d in datasets}

    for ds_name in datasets:
        for run_idx in range(profile.n_runs):
            run_seed = seed + run_idx
            dataset = load_profile_dataset(ds_name, profile, seed=run_seed)
            for method in methods:
                if method == "fastft":
                    result, wall = run_fastft_on_dataset(dataset, profile, seed=run_seed)
                    scores[ds_name][method].append(result.best_score)
                    times[ds_name][method].append(wall)
                else:
                    res = run_baseline_on_dataset(method, dataset, profile, seed=run_seed)
                    scores[ds_name][method].append(res.best_score)
                    times[ds_name][method].append(res.wall_time)

    # Paired t-test of FastFT vs each baseline over per-dataset means.
    t_stats: dict[str, tuple[float, float]] = {}
    if "fastft" in methods:
        fastft_means = np.array(
            [float(np.mean(scores[d]["fastft"])) for d in datasets]
        )
        for method in methods:
            if method == "fastft":
                continue
            other = np.array([float(np.mean(scores[d][method])) for d in datasets])
            if len(datasets) >= 2 and not np.allclose(fastft_means, other):
                t, p = stats.ttest_rel(fastft_means, other)
                t_stats[method] = (float(t), float(p))
            else:
                t_stats[method] = (float("nan"), float("nan"))

    return {
        "datasets": datasets,
        "methods": methods,
        "scores": scores,
        "times": times,
        "t_stats": t_stats,
        "profile": profile.name,
        "n_runs": profile.n_runs,
    }


def format_report(data: dict) -> str:
    headers = ["Dataset", "Task"] + [m.upper() for m in data["methods"]]
    rows = []
    for ds_name in data["datasets"]:
        task = DATASET_SPECS[ds_name].task[0].upper()
        row = [ds_name, task]
        best = max(float(np.mean(v)) for v in data["scores"][ds_name].values() if v)
        for method in data["methods"]:
            values = data["scores"][ds_name][method]
            mean = float(np.mean(values))
            std = float(np.std(values))
            cell = f"{mean:.3f}"
            if len(values) > 1:
                cell += f"±{std:.3f}"
            if abs(mean - best) < 1e-12:
                cell = f"*{cell}"
            row.append(cell)
        rows.append(row)
    if data["t_stats"]:
        t_row = ["T-stat vs FASTFT", "-"]
        p_row = ["P-value", "-"]
        for method in data["methods"]:
            if method == "fastft":
                t_row.append("-")
                p_row.append("-")
            else:
                t, p = data["t_stats"][method]
                t_row.append(f"{t:.2f}" if np.isfinite(t) else "n/a")
                p_row.append(f"{p:.3g}" if np.isfinite(p) else "n/a")
        rows.append(t_row)
        rows.append(p_row)
    return format_table(
        headers,
        rows,
        title=f"Table I (profile={data['profile']}, runs={data['n_runs']}; * = row best)",
    )
