"""Table IV — top-10 feature importances, original vs FastFT-transformed.

On Wine Quality Red the paper contrasts (a) the original dataset's top-10
random-forest importances (concentrated mass) with (b) the transformed
dataset's top-10 (balanced mass, explicit composed formulas). The report
includes both listings, their importance sums, and the before/after F1 —
the traceability showcase.
"""

from __future__ import annotations

from repro.core.tracing import feature_importance_table
from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table
from repro.ml.evaluation import DownstreamEvaluator

__all__ = ["run", "format_report"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "wine_quality_red",
    top_k: int = 10,
) -> dict:
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    evaluator = DownstreamEvaluator(dataset.task, n_splits=profile.cv_splits, seed=seed)

    original_rows = feature_importance_table(
        dataset.X, dataset.y, dataset.task, dataset.feature_names, top_k=top_k, seed=seed
    )
    base_score = evaluator(dataset.X, dataset.y)

    result, _ = run_fastft_on_dataset(dataset, profile, seed=seed)
    transformed = result.transform(dataset.X)
    transformed_rows = feature_importance_table(
        transformed, dataset.y, dataset.task, result.expressions(), top_k=top_k, seed=seed
    )

    return {
        "dataset": dataset_name,
        "base_score": base_score,
        "fastft_score": result.best_score,
        "original": [(r.expression, r.importance) for r in original_rows],
        "transformed": [(r.expression, r.importance) for r in transformed_rows],
        "original_sum": sum(r.importance for r in original_rows),
        "transformed_sum": sum(r.importance for r in transformed_rows),
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    rows = []
    n = max(len(data["original"]), len(data["transformed"]))
    for i in range(n):
        orig = data["original"][i] if i < len(data["original"]) else ("", "")
        trans = data["transformed"][i] if i < len(data["transformed"]) else ("", "")
        rows.append(
            [
                orig[0],
                f"{orig[1]:.3f}" if orig[0] else "",
                trans[0][:60],
                f"{trans[1]:.3f}" if trans[0] else "",
            ]
        )
    rows.append(
        [
            f"Score: {data['base_score']:.3f}",
            f"Sum: {data['original_sum']:.3f}",
            f"Score: {data['fastft_score']:.3f}",
            f"Sum: {data['transformed_sum']:.3f}",
        ]
    )
    return format_table(
        ["Original feature", "Imp.", "FastFT feature", "Imp."],
        rows,
        title=f"Table IV — top-10 importances on {data['dataset']} (profile={data['profile']})",
    )
