"""Fig 7 — RL-framework comparison: Actor-Critic vs the DQN family.

Swaps the cascade's learner (config ``rl_framework``) and reports the
per-episode best-score learning curves plus finals; the paper's finding is
that Actor-Critic converges faster and higher.
"""

from __future__ import annotations

from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["FRAMEWORKS", "run", "format_report"]

FRAMEWORKS = ["actor_critic", "dqn", "double_dqn", "dueling_dqn", "dueling_double_dqn"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "wine_quality_red",
    frameworks: list[str] | None = None,
) -> dict:
    frameworks = frameworks or FRAMEWORKS
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    curves: dict[str, list[float]] = {}
    finals: dict[str, float] = {}
    for framework in frameworks:
        result, _ = run_fastft_on_dataset(dataset, profile, seed=seed, rl_framework=framework)
        per_episode = []
        for episode in range(profile.episodes):
            episode_records = [r for r in result.history if r.episode == episode]
            if episode_records:
                per_episode.append(max(r.best_score_so_far for r in episode_records))
            elif per_episode:
                per_episode.append(per_episode[-1])
        curves[framework] = per_episode
        finals[framework] = result.best_score
    return {
        "dataset": dataset_name,
        "frameworks": frameworks,
        "curves": curves,
        "finals": finals,
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    headers = ["Framework", "Final"] + [
        f"ep{e}" for e in range(len(next(iter(data["curves"].values()))))
    ]
    rows = []
    for framework in data["frameworks"]:
        row = [framework, f"{data['finals'][framework]:.3f}"]
        row.extend(f"{v:.3f}" for v in data["curves"][framework])
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=f"Fig 7 — learning curves on {data['dataset']} (profile={data['profile']})",
    )
