"""Fig 8 — sequential-modeling ablation: LSTM vs RNN vs Transformer.

Swaps the evaluation components' encoder (config ``seq_model``) and reports
final performance and the estimation-time bucket (component forwards +
training). The paper's finding: LSTM matches the alternatives at markedly
lower runtime — transformation sequences are too simple to need attention.
"""

from __future__ import annotations

from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["SEQ_MODELS", "run", "format_report"]

SEQ_MODELS = ["lstm", "rnn", "transformer"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "openml_589",
    seq_models: list[str] | None = None,
) -> dict:
    seq_models = seq_models or SEQ_MODELS
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    rows: dict[str, dict[str, float]] = {}
    for model in seq_models:
        result, wall = run_fastft_on_dataset(dataset, profile, seed=seed, seq_model=model)
        rows[model] = {
            "score": result.best_score,
            "estimation_time": result.time.estimation,
            "overall_time": result.time.overall,
            "wall": wall,
        }
    return {
        "dataset": dataset_name,
        "seq_models": seq_models,
        "rows": rows,
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    headers = ["Encoder", "Score", "Estimation s", "Overall s"]
    rows = []
    for model in data["seq_models"]:
        r = data["rows"][model]
        rows.append(
            [model, f"{r['score']:.3f}", f"{r['estimation_time']:.2f}", f"{r['overall_time']:.2f}"]
        )
    return format_table(
        headers,
        rows,
        title=f"Fig 8 — sequence models on {data['dataset']} (profile={data['profile']})",
    )
