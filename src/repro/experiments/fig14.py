"""Fig 14 — the impact of the novelty reward.

Compares FastFT vs FastFT−NE on (a) the running average novelty distance of
generated features — the minimum cosine distance between each step's
sequence embedding and all previous ones — and (b) the cumulative number of
unencountered feature combinations, along with the achieved scores.

The novelty distance is an *analysis* metric, so both arms are embedded
post hoc with the same fixed (frozen, orthogonally initialized) encoder —
exactly how the paper measures the −NE arm, which trains no estimator of its
own. The paper's finding: the novelty reward widens the search (larger
distances, more unique combinations) and improves the downstream score.
"""

from __future__ import annotations

import numpy as np

from repro.core.novelty import NoveltyEstimator, novelty_distance
from repro.core.operations import OPERATION_NAMES
from repro.core.tokens import TokenVocabulary
from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["run", "format_report", "post_hoc_novelty_distances"]


def post_hoc_novelty_distances(
    sequences: list[list[int]], vocab_size: int, seed: int = 0
) -> list[float]:
    """Min-cosine distance of each sequence embedding to all previous ones,
    under one fixed frozen encoder (comparable across ablation arms)."""
    encoder = NoveltyEstimator(
        vocab_size, embed_dim=16, hidden_dim=16, num_layers=1, seed=seed
    )
    distances: list[float] = []
    history: list[np.ndarray] = []
    for tokens in sequences:
        emb = encoder.embedding(np.asarray(tokens, dtype=np.int64))
        distances.append(
            novelty_distance(emb, np.array(history) if history else None)
        )
        history.append(emb)
    return distances


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "wine_quality_red",
) -> dict:
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    arms = {"FastFT": {}, "FastFT-NE": {"use_novelty": False}}
    vocab_size = len(TokenVocabulary(OPERATION_NAMES, n_feature_slots=512))
    out: dict[str, dict] = {}
    for arm, overrides in arms.items():
        result, _ = run_fastft_on_dataset(dataset, profile, seed=seed, **overrides)
        sequences = [r.sequence_tokens for r in result.history]
        distances = post_hoc_novelty_distances(sequences, vocab_size, seed=seed)
        running_avg = list(np.cumsum(distances) / np.arange(1, len(distances) + 1))
        out[arm] = {
            "avg_novelty_distance": float(np.mean(distances)) if distances else 0.0,
            "running_avg_distance": running_avg,
            "unencountered": [r.unencountered_total for r in result.history],
            "final_unencountered": result.history[-1].unencountered_total if result.history else 0,
            "score": result.best_score,
        }
    return {"dataset": dataset_name, "arms": out, "profile": profile.name}


def format_report(data: dict) -> str:
    headers = ["Arm", "Avg novelty distance", "Unencountered combos", "Score"]
    rows = []
    for arm, stats in data["arms"].items():
        rows.append(
            [
                arm,
                f"{stats['avg_novelty_distance']:.4f}",
                str(stats["final_unencountered"]),
                f"{stats['score']:.3f}",
            ]
        )
    return format_table(
        headers,
        rows,
        title=f"Fig 14 — novelty reward impact on {data['dataset']} (profile={data['profile']})",
    )
