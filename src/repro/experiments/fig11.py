"""Fig 11 — spatial complexity of the Performance Predictor.

(a) predictor memory vs sequence length — grows slowly for the recurrent
architecture (constant parameters, linear activations);
(b) the memory-for-time trade-off — extra predictor bytes vs the evaluation
seconds saved relative to FastFT−PP.

The paper measures GPU allocation; our substrate is CPU-only, so we report
the analytically counted parameter + activation bytes of the same
architecture (see DESIGN.md §2 — the quantity studied is an architectural
property, not a device property).
"""

from __future__ import annotations

from repro.core.operations import OPERATION_NAMES
from repro.core.predictor import PerformancePredictor
from repro.core.tokens import TokenVocabulary
from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["run", "format_report"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "wine_quality_red",
    seq_lengths: list[int] | None = None,
) -> dict:
    seq_lengths = seq_lengths or [16, 32, 64, 128, 256, 512]
    vocab = TokenVocabulary(OPERATION_NAMES)
    predictor = PerformancePredictor(len(vocab), seed=seed)

    memory_curve = [
        {"seq_len": n, **predictor.memory_footprint(n)} for n in seq_lengths
    ]

    # Trade-off: predictor bytes bought vs evaluation time saved.
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    with_pp, _ = run_fastft_on_dataset(dataset, profile, seed=seed)
    without_pp, _ = run_fastft_on_dataset(
        dataset, profile, seed=seed, use_performance_predictor=False
    )
    max_seq = max((len(r.new_expressions) for r in with_pp.history), default=1)
    footprint = predictor.memory_footprint(with_pp.config.max_seq_len)
    tradeoff = {
        "predictor_bytes": footprint["total_bytes"],
        "evaluation_time_with_pp": with_pp.time.evaluation,
        "evaluation_time_without_pp": without_pp.time.evaluation,
        "time_saved": without_pp.time.evaluation - with_pp.time.evaluation,
        "overall_with_pp": with_pp.time.overall,
        "overall_without_pp": without_pp.time.overall,
    }
    return {
        "memory_curve": memory_curve,
        "tradeoff": tradeoff,
        "dataset": dataset_name,
        "profile": profile.name,
        "max_observed_new_features": max_seq,
    }


def format_report(data: dict) -> str:
    rows = [
        [
            str(point["seq_len"]),
            f"{point['parameter_bytes'] / 1024:.1f}",
            f"{point['activation_bytes'] / 1024:.1f}",
            f"{point['total_bytes'] / 1024:.1f}",
        ]
        for point in data["memory_curve"]
    ]
    table = format_table(
        ["Seq length", "Params KiB", "Activations KiB", "Total KiB"],
        rows,
        title=f"Fig 11a — predictor memory vs sequence length (profile={data['profile']})",
    )
    t = data["tradeoff"]
    trade = (
        f"\nFig 11b — trade-off on {data['dataset']}: "
        f"{t['predictor_bytes'] / 1024:.1f} KiB of predictor memory saves "
        f"{t['time_saved']:.2f}s of evaluation time "
        f"({t['evaluation_time_without_pp']:.2f}s -> {t['evaluation_time_with_pp']:.2f}s)"
    )
    return table + trade
