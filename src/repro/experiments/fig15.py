"""Fig 15 — case study: distinct features at reward-function peaks.

Runs FastFT on the Cardiovascular dataset (named medical features) and lists
the traceable formulas generated at the highest-reward exploration steps —
the paper's qualitative evidence that novelty-driven search surfaces
interpretable domain structure (e.g. ``Weight/(Active*DBP)``).
"""

from __future__ import annotations

from repro.core.tracing import reward_peak_features
from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["run", "format_report"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "cardiovascular",
    top_k: int = 5,
) -> dict:
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    result, _ = run_fastft_on_dataset(dataset, profile, seed=seed)
    peaks = reward_peak_features(result, top_k=top_k)
    return {
        "dataset": dataset_name,
        "base_score": result.base_score,
        "best_score": result.best_score,
        "peaks": peaks,
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    rows = []
    for i, peak in enumerate(data["peaks"], start=1):
        expressions = "; ".join(e[:50] for e in peak["expressions"]) or "(no new features)"
        rows.append(
            [
                str(i),
                f"ep{peak['episode']}/s{peak['step']}",
                f"{peak['reward']:+.4f}",
                f"{peak['score']:.3f}",
                expressions,
            ]
        )
    table = format_table(
        ["Peak", "Where", "Reward", "Score", "Generated features"],
        rows,
        title=f"Fig 15 — reward peaks on {data['dataset']} (profile={data['profile']})",
    )
    return (
        table
        + f"\nBase score {data['base_score']:.3f} -> best {data['best_score']:.3f}"
    )
