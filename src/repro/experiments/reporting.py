"""Plain-text table rendering for experiment reports (paper-style rows)."""

from __future__ import annotations

__all__ = ["format_table", "format_kv_block"]


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Monospace table with column auto-sizing."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("Row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv_block(title: str, pairs: dict) -> str:
    """Aligned key/value block used for scalar summaries."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title, "-" * len(title)]
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)} : {value}")
    return "\n".join(lines)
