"""Extension experiment — noise robustness (the paper's §IX future work).

The paper's limitations section proposes "integrating noise-robust training
strategies" as future work. This extension quantifies the starting point it
implies: how well do FastFT's discovered features hold up when the deployment
data is noisier than the training data?

Protocol: fit FastFT (and a reference baseline) on clean data, then
re-evaluate the *fixed* transformation plans on copies of the dataset with
increasing Gaussian feature noise. A robust plan degrades gracefully; a
brittle one (e.g. one relying on razor-thin ratio margins) collapses.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import (
    load_profile_dataset,
    run_baseline_on_dataset,
    run_fastft_on_dataset,
)
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table
from repro.ml.evaluation import DownstreamEvaluator

__all__ = ["run", "format_report"]


def _add_noise(X: np.ndarray, level: float, rng: np.random.Generator) -> np.ndarray:
    scale = X.std(axis=0)
    scale = np.where(scale > 0, scale, 1.0)
    return X + rng.normal(0.0, level, size=X.shape) * scale


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "wine_quality_red",
    noise_levels: list[float] | None = None,
    baseline: str = "erg",
) -> dict:
    noise_levels = noise_levels if noise_levels is not None else [0.0, 0.1, 0.25, 0.5]
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    evaluator = DownstreamEvaluator(dataset.task, n_splits=profile.cv_splits, seed=seed)
    rng = np.random.default_rng(seed + 1)

    fastft_result, _ = run_fastft_on_dataset(dataset, profile, seed=seed)
    baseline_result = run_baseline_on_dataset(baseline, dataset, profile, seed=seed)

    rows = []
    for level in noise_levels:
        noisy = _add_noise(dataset.X, level, rng)
        rows.append(
            {
                "noise": level,
                "raw": evaluator(noisy, dataset.y),
                "fastft": evaluator(fastft_result.transform(noisy), dataset.y),
                baseline: evaluator(baseline_result.transform(noisy), dataset.y),
            }
        )
    return {
        "dataset": dataset_name,
        "baseline": baseline,
        "rows": rows,
        "clean_scores": {
            "fastft": fastft_result.best_score,
            baseline: baseline_result.best_score,
        },
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    baseline = data["baseline"]
    headers = ["Feature noise σ", "Raw features", f"{baseline.upper()} plan", "FastFT plan"]
    rows = [
        [
            f"{r['noise']:.2f}",
            f"{r['raw']:.3f}",
            f"{r[baseline]:.3f}",
            f"{r['fastft']:.3f}",
        ]
        for r in data["rows"]
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Extension — noise robustness of fixed plans on {data['dataset']} "
            f"(profile={data['profile']})"
        ),
    )
