"""Table II — runtime breakdown of FastFT vs FastFT−PP.

Per dataset: average seconds per episode spent in Optimization, Estimation
and Evaluation for both arms, and the percentage reduction FastFT's
Performance Predictor buys on the Evaluation and Overall rows.
"""

from __future__ import annotations

from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["DEFAULT_DATASETS", "run", "format_report"]

# The paper's four datasets, ordered by #samples × #features.
DEFAULT_DATASETS = ["svmguide3", "wine_quality_white", "cardiovascular", "amazon_employee"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    datasets: list[str] | None = None,
) -> dict:
    datasets = datasets or DEFAULT_DATASETS
    rows: dict[str, dict] = {}
    for ds_name in datasets:
        dataset = load_profile_dataset(ds_name, profile, seed=seed)
        size = dataset.n_samples * dataset.n_features

        with_pp, _ = run_fastft_on_dataset(dataset, profile, seed=seed)
        without_pp, _ = run_fastft_on_dataset(
            dataset, profile, seed=seed, use_performance_predictor=False
        )
        episodes = profile.episodes
        rows[ds_name] = {
            "size": size,
            "fastft": {
                "optimization": with_pp.time.optimization / episodes,
                "estimation": with_pp.time.estimation / episodes,
                "evaluation": with_pp.time.evaluation / episodes,
                "overall": with_pp.time.overall / episodes,
                "score": with_pp.best_score,
                "evals": with_pp.n_downstream_calls,
            },
            "fastft_no_pp": {
                "optimization": without_pp.time.optimization / episodes,
                "estimation": without_pp.time.estimation / episodes,
                "evaluation": without_pp.time.evaluation / episodes,
                "overall": without_pp.time.overall / episodes,
                "score": without_pp.best_score,
                "evals": without_pp.n_downstream_calls,
            },
        }
    return {"datasets": datasets, "rows": rows, "profile": profile.name}


def _reduction(full: float, fast: float) -> str:
    if full <= 0:
        return "n/a"
    return f"{100.0 * (fast - full) / full:+.1f}%"


def format_report(data: dict) -> str:
    headers = ["Row"] + [
        f"{d} ({data['rows'][d]['size']:,})" for d in data["datasets"]
    ]
    table_rows = []
    for bucket in ("optimization", "estimation", "evaluation", "overall"):
        no_pp = [f"{data['rows'][d]['fastft_no_pp'][bucket]:.2f}" for d in data["datasets"]]
        pp = []
        for d in data["datasets"]:
            fast = data["rows"][d]["fastft"][bucket]
            full = data["rows"][d]["fastft_no_pp"][bucket]
            cell = f"{fast:.2f}"
            if bucket in ("evaluation", "overall"):
                cell += f" {_reduction(full, fast)}"
            pp.append(cell)
        table_rows.append([f"{bucket} (−PP)"] + no_pp)
        table_rows.append([f"{bucket} (FastFT)"] + pp)
    return format_table(
        headers,
        table_rows,
        title=f"Table II — seconds per episode (profile={data['profile']})",
    )
