"""Fig 13 — hyper-parameter study: novelty weight, decay steps, memory size.

Sweeps ε_s (novelty reward start weight), M (decay steps) and S (prioritized
memory size) and reports final scores. The paper's findings reproduced here:
performance is stable across reasonable settings, and *small* memories beat
large ones (key memories stay fresh).
"""

from __future__ import annotations

from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["run", "format_report"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    datasets: list[str] | None = None,
    novelty_weights: list[float] | None = None,
    decay_steps: list[int] | None = None,
    memory_sizes: list[int] | None = None,
) -> dict:
    datasets = datasets or ["wine_quality_red", "openml_589"]
    novelty_weights = novelty_weights or [0.01, 0.05, 0.10, 0.50]
    decay_steps = decay_steps or [100, 1000, 5000]
    memory_sizes = memory_sizes or [8, 16, 32, 64]

    sweeps: dict[str, dict[str, list[dict]]] = {"epsilon_s": {}, "decay_M": {}, "memory_S": {}}
    for ds_name in datasets:
        dataset = load_profile_dataset(ds_name, profile, seed=seed)

        sweeps["epsilon_s"][ds_name] = []
        for weight in novelty_weights:
            result, _ = run_fastft_on_dataset(
                dataset, profile, seed=seed, novelty_weight_start=weight
            )
            sweeps["epsilon_s"][ds_name].append({"value": weight, "score": result.best_score})

        sweeps["decay_M"][ds_name] = []
        for steps in decay_steps:
            result, _ = run_fastft_on_dataset(
                dataset, profile, seed=seed, novelty_decay_steps=steps
            )
            sweeps["decay_M"][ds_name].append({"value": steps, "score": result.best_score})

        sweeps["memory_S"][ds_name] = []
        for size in memory_sizes:
            result, _ = run_fastft_on_dataset(dataset, profile, seed=seed, memory_size=size)
            sweeps["memory_S"][ds_name].append({"value": size, "score": result.best_score})

    return {"datasets": datasets, "sweeps": sweeps, "profile": profile.name}


def format_report(data: dict) -> str:
    blocks = []
    for sweep_name, per_dataset in data["sweeps"].items():
        values = [str(p["value"]) for p in next(iter(per_dataset.values()))]
        headers = ["Dataset"] + values
        rows = []
        for ds_name in data["datasets"]:
            rows.append(
                [ds_name] + [f"{p['score']:.3f}" for p in per_dataset[ds_name]]
            )
        blocks.append(
            format_table(headers, rows, title=f"Fig 13 — {sweep_name} sweep")
        )
    return "\n\n".join(blocks)
