"""Run every table/figure harness and write the reports to a directory.

Usage (also exposed via ``python -m repro``)::

    python -m repro.experiments.run_all --profile smoke --out reports/
    python -m repro.experiments.run_all --only table1 fig6 --profile default
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import DEFAULT, FULL, SMOKE
from repro.experiments import (
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
    table2,
    table3,
    table4,
)

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
}

PROFILES = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def run_experiments(
    names: list[str],
    profile_name: str = "smoke",
    out_dir: str | Path = "reports",
    seed: int = 0,
) -> dict[str, str]:
    """Run the named experiments; returns {name: report_text}."""
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"Unknown experiments {unknown}. Available: {sorted(EXPERIMENTS)}")
    profile = PROFILES[profile_name]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    reports: dict[str, str] = {}
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        data = module.run(profile, seed=seed)
        report = module.format_report(data)
        elapsed = time.perf_counter() - start
        (out / f"{name}.txt").write_text(report + "\n")
        reports[name] = report
        print(f"[{name}] done in {elapsed:.1f}s -> {out / f'{name}.txt'}")
    return reports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
    parser.add_argument("--out", default="reports")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiments (default: all)"
    )
    args = parser.parse_args(argv)
    names = args.only if args.only else list(EXPERIMENTS)
    run_experiments(names, profile_name=args.profile, out_dir=args.out, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
