"""Fig 10 — scalability: runtime vs dataset size for FastFT / OpenFE / CAAFE.

Sweeps the synthetic registry's ``scale`` knob on one classification dataset
and measures each framework's wall time. The paper's shape: CAAFE pays a
large constant (LLM) cost; OpenFE's per-candidate downstream evaluation
blows up with size; FastFT grows the slowest thanks to the predictor.
"""

from __future__ import annotations

from repro.data import load_dataset
from repro.experiments.harness import make_baseline, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["run", "format_report"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "cardiovascular",
    scales: list[float] | None = None,
    methods: list[str] | None = None,
) -> dict:
    scales = scales or [0.05, 0.1, 0.2]
    methods = methods or ["fastft", "openfe", "caafe"]
    sizes: list[int] = []
    times: dict[str, list[float]] = {m: [] for m in methods}
    scores: dict[str, list[float]] = {m: [] for m in methods}

    for scale in scales:
        dataset = load_dataset(
            dataset_name, scale=scale, seed=seed, max_samples=profile.max_samples * 4
        )
        sizes.append(dataset.n_samples * dataset.n_features)
        for method in methods:
            if method == "fastft":
                result, wall = run_fastft_on_dataset(dataset, profile, seed=seed)
                times[method].append(wall)
                scores[method].append(result.best_score)
            else:
                baseline = make_baseline(method, profile, seed=seed)
                res = baseline.fit(
                    dataset.X, dataset.y, task=dataset.task, feature_names=dataset.feature_names
                )
                times[method].append(res.wall_time)
                scores[method].append(res.best_score)
    return {
        "dataset": dataset_name,
        "scales": scales,
        "sizes": sizes,
        "methods": methods,
        "times": times,
        "scores": scores,
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    headers = ["Size (#s×#f)"] + [f"{m} time(s)" for m in data["methods"]]
    rows = []
    for i, size in enumerate(data["sizes"]):
        row = [f"{size:,}"]
        for method in data["methods"]:
            row.append(f"{data['times'][method][i]:.1f}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=f"Fig 10 — runtime scalability on {data['dataset']} (profile={data['profile']})",
    )
