"""Table III — robustness of generated features across downstream models.

On German Credit, each method produces its transformed feature set once; the
set is then re-evaluated under six different downstream classifiers (RFC,
XGBoost stand-in, Logistic Regression, linear SVM, Ridge, Decision Tree) in
terms of F1 — the paper's check that FastFT's features are model-agnostic.
"""

from __future__ import annotations

from repro.experiments.harness import (
    load_profile_dataset,
    run_baseline_on_dataset,
    run_fastft_on_dataset,
)
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression, RidgeClassifier
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["DOWNSTREAM_MODELS", "DEFAULT_METHODS", "run", "format_report"]

DOWNSTREAM_MODELS = {
    "RFC": lambda seed: RandomForestClassifier(n_estimators=10, seed=seed),
    "XGBC": lambda seed: GradientBoostingClassifier(n_estimators=20, seed=seed),
    "LR": lambda seed: LogisticRegression(),
    "SVM-C": lambda seed: LinearSVMClassifier(),
    "Ridge-C": lambda seed: RidgeClassifier(),
    "DT-C": lambda seed: DecisionTreeClassifier(max_depth=6, seed=seed),
}

# Table III's method rows (the paper's ATF row is our AFT).
DEFAULT_METHODS = ["aft", "erg", "lda", "nfs", "rdg", "ttg", "grfg", "difer", "fastft"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    dataset_name: str = "german_credit",
    methods: list[str] | None = None,
) -> dict:
    methods = methods or DEFAULT_METHODS
    dataset = load_profile_dataset(dataset_name, profile, seed=seed)
    evaluator = DownstreamEvaluator(dataset.task, n_splits=profile.cv_splits, seed=seed)

    table: dict[str, dict[str, float]] = {}
    for method in methods:
        if method == "fastft":
            result, _ = run_fastft_on_dataset(dataset, profile, seed=seed)
            transformed = result.transform(dataset.X)
        else:
            res = run_baseline_on_dataset(method, dataset, profile, seed=seed)
            transformed = res.transform(dataset.X)
        table[method] = {}
        for model_name, factory in DOWNSTREAM_MODELS.items():
            table[method][model_name] = evaluator.evaluate_with_model(
                transformed, dataset.y, factory(seed)
            )
    return {
        "dataset": dataset_name,
        "methods": methods,
        "models": list(DOWNSTREAM_MODELS),
        "table": table,
        "profile": profile.name,
    }


def format_report(data: dict) -> str:
    headers = ["Method"] + data["models"]
    best_per_model = {
        m: max(data["table"][method][m] for method in data["methods"]) for m in data["models"]
    }
    rows = []
    for method in data["methods"]:
        row = [method.upper()]
        for model in data["models"]:
            value = data["table"][method][model]
            mark = "*" if abs(value - best_per_model[model]) < 1e-12 else ""
            row.append(f"{mark}{value:.3f}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            f"Table III — F1 across downstream models on {data['dataset']} "
            f"(profile={data['profile']}; * = column best)"
        ),
    )
