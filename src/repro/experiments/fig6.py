"""Fig 6 — ablation study: FastFT vs −PP, −RCT, −NE on four datasets.

Each ablation arm is a single config toggle; the figure's bars are the final
downstream scores (and the deltas against full FastFT).
"""

from __future__ import annotations

from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset
from repro.experiments.profiles import DEFAULT, RunProfile
from repro.experiments.reporting import format_table

__all__ = ["ARMS", "DEFAULT_DATASETS", "run", "format_report"]

ARMS = {
    "FastFT": {},
    "FastFT-PP": {"use_performance_predictor": False},
    "FastFT-RCT": {"prioritized_replay": False},
    "FastFT-NE": {"use_novelty": False},
}

# Three task types, two size classes — mirroring the paper's panel choice.
DEFAULT_DATASETS = ["svmguide3", "wine_quality_red", "openml_589", "mammography"]


def run(
    profile: RunProfile = DEFAULT,
    seed: int = 0,
    datasets: list[str] | None = None,
) -> dict:
    datasets = datasets or DEFAULT_DATASETS
    scores: dict[str, dict[str, float]] = {}
    walls: dict[str, dict[str, float]] = {}
    for ds_name in datasets:
        dataset = load_profile_dataset(ds_name, profile, seed=seed)
        scores[ds_name] = {}
        walls[ds_name] = {}
        for arm, overrides in ARMS.items():
            result, wall = run_fastft_on_dataset(dataset, profile, seed=seed, **overrides)
            scores[ds_name][arm] = result.best_score
            walls[ds_name][arm] = wall
    return {"datasets": datasets, "scores": scores, "walls": walls, "profile": profile.name}


def format_report(data: dict) -> str:
    headers = ["Dataset"] + list(ARMS)
    rows = []
    for ds_name in data["datasets"]:
        row = [ds_name]
        for arm in ARMS:
            row.append(f"{data['scores'][ds_name][arm]:.3f}")
        rows.append(row)
    return format_table(
        headers, rows, title=f"Fig 6 — ablation scores (profile={data['profile']})"
    )
