"""Shared experiment plumbing: build configured methods and run them on datasets.

FastFT runs go through the session/callback API (:mod:`repro.api`), so
callers can attach observers (history collectors, time budgets,
checkpointers) or a shared :class:`repro.api.EvaluationCache` without
touching the experiment code.
"""

from __future__ import annotations

import time

import numpy as np

from repro import api
from repro.baselines import BASELINE_REGISTRY
from repro.baselines.base import BaselineResult
from repro.core.callbacks import Callback
from repro.core.config import FastFTConfig
from repro.core.result import FastFTResult
from repro.data import Dataset, load_dataset
from repro.experiments.profiles import RunProfile

__all__ = [
    "make_fastft_config",
    "make_baseline",
    "load_profile_dataset",
    "run_fastft_on_dataset",
    "run_fastft_sweep_on_dataset",
    "run_baseline_on_dataset",
    "METHOD_ORDER",
]

# Table I column order (left to right).
METHOD_ORDER = [
    "rfg", "erg", "lda", "aft", "nfs", "ttg", "difer", "openfe", "caafe", "grfg", "fastft",
]


def make_fastft_config(
    profile: RunProfile, seed: int | None = 0, **overrides
) -> FastFTConfig:
    """FastFT config wired to a run profile, with per-experiment overrides."""
    base = dict(
        episodes=profile.episodes,
        steps_per_episode=profile.steps_per_episode,
        cold_start_episodes=profile.cold_start_episodes,
        retrain_every_episodes=profile.retrain_every_episodes,
        component_epochs=profile.component_epochs,
        trigger_warmup=profile.trigger_warmup,
        max_clusters=profile.max_clusters,
        mi_max_rows=profile.mi_max_rows,
        cv_splits=profile.cv_splits,
        rf_estimators=profile.rf_estimators,
        oracle_engine=profile.oracle_engine,
        cv_jobs=profile.cv_jobs,
        oracle_mode=profile.oracle_mode,
        reconcile_every_k=profile.reconcile_every_k,
        oracle_workers=profile.oracle_workers,
        seed=seed,
    )
    base.update(overrides)
    return FastFTConfig(**base)


def make_baseline(name: str, profile: RunProfile, seed: int | None = 0, **overrides):
    """Instantiate a registry baseline with the profile's budget."""
    if name not in BASELINE_REGISTRY:
        raise KeyError(f"Unknown baseline {name!r}. Available: {sorted(BASELINE_REGISTRY)}")
    kwargs = dict(profile.baseline_kwargs.get(name, {}))
    kwargs.update(cv_splits=profile.cv_splits, rf_estimators=profile.rf_estimators, seed=seed)
    kwargs.update(overrides)
    return BASELINE_REGISTRY[name](**kwargs)


def load_profile_dataset(name: str, profile: RunProfile, seed: int = 0) -> Dataset:
    return load_dataset(
        name, scale=profile.dataset_scale, seed=seed, max_samples=profile.max_samples
    )


def run_fastft_on_dataset(
    dataset: Dataset,
    profile: RunProfile,
    seed: int | None = 0,
    callbacks: list[Callback] | None = None,
    cache: "api.EvaluationCache | None" = None,
    **config_overrides,
) -> tuple[FastFTResult, float]:
    """Run FastFT via the session API; returns (result, wall_seconds).

    ``callbacks`` attaches observers (e.g. a
    :class:`~repro.core.callbacks.HistoryCollector` for a streaming view,
    or a ``TimeBudget``) and ``cache`` shares downstream-evaluation
    results across runs.
    """
    config = make_fastft_config(profile, seed=seed, **config_overrides)
    start = time.perf_counter()
    result = api.search(
        dataset.X,
        dataset.y,
        dataset.task,
        config=config,
        feature_names=dataset.feature_names,
        callbacks=callbacks,
        cache=cache,
    )
    return result, time.perf_counter() - start


def run_fastft_sweep_on_dataset(
    dataset: Dataset,
    profile: RunProfile,
    seeds: list[int],
    n_jobs: int = 1,
    cache: "api.EvaluationCache | None" = None,
    **config_overrides,
) -> tuple["api.SweepResult", float]:
    """The multi-seed protocol behind mean ± std table rows.

    Runs one seeded FastFT search per seed through
    :class:`repro.core.parallel.SearchOrchestrator` and returns
    ``(sweep_result, wall_seconds)``. This is the opt-in parallel path for
    multi-seed tables: ``n_jobs>1`` fans the seeds across worker processes
    sharing one oracle cache, with per-seed results bit-identical to the
    serial protocol (so a table regenerated in parallel matches one
    regenerated serially, entry for entry). ``mean_std(sweep.scores)``
    gives the reportable pair.
    """
    config = make_fastft_config(profile, seed=seeds[0] if seeds else 0, **config_overrides)
    start = time.perf_counter()
    sweep = api.sweep(
        dataset.X,
        dataset.y,
        dataset.task,
        seeds=seeds,
        n_jobs=n_jobs,
        config=config,
        feature_names=dataset.feature_names,
        cache=cache,
    )
    return sweep, time.perf_counter() - start


def run_baseline_on_dataset(
    name: str, dataset: Dataset, profile: RunProfile, seed: int | None = 0, **overrides
) -> BaselineResult:
    method = make_baseline(name, profile, seed=seed, **overrides)
    return method.fit(dataset.X, dataset.y, task=dataset.task, feature_names=dataset.feature_names)


def mean_std(values: list[float]) -> tuple[float, float]:
    arr = np.asarray(values, dtype=float)
    return float(arr.mean()), float(arr.std())
