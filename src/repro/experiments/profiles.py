"""Run profiles: scaled-down defaults vs the paper's full settings.

The paper runs 200 episodes × 15 steps with 5-fold CV on datasets up to
425k rows on an A100 cluster. ``SMOKE`` and ``DEFAULT`` shrink every axis so
the complete benchmark suite runs on one laptop CPU while preserving the
*relative* comparisons; ``FULL`` restores the paper's hyper-parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunProfile", "SMOKE", "DEFAULT", "FULL"]


@dataclass(frozen=True)
class RunProfile:
    """Knobs shared by every experiment harness."""

    name: str
    # dataset sizing
    dataset_scale: float = 0.15
    max_samples: int = 1200
    # downstream oracle
    cv_splits: int = 3
    rf_estimators: int = 6
    oracle_engine: str = "presort"
    cv_jobs: int = 1
    # async oracle arm (oracle_mode="async" overlays evaluation with search;
    # harnesses opt in per arm — the profile only carries the knobs)
    oracle_mode: str = "serial"
    reconcile_every_k: int = 4
    oracle_workers: int = 2
    # FastFT schedule
    episodes: int = 6
    steps_per_episode: int = 5
    cold_start_episodes: int = 2
    retrain_every_episodes: int = 2
    component_epochs: int = 4
    trigger_warmup: int = 4
    max_clusters: int = 5
    mi_max_rows: int = 128
    # statistics
    n_runs: int = 1
    # baseline budgets (kwargs per registry name)
    baseline_kwargs: dict = field(
        default_factory=lambda: {
            "rfg": {"n_rounds": 8},
            "rdg": {"n_rounds": 4},
            "erg": {"binary_pair_budget": 16},
            "lda": {"n_iter": 20},
            "aft": {"n_rounds": 3},
            "nfs": {"n_epochs": 5},
            "ttg": {"node_budget": 8},
            "difer": {"corpus_size": 8, "search_rounds": 3},
            "openfe": {"binary_pair_budget": 12, "admit_budget": 5},
            "caafe": {"n_iterations": 3},
            "grfg": {"episodes": 3, "steps_per_episode": 4},
        }
    )


SMOKE = RunProfile(
    name="smoke",
    dataset_scale=0.08,
    max_samples=400,
    episodes=4,
    steps_per_episode=3,
    cold_start_episodes=1,
    retrain_every_episodes=2,
    component_epochs=2,
    max_clusters=4,
    baseline_kwargs={
        "rfg": {"n_rounds": 4},
        "rdg": {"n_rounds": 2},
        "erg": {"binary_pair_budget": 8},
        "lda": {"n_iter": 10},
        "aft": {"n_rounds": 2},
        "nfs": {"n_epochs": 3},
        "ttg": {"node_budget": 5},
        "difer": {"corpus_size": 5, "search_rounds": 2},
        "openfe": {"binary_pair_budget": 8, "admit_budget": 3},
        "caafe": {"n_iterations": 2},
        "grfg": {"episodes": 2, "steps_per_episode": 3},
    },
)

DEFAULT = RunProfile(name="default")

FULL = RunProfile(
    name="full",
    dataset_scale=1.0,
    max_samples=500_000,
    cv_splits=5,
    rf_estimators=10,
    episodes=200,
    steps_per_episode=15,
    cold_start_episodes=10,
    retrain_every_episodes=5,
    component_epochs=20,
    trigger_warmup=8,
    max_clusters=8,
    mi_max_rows=512,
    n_runs=5,
    baseline_kwargs={
        "rfg": {"n_rounds": 100},
        "rdg": {"n_rounds": 50},
        "erg": {"binary_pair_budget": 128},
        "lda": {"n_iter": 100},
        "aft": {"n_rounds": 10},
        "nfs": {"n_epochs": 40},
        "ttg": {"node_budget": 60},
        "difer": {"corpus_size": 64, "search_rounds": 20},
        "openfe": {"binary_pair_budget": 96, "admit_budget": 16},
        "caafe": {"n_iterations": 10},
        "grfg": {"episodes": 40, "steps_per_episode": 15},
    },
)
