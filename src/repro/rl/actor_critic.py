"""Actor-Critic learner over candidate-conditioned action spaces (Eq. 7–9).

Each cascading agent must pick one candidate (a feature cluster or an
operation) from a *variable-size* set. The actor therefore scores the
concatenation ``state ⊕ candidate`` with an MLP and softmaxes over the
candidate axis; the critic maps the state vector to V(s). Updates follow the
paper's losses:

    L_V = E[(V(s) − (r + γ V(s')))²]
    L_π = −E[log π(a|s) · A(s,a)],   A = r + γV(s') − V(s)
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, ReLU, Sequential, Tanh
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, log_softmax
from repro.rl.replay import Transition

__all__ = ["ActorCriticLearner"]


def _mlp(in_dim: int, hidden: int, out_dim: int, rng: np.random.Generator) -> Sequential:
    return Sequential(
        Linear(in_dim, hidden, rng=rng),
        ReLU(),
        Linear(hidden, hidden, rng=rng),
        Tanh(),
        Linear(hidden, out_dim, rng=rng),
    )


class ActorCriticLearner:
    """Policy + value learner with softmax exploration over candidates.

    Parameters
    ----------
    state_dim / candidate_dim:
        Sizes of the fixed state vector and per-candidate representation.
    gamma:
        Discount factor for the TD target.
    temperature:
        Softmax temperature during action selection (exploration knob).
    entropy_coef:
        Entropy bonus weight added to the actor loss for extra exploration.
    """

    name = "actor_critic"

    def __init__(
        self,
        state_dim: int,
        candidate_dim: int,
        hidden: int = 64,
        lr: float = 1e-3,
        gamma: float = 0.95,
        temperature: float = 1.0,
        entropy_coef: float = 0.01,
        seed: int | None = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.state_dim = state_dim
        self.candidate_dim = candidate_dim
        self.gamma = gamma
        self.temperature = temperature
        self.entropy_coef = entropy_coef
        self.actor = _mlp(state_dim + candidate_dim, hidden, 1, rng)
        self.critic = _mlp(state_dim, hidden, 1, rng)
        self.actor_opt = Adam(self.actor.parameters(), lr=lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=lr)
        self._rng = np.random.default_rng(None if seed is None else seed + 1)

    # -- acting ---------------------------------------------------------------

    def _scores(self, state: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        inputs = np.concatenate(
            [np.tile(state, (len(candidates), 1)), candidates], axis=1
        )
        return self.actor(Tensor(inputs)).data.ravel()

    def select(self, state: np.ndarray, candidates: np.ndarray, greedy: bool = False) -> int:
        """Sample (or argmax) a candidate index under the softmax policy."""
        candidates = np.atleast_2d(candidates)
        if len(candidates) == 0:
            raise ValueError("No candidates to select from")
        scores = self._scores(state, candidates) / max(self.temperature, 1e-6)
        scores = scores - scores.max()
        probs = np.exp(scores)
        probs /= probs.sum()
        if greedy:
            return int(np.argmax(probs))
        return int(self._rng.choice(len(candidates), p=probs))

    def value(self, state: np.ndarray) -> float:
        """Critic estimate V(s) — used for TD-error priorities (Eq. 10)."""
        return float(self.critic(Tensor(state.reshape(1, -1))).data.ravel()[0])

    def td_error(self, transition: Transition) -> float:
        """δ = r + γV(s') − V(s), the priority signal."""
        bootstrap = 0.0 if transition.done else self.gamma * self.value(transition.next_state)
        return transition.reward + bootstrap - self.value(transition.state)

    # -- learning ---------------------------------------------------------------

    def update(
        self, batch: list[Transition], weights: np.ndarray | None = None
    ) -> dict[str, float]:
        """One gradient step of critic and actor on a replayed batch.

        Returns the new |TD errors| (for priority refresh) and both losses.
        """
        if not batch:
            raise ValueError("Empty batch")
        if weights is None:
            weights = np.ones(len(batch))

        states = np.stack([t.state for t in batch])
        next_states = np.stack([t.next_state for t in batch])
        rewards = np.array([t.reward for t in batch])
        dones = np.array([t.done for t in batch], dtype=float)

        next_values = self.critic(Tensor(next_states)).data.ravel()
        targets = rewards + self.gamma * (1.0 - dones) * next_values

        # Critic step.
        self.critic_opt.zero_grad()
        values = self.critic(Tensor(states)).reshape(-1)
        diff = values - Tensor(targets)
        critic_loss = (Tensor(weights) * diff * diff).mean()
        critic_loss.backward()
        self.critic_opt.step()

        # Advantage under the refreshed critic (detached).
        current_values = self.critic(Tensor(states)).data.ravel()
        advantages = targets - current_values

        # Actor step: each transition contributes −log π(a|s)·A.
        self.actor_opt.zero_grad()
        actor_terms = []
        for t, adv, w in zip(batch, advantages, weights):
            candidates = t.payload.get("candidates")
            if candidates is None or len(candidates) < 2:
                continue
            chosen = int(t.payload["action_index"])
            inputs = np.concatenate(
                [np.tile(t.state, (len(candidates), 1)), np.atleast_2d(candidates)], axis=1
            )
            scores = self.actor(Tensor(inputs)).reshape(1, -1)
            logp = log_softmax(scores, axis=1)
            probs = logp.exp()
            entropy = -(probs * logp).sum()
            term = logp[0, chosen] * float(adv) * float(w) + self.entropy_coef * entropy
            actor_terms.append(term)
        actor_loss_val = 0.0
        if actor_terms:
            total = actor_terms[0]
            for term in actor_terms[1:]:
                total = total + term
            actor_loss = -(total * (1.0 / len(actor_terms)))
            actor_loss.backward()
            self.actor_opt.step()
            actor_loss_val = actor_loss.item()

        new_errors = np.abs(targets - self.critic(Tensor(states)).data.ravel())
        return {
            "critic_loss": critic_loss.item(),
            "actor_loss": actor_loss_val,
            "td_errors": new_errors,
        }
