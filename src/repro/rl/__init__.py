"""Reinforcement-learning substrate.

Provides the building blocks the cascading agents are assembled from:

- :mod:`repro.rl.replay` — uniform and TD-error-prioritized replay buffers
  (Equation 10's proportional sampling, backed by a sum tree)
- :mod:`repro.rl.actor_critic` — the paper's default Actor-Critic learner
- :mod:`repro.rl.dqn` — DQN / DoubleDQN / DuelingDQN / DuelingDoubleDQN,
  swapped in for the Fig 7 framework ablation
"""

from repro.rl.actor_critic import ActorCriticLearner
from repro.rl.dqn import DQNLearner, make_learner
from repro.rl.replay import PrioritizedReplayBuffer, ReplayBuffer, SumTree, Transition

__all__ = [
    "Transition",
    "ReplayBuffer",
    "PrioritizedReplayBuffer",
    "SumTree",
    "ActorCriticLearner",
    "DQNLearner",
    "make_learner",
]
