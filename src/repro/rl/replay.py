"""Experience replay: uniform ring buffer and prioritized buffer (Eq. 10).

The paper stores each exploration step's memory
``m_i = <s_i, a_i, r_i, s_{i+1}, a_{i+1}, T_i, v_i>`` with priority equal to
its TD error and samples with probability ``B_i = P_i / Σ_k P_k``. The
prioritized buffer implements exactly that proportional scheme with a sum
tree, plus the standard importance-sampling weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Transition", "ReplayBuffer", "PrioritizedReplayBuffer", "SumTree"]


@dataclass
class Transition:
    """One exploration step's memory unit.

    ``state`` / ``next_state`` are fixed-size vectors; ``action_vec`` is the
    representation of the chosen candidate; ``next_candidates`` holds the
    candidate representations available in the next state (needed by the
    DQN-family max over a′). ``payload`` carries FastFT-specific extras
    (transformation sequence, measured performance v_i).
    """

    state: np.ndarray
    action_vec: np.ndarray
    reward: float
    next_state: np.ndarray
    next_candidates: np.ndarray | None = None
    done: bool = False
    payload: dict[str, Any] = field(default_factory=dict)


class ReplayBuffer:
    """Uniform-sampling ring buffer (the FastFT−RCT ablation arm)."""

    def __init__(self, capacity: int, seed: int | None = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._storage: list[Transition] = []
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_full(self) -> bool:
        return len(self._storage) == self.capacity

    def add(self, transition: Transition, priority: float | None = None) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int) -> tuple[list[Transition], np.ndarray, np.ndarray]:
        """Return (transitions, indices, weights); weights are all 1."""
        if not self._storage:
            raise ValueError("Cannot sample from an empty buffer")
        idx = self._rng.integers(0, len(self._storage), size=min(batch_size, len(self._storage)))
        return [self._storage[i] for i in idx], idx, np.ones(len(idx))

    def sample_uniform_records(self, batch_size: int) -> list[Transition]:
        """Uniform record sampling used for evaluation-component training."""
        return self.sample(batch_size)[0]

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        """No-op for the uniform buffer (API parity with the prioritized one)."""

    def all(self) -> list[Transition]:
        return list(self._storage)


class SumTree:
    """Binary indexed tree over priorities supporting O(log n) prefix search."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._tree = np.zeros(2 * capacity, dtype=np.float64)

    def total(self) -> float:
        return float(self._tree[1])

    def set(self, index: int, value: float) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range [0, {self.capacity})")
        if value < 0:
            raise ValueError("priority must be non-negative")
        node = index + self.capacity
        delta = value - self._tree[node]
        while node >= 1:
            self._tree[node] += delta
            node //= 2

    def get(self, index: int) -> float:
        return float(self._tree[index + self.capacity])

    def find_prefix(self, mass: float) -> int:
        """Return the leaf index where the running prefix sum reaches ``mass``.

        Never lands on a zero-priority leaf while positive mass exists: an
        empty left subtree routes right even for ``mass == 0`` (otherwise a
        boundary draw of exactly 0 could select an impossible item).
        """
        node = 1
        while node < self.capacity:
            left = 2 * node
            left_sum = self._tree[left]
            right_sum = self._tree[left + 1]
            if (mass <= left_sum and left_sum > 0.0) or right_sum <= 0.0:
                node = left
            else:
                mass -= left_sum
                node = left + 1
        return node - self.capacity


class PrioritizedReplayBuffer:
    """Proportional prioritized replay (Schaul-style, matching Eq. 10).

    Priorities are |TD error| + ε raised to ``alpha``; sampling probability is
    priority mass / total mass, and importance weights ``(N·B_i)^{-β}`` are
    normalized by their max.
    """

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.6,
        beta: float = 0.4,
        eps: float = 1e-3,
        seed: int | None = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.alpha = alpha
        self.beta = beta
        self.eps = eps
        self._tree = SumTree(capacity)
        self._storage: list[Transition] = []
        self._cursor = 0
        self._max_priority = 1.0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_full(self) -> bool:
        return len(self._storage) == self.capacity

    def _scaled(self, priority: float) -> float:
        return (abs(priority) + self.eps) ** self.alpha

    def add(self, transition: Transition, priority: float | None = None) -> None:
        """Insert with the given TD-error priority (default: current max)."""
        p = self._max_priority if priority is None else self._scaled(priority)
        self._max_priority = max(self._max_priority, p)
        if len(self._storage) < self.capacity:
            index = len(self._storage)
            self._storage.append(transition)
        else:
            index = self._cursor
            self._storage[index] = transition
            self._cursor = (self._cursor + 1) % self.capacity
        self._tree.set(index, p)

    def sample(self, batch_size: int) -> tuple[list[Transition], np.ndarray, np.ndarray]:
        """Proportional sample; returns (transitions, indices, IS weights)."""
        n = len(self._storage)
        if n == 0:
            raise ValueError("Cannot sample from an empty buffer")
        batch_size = min(batch_size, n)
        total = self._tree.total()
        if total <= 0:
            idx = self._rng.integers(0, n, size=batch_size)
        else:
            # Stratified masses reduce sample variance.
            bounds = np.linspace(0, total, batch_size + 1)
            masses = self._rng.uniform(bounds[:-1], bounds[1:])
            idx = np.array([min(self._tree.find_prefix(m), n - 1) for m in masses])
        priorities = np.array([max(self._tree.get(i), 1e-12) for i in idx])
        probs = priorities / max(total, 1e-12)
        weights = (n * probs) ** (-self.beta)
        weights /= weights.max()
        return [self._storage[i] for i in idx], idx, weights

    def sample_uniform_records(self, batch_size: int) -> list[Transition]:
        """Uniform sampling (Algorithms 1 & 2 train φ/ψ on uniform draws)."""
        n = len(self._storage)
        idx = self._rng.integers(0, n, size=min(batch_size, n))
        return [self._storage[i] for i in idx]

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        for i, p in zip(indices, priorities):
            scaled = self._scaled(float(p))
            self._max_priority = max(self._max_priority, scaled)
            self._tree.set(int(i), scaled)

    def all(self) -> list[Transition]:
        return list(self._storage)
