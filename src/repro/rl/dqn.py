"""DQN-family learners for the Fig 7 framework ablation.

The paper swaps the Actor-Critic core for DQN, DoubleDQN, DuelingDQN and
DuelingDoubleDQN and shows Actor-Critic converges faster. All four share the
candidate-conditioned Q(s, a) parameterization the cascade needs (actions are
variable-size candidate sets), differing in:

- **dueling**: Q = V(s) + A(s,a) − mean_a A(s,a) via two output streams;
- **double**: the online network argmaxes a′, the target network evaluates it.

A frozen target network is synced every ``target_sync`` updates.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, ReLU, Sequential, Tanh
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.replay import Transition

__all__ = ["DQNLearner", "make_learner", "DQN_VARIANTS"]

DQN_VARIANTS = ("dqn", "double_dqn", "dueling_dqn", "dueling_double_dqn")


class _QNetwork:
    """MLP trunk with either a single Q head or dueling V/A heads."""

    def __init__(
        self, in_dim: int, state_dim: int, hidden: int, dueling: bool, rng: np.random.Generator
    ) -> None:
        self.dueling = dueling
        self.trunk = Sequential(
            Linear(in_dim, hidden, rng=rng), ReLU(), Linear(hidden, hidden, rng=rng), Tanh()
        )
        self.q_head = Linear(hidden, 1, rng=rng)
        if dueling:
            self.value_trunk = Sequential(Linear(state_dim, hidden, rng=rng), ReLU())
            self.value_head = Linear(hidden, 1, rng=rng)

    def parameters(self):
        yield from self.trunk.parameters()
        yield from self.q_head.parameters()
        if self.dueling:
            yield from self.value_trunk.parameters()
            yield from self.value_head.parameters()

    def state_dict(self) -> dict[str, np.ndarray]:
        out = {}
        for i, p in enumerate(self.parameters()):
            out[str(i)] = p.data.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, p in enumerate(self.parameters()):
            p.data = state[str(i)].copy()

    def q_values(self, state: np.ndarray, candidates: np.ndarray) -> Tensor:
        """Q(s, a_j) for every candidate a_j; (n_candidates,) tensor."""
        candidates = np.atleast_2d(candidates)
        inputs = np.concatenate([np.tile(state, (len(candidates), 1)), candidates], axis=1)
        advantage = self.q_head(self.trunk(Tensor(inputs))).reshape(-1)
        if not self.dueling:
            return advantage
        value = self.value_head(self.value_trunk(Tensor(state.reshape(1, -1)))).reshape(-1)
        centered = advantage - advantage.mean()
        return centered + value  # broadcast (1,) over (n,)


class DQNLearner:
    """Q-learning over candidate sets; variant selected by two booleans."""

    def __init__(
        self,
        state_dim: int,
        candidate_dim: int,
        hidden: int = 64,
        lr: float = 1e-3,
        gamma: float = 0.95,
        epsilon: float = 0.25,
        epsilon_decay: float = 0.995,
        epsilon_min: float = 0.05,
        double: bool = False,
        dueling: bool = False,
        target_sync: int = 10,
        seed: int | None = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.state_dim = state_dim
        self.candidate_dim = candidate_dim
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self.double = double
        self.dueling = dueling
        self.target_sync = target_sync
        in_dim = state_dim + candidate_dim
        self.online = _QNetwork(in_dim, state_dim, hidden, dueling, rng)
        self.target = _QNetwork(in_dim, state_dim, hidden, dueling, rng)
        self.target.load_state_dict(self.online.state_dict())
        self.optimizer = Adam(list(self.online.parameters()), lr=lr)
        self._updates = 0
        self._rng = np.random.default_rng(None if seed is None else seed + 1)

    @property
    def name(self) -> str:
        prefix = "dueling_" if self.dueling else ""
        return f"{prefix}{'double_' if self.double else ''}dqn"

    # -- acting ----------------------------------------------------------------

    def select(self, state: np.ndarray, candidates: np.ndarray, greedy: bool = False) -> int:
        candidates = np.atleast_2d(candidates)
        if len(candidates) == 0:
            raise ValueError("No candidates to select from")
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.integers(0, len(candidates)))
        q = self.online.q_values(state, candidates).data
        return int(np.argmax(q))

    def value(self, state: np.ndarray) -> float:
        """State value proxy for priorities: V(s) ≈ 0 without candidates.

        The engine supplies candidate sets when computing TD errors for
        DQN-family learners via :meth:`td_error`.
        """
        return 0.0

    def td_error(self, transition: Transition) -> float:
        target = self._target_value(transition)
        candidates = transition.payload.get("candidates")
        chosen = transition.payload.get("action_index", 0)
        if candidates is None:
            return transition.reward
        q = self.online.q_values(transition.state, np.atleast_2d(candidates)).data
        return float(target - q[int(chosen)])

    def _target_value(self, t: Transition) -> float:
        if t.done or t.next_candidates is None or len(t.next_candidates) == 0:
            return t.reward
        next_c = np.atleast_2d(t.next_candidates)
        if self.double:
            online_q = self.online.q_values(t.next_state, next_c).data
            best = int(np.argmax(online_q))
            target_q = self.target.q_values(t.next_state, next_c).data
            bootstrap = target_q[best]
        else:
            target_q = self.target.q_values(t.next_state, next_c).data
            bootstrap = target_q.max()
        return t.reward + self.gamma * float(bootstrap)

    # -- learning ----------------------------------------------------------------

    def update(
        self, batch: list[Transition], weights: np.ndarray | None = None
    ) -> dict[str, float]:
        if not batch:
            raise ValueError("Empty batch")
        if weights is None:
            weights = np.ones(len(batch))

        targets = np.array([self._target_value(t) for t in batch])

        self.optimizer.zero_grad()
        terms = []
        for t, target, w in zip(batch, targets, weights):
            candidates = t.payload.get("candidates")
            if candidates is None:
                continue
            chosen = int(t.payload["action_index"])
            q = self.online.q_values(t.state, np.atleast_2d(candidates))
            diff = q[chosen] - float(target)
            terms.append(diff * diff * float(w))
        loss_val = 0.0
        if terms:
            total = terms[0]
            for term in terms[1:]:
                total = total + term
            loss = total * (1.0 / len(terms))
            loss.backward()
            self.optimizer.step()
            loss_val = loss.item()

        self._updates += 1
        if self._updates % self.target_sync == 0:
            self.target.load_state_dict(self.online.state_dict())
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)

        new_errors = np.array([abs(self.td_error(t)) for t in batch])
        return {"critic_loss": loss_val, "actor_loss": 0.0, "td_errors": new_errors}


def make_learner(
    kind: str,
    state_dim: int,
    candidate_dim: int,
    seed: int | None = 0,
    **kwargs,
):
    """Factory over the five frameworks compared in Fig 7."""
    kind = kind.lower()
    if kind in ("actor_critic", "ac"):
        from repro.rl.actor_critic import ActorCriticLearner

        return ActorCriticLearner(state_dim, candidate_dim, seed=seed, **kwargs)
    if kind == "dqn":
        return DQNLearner(state_dim, candidate_dim, seed=seed, **kwargs)
    if kind in ("double_dqn", "ddqn"):
        return DQNLearner(state_dim, candidate_dim, double=True, seed=seed, **kwargs)
    if kind == "dueling_dqn":
        return DQNLearner(state_dim, candidate_dim, dueling=True, seed=seed, **kwargs)
    if kind in ("dueling_double_dqn", "dueling_ddqn"):
        return DQNLearner(state_dim, candidate_dim, double=True, dueling=True, seed=seed, **kwargs)
    raise ValueError(
        f"Unknown learner {kind!r}; expected actor_critic or one of {DQN_VARIANTS}"
    )
