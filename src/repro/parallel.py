"""Convenience namespace for parallel search orchestration.

``from repro import parallel`` mirrors :mod:`repro.core.parallel` —
:class:`SearchOrchestrator` (multi-seed sweeps and process-pool batches
with a shared cross-process oracle cache), :class:`SweepResult` and
:class:`SessionView`. See that module's docstring for the determinism
contract (bit-identical to serial, fork/spawn handling, pickling
fallback).
"""

from repro.core.parallel import (
    SearchOrchestrator,
    SessionView,
    SweepResult,
)

__all__ = ["SearchOrchestrator", "SweepResult", "SessionView"]
