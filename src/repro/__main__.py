"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``transform``    run FastFT on registry dataset(s) and print the discovered plan
``sweep``        the paper's multi-seed protocol (``--seeds``/``--n-jobs``)
``resume``       continue a search from a ``--checkpoint`` file
``export``       search a dataset and package the result as a pipeline artifact
``serve``        serve a pipeline artifact over HTTP (micro-batched inference)
``trace``        render a recorded ``--trace`` JSONL file as a profiling report
``experiments``  regenerate the paper's tables/figures (delegates to run_all)
``datasets``     list the 23 registered Table I datasets

``transform`` accepts several dataset names: they run as one batch
(``--n-jobs`` schedules them across worker processes, sharing one oracle
cache), and ``sweep`` repeats one dataset across ``--seeds`` the same way —
per-seed results are bit-identical to serial runs.

``transform`` supports long-running searches: ``--checkpoint PATH`` writes a
resumable session snapshot every episode, ``--time-budget SECONDS`` stops
the search early, and ``--resume PATH`` (or the ``resume`` command) picks a
checkpointed search back up exactly where it left off.
"""

from __future__ import annotations

import argparse
import pickle
import sys


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS

    print(f"{'name':20s} {'source':10s} {'task':14s} {'samples':>8s} {'features':>8s}")
    for spec in DATASET_SPECS.values():
        if args.task and spec.task != args.task:
            continue
        print(
            f"{spec.name:20s} {spec.source:10s} {spec.task:14s} "
            f"{spec.n_samples:8d} {spec.n_features:8d}"
        )
    return 0


def _session_callbacks(args: argparse.Namespace) -> list:
    from repro.core.callbacks import Checkpointer, TimeBudget

    callbacks = []
    if getattr(args, "time_budget", None) is not None:
        callbacks.append(TimeBudget(args.time_budget))
    if getattr(args, "checkpoint", None):
        callbacks.append(Checkpointer(args.checkpoint))
    if getattr(args, "trace", None):
        from repro.obs import TracingCallback

        callbacks.append(TracingCallback(path=args.trace))
    return callbacks


def _report_result(result, dataset=None, save_plan: str | None = None) -> None:
    if dataset is not None:
        print(
            f"dataset   : {dataset.name} "
            f"({dataset.n_samples}x{dataset.n_features}, {dataset.task})"
        )
    print(f"score     : {result.base_score:.4f} -> {result.best_score:.4f}")
    print(f"downstream: {result.n_downstream_calls} calls, "
          f"eval {result.time.evaluation:.1f}s / est {result.time.estimation:.1f}s / "
          f"opt {result.time.optimization:.1f}s")
    print("plan      :")
    for expr in result.expressions():
        print(f"  {expr}")
    if save_plan:
        # indent=2 + trailing newline so saved plans diff cleanly.
        with open(save_plan, "w") as fh:
            fh.write(result.plan.to_json(indent=2) + "\n")
        print(f"plan saved to {save_plan}")


def _search_config(args: argparse.Namespace):
    """Build a FastFTConfig from the shared search flags."""
    from repro.core import FastFTConfig

    cold_start = (
        args.cold_start_episodes
        if args.cold_start_episodes is not None
        else max(1, args.episodes // 4)
    )
    return FastFTConfig(
        episodes=args.episodes,
        steps_per_episode=args.steps,
        cold_start_episodes=cold_start,
        retrain_every_episodes=args.retrain_every,
        component_epochs=args.component_epochs,
        cv_splits=args.cv,
        rf_estimators=args.rf_estimators,
        oracle_engine=args.oracle_engine,
        cv_jobs=args.cv_jobs,
        oracle_mode=args.oracle_mode,
        reconcile_every_k=args.reconcile_every_k,
        oracle_workers=args.oracle_workers,
        oracle_timeout=args.oracle_timeout,
        seed=args.seed,
        verbose=args.verbose,
    )


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro import api
    from repro.core import SearchSession
    from repro.data import load_dataset

    if args.resume:
        try:
            session = SearchSession.resume(args.resume, callbacks=_session_callbacks(args))
        except (OSError, ValueError, pickle.UnpicklingError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if session.done:
            print(f"checkpoint {args.resume} is already finished; printing its result")
        result = session.run()
        if session.stop_requested:
            print(f"stopped early: {session.stop_reason}")
        _report_result(result, save_plan=args.save_plan)
        return 0

    if not args.dataset:
        print("error: a dataset name is required unless --resume is given", file=sys.stderr)
        return 2
    if len(args.dataset) > 1:
        return _transform_batch(args)
    try:
        dataset = load_dataset(args.dataset[0], scale=args.scale, seed=args.seed)
        callbacks = _session_callbacks(args)
        config = _search_config(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = api.session(
        dataset.X,
        dataset.y,
        dataset.task,
        config=config,
        feature_names=dataset.feature_names,
        callbacks=callbacks,
    )
    result = session.run()
    if session.stop_requested:
        print(f"stopped early: {session.stop_reason}")
    _report_result(result, dataset=dataset, save_plan=args.save_plan)
    return 0


def _transform_batch(args: argparse.Namespace) -> int:
    """Several datasets = one batch; ``--n-jobs`` fans it across workers."""
    from repro import api
    from repro.data import load_dataset

    if args.checkpoint or args.save_plan:
        print(
            "error: --checkpoint/--save-plan apply to a single search; "
            "drop them when batching several datasets",
            file=sys.stderr,
        )
        return 2
    duplicates = {name for name in args.dataset if args.dataset.count(name) > 1}
    if duplicates:
        print(f"error: duplicate dataset names in batch: {sorted(duplicates)}",
              file=sys.stderr)
        return 2
    try:
        jobs = [
            load_dataset(name, scale=args.scale, seed=args.seed)
            for name in args.dataset
        ]
        config = _search_config(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Outside the try: a failure inside the search is a bug deserving its
    # traceback, not a terse usage error (same surface as single transform).
    results = api.run_batch(
        jobs,
        config=config,
        n_jobs=args.n_jobs,
        time_budget=args.time_budget,
    )
    width = max(len(name) for name in results)
    for name, result in results.items():
        print(
            f"{name:{width}s} : {result.base_score:.4f} -> {result.best_score:.4f} "
            f"({result.n_downstream_calls} downstream calls, "
            f"{result.plan.n_features} features)"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro import api
    from repro.data import load_dataset

    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip() != ""]
    except ValueError:
        print(f"error: --seeds must be comma-separated integers, got {args.seeds!r}",
              file=sys.stderr)
        return 2
    if not seeds:
        print("error: --seeds must name at least one seed", file=sys.stderr)
        return 2
    if len(set(seeds)) != len(seeds):
        print(f"error: --seeds must be unique, got {args.seeds!r}", file=sys.stderr)
        return 2
    try:
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        config = _search_config(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.backend == "jobfile" and args.time_budget is not None:
        print(
            "error: --time-budget requires --backend pool (a wall-clock "
            "cutoff would break the jobfile backend's bit-identity contract)",
            file=sys.stderr,
        )
        return 2
    # Outside the try: an in-search failure keeps its traceback (the seeds
    # and flags were already validated above).
    sweep = api.sweep(
        dataset.X,
        dataset.y,
        dataset.task,
        seeds=seeds,
        n_jobs=args.n_jobs,
        config=config,
        feature_names=dataset.feature_names,
        time_budget=args.time_budget,
        backend=args.backend,
        sweep_dir=args.sweep_dir,
        lease_timeout=args.lease_timeout,
        max_retries=args.max_retries,
        allow_partial=args.allow_partial,
    )
    if sweep.is_partial:
        print(
            f"warning: partial sweep — seeds {sweep.failed_seeds} failed "
            "permanently (see the sweep dir's failed.json markers)",
            file=sys.stderr,
        )
    print(
        f"dataset   : {dataset.name} "
        f"({dataset.n_samples}x{dataset.n_features}, {dataset.task})"
    )
    print(sweep.summary())
    best = sweep.best
    print(f"best      : seed {sweep.best_seed} "
          f"({best.base_score:.4f} -> {best.best_score:.4f})")
    print("plan      :")
    for expr in best.expressions():
        print(f"  {expr}")
    if args.save_plan:
        with open(args.save_plan, "w") as fh:
            fh.write(best.plan.to_json(indent=2) + "\n")
        print(f"plan saved to {args.save_plan}")
    return 0


def _parse_seed_list(raw: str) -> list[int] | None:
    try:
        seeds = [int(s) for s in raw.split(",") if s.strip() != ""]
    except ValueError:
        return None
    return seeds or None


def _cmd_jobs_init(args: argparse.Namespace) -> int:
    from repro.data import load_dataset
    from repro.jobs import SweepSpec, init_sweep

    seeds = _parse_seed_list(args.seeds)
    if seeds is None:
        print(f"error: --seeds must be comma-separated integers, got {args.seeds!r}",
              file=sys.stderr)
        return 2
    try:
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        config = _search_config(args)
        spec = SweepSpec(
            task=dataset.task,
            seeds=seeds,
            config=config,
            feature_names=dataset.feature_names,
            name=dataset.name,
            lease_timeout=args.lease_timeout,
            max_retries=args.max_retries,
            checkpoint_every=args.checkpoint_every,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    init_sweep(args.sweep_dir, dataset.X, dataset.y, spec)
    print(f"initialized sweep at {args.sweep_dir}: dataset {dataset.name}, "
          f"seeds {seeds}")
    print(f"run it with `repro jobs run {args.sweep_dir} --workers N` or "
          f"`repro jobs launch {args.sweep_dir}`")
    return 0


def _cmd_jobs_run(args: argparse.Namespace) -> int:
    from repro.jobs import JobFleetSupervisor

    try:
        supervisor = JobFleetSupervisor(
            args.sweep_dir,
            args.workers,
            max_retries=args.max_retries,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    states = supervisor.run(reset_failed=args.reset_failed)
    for seed in sorted(states):
        print(f"seed {seed}: {states[seed]}")
    failed = [s for s, st in states.items() if st != "done"]
    return 1 if failed else 0


def _cmd_jobs_worker(args: argparse.Namespace) -> int:
    from repro.jobs import WORKER_LEASED, run_job

    try:
        status = run_job(args.sweep_dir, args.seed)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"seed {args.seed}: {status}")
    return 3 if status == WORKER_LEASED else 0


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    from repro.jobs import JobDir, load_spec

    try:
        spec = load_spec(args.sweep_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counts: dict[str, int] = {}
    for seed in spec.seeds:
        job = JobDir(args.sweep_dir, seed)
        state = job.state(spec.lease_timeout)
        counts[state] = counts.get(state, 0) + 1
        line = f"seed {seed}: {state}"
        if state in ("leased", "stale"):
            lease = job.read_lease() or {}
            line += f" (owner {lease.get('owner')}, age {job.lease_age():.1f}s)"
        elif state == "failed":
            failed = job.load_failed() or {}
            line += f" ({failed.get('last_error')})"
        print(line)
    print(", ".join(f"{v} {k}" for k, v in sorted(counts.items())))
    return 0 if counts.get("done", 0) == len(spec.seeds) else 1


def _cmd_jobs_gather(args: argparse.Namespace) -> int:
    from repro.jobs import SweepGatherError, gather

    try:
        sweep = gather(args.sweep_dir, allow_partial=args.allow_partial)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepGatherError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if sweep.is_partial:
        print(f"warning: partial sweep — seeds {sweep.failed_seeds} failed "
              "permanently", file=sys.stderr)
    print(sweep.summary())
    best = sweep.best
    print(f"best      : seed {sweep.best_seed} "
          f"({best.base_score:.4f} -> {best.best_score:.4f})")
    if args.save_plan:
        with open(args.save_plan, "w") as fh:
            fh.write(best.plan.to_json(indent=2) + "\n")
        print(f"plan saved to {args.save_plan}")
    return 0


def _cmd_jobs_launch(args: argparse.Namespace) -> int:
    from repro.jobs import write_launcher

    try:
        path = write_launcher(
            args.sweep_dir,
            args.kind,
            workers=args.workers,
            python=args.python,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"launcher written to {path}")
    if args.kind == "slurm":
        print(f"submit with: sbatch {path}")
    else:
        print(f"run with: sh {path}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.core import SearchSession

    try:
        session = SearchSession.resume(
            args.checkpoint_file, callbacks=_session_callbacks(args)
        )
    except (OSError, ValueError, pickle.UnpicklingError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"resumed   : episode {session.episode}/{session.config.episodes}, "
        f"step {session.global_step}/{session.total_steps}, task {session.task}"
    )
    result = session.run()
    if session.stop_requested:
        print(f"stopped early: {session.stop_reason}")
    _report_result(result, save_plan=args.save_plan)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro import api
    from repro.data import load_dataset

    if (args.out is None) == (args.registry is None):
        print("error: pass exactly one of --out or --registry", file=sys.stderr)
        return 2
    if args.registry is not None and args.name is None:
        print("error: --registry requires --name", file=sys.stderr)
        return 2
    try:
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        config = _search_config(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = api.search(
        dataset.X,
        dataset.y,
        dataset.task,
        config=config,
        feature_names=dataset.feature_names,
    )
    artifact, version = api.export(
        result,
        dataset.X,
        dataset.y,
        path=args.out,
        registry=args.registry,
        name=args.name,
        tag=args.tag,
        dataset=dataset.name,
    )
    print(f"score     : {result.base_score:.4f} -> {result.best_score:.4f}")
    print(f"features  : {artifact.plan.n_features} "
          f"(from {artifact.plan.n_input_columns} input columns)")
    print(f"hash      : {artifact.manifest['content_hash']}")
    if version is not None:
        tagged = f" (tag {args.tag!r})" if args.tag else ""
        print(f"published : {args.name} {version}{tagged} -> {args.registry}")
    else:
        print(f"saved     : {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import api

    if (args.artifact is None) == (args.registry is None):
        print("error: pass exactly one of --artifact or --registry", file=sys.stderr)
        return 2
    if args.registry is not None and args.name is None:
        print("error: --registry requires --name", file=sys.stderr)
        return 2
    if args.registry is None and (args.reload or args.shadow_tag):
        print("error: --reload/--shadow-tag require --registry", file=sys.stderr)
        return 2
    common = dict(
        host=args.host,
        port=args.port,
        max_wait_ms=args.max_wait_ms,
        max_batch_rows=args.max_batch_rows,
        max_requests=args.max_requests,
        access_log=args.access_log,
        max_queue=args.max_queue,
        deadline_ms=args.deadline_ms,
    )
    try:
        if args.registry is not None:
            server = api.serve_from_registry(
                args.registry,
                args.name,
                version=args.version,
                tag=args.tag,
                reload=args.reload,
                shadow_tag=args.shadow_tag,
                **common,
            )
        else:
            server = api.serve(api.load_pipeline(args.artifact), **common)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    artifact = server.service.artifact
    summary = artifact.summary()
    print(f"serving   : {summary['task']} pipeline, {summary['n_features']} features "
          f"({'with' if summary['has_model'] else 'no'} model), "
          f"version {server.service.version}")
    print(f"listening : {server.url}  (POST /transform, POST /predict, "
          f"GET /healthz, GET /metrics"
          f"{', POST /admin/reload' if args.registry and args.reload else ''})")
    if args.max_queue is not None or args.deadline_ms is not None:
        print(f"admission : max_queue={args.max_queue} deadline_ms={args.deadline_ms}")
    if args.shadow_tag:
        print(f"shadow    : mirroring traffic to tag {args.shadow_tag!r} "
              f"({server.service.shadow.version})")
    if args.url_file:
        # Written once the socket is bound — lets scripts and tests find an
        # ephemeral --port 0 server without parsing stdout.
        with open(args.url_file, "w") as fh:
            fh.write(server.url + "\n")
    server.serve_forever()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_trace_report

    try:
        print(render_trace_report(args.trace_file), end="")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import EXPERIMENTS, run_experiments

    names = args.only if args.only else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiments {unknown}; available: {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    run_experiments(names, profile_name=args.profile, out_dir=args.out, seed=args.seed)
    return 0


def _add_session_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a resumable session checkpoint here after every episode",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the search once this much wall time has elapsed",
    )
    parser.add_argument("--save-plan", default=None, help="write the plan JSON here")
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured execution trace (JSONL) of the search; "
        "render it afterwards with `repro trace PATH`",
    )


def _add_search_flags(parser: argparse.ArgumentParser) -> None:
    """Search-schedule flags shared by ``transform`` and ``export``."""
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--episodes", type=int, default=8)
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument(
        "--cold-start-episodes",
        type=int,
        default=None,
        help="episodes of real-feedback cold start (default: episodes // 4, min 1)",
    )
    parser.add_argument(
        "--retrain-every",
        type=int,
        default=2,
        help="fine-tune the φ/ψ components every N episodes (default: %(default)s)",
    )
    parser.add_argument(
        "--component-epochs",
        type=int,
        default=4,
        help="training epochs per component (re)fit (default: %(default)s)",
    )
    parser.add_argument(
        "--rf-estimators",
        type=int,
        default=8,
        help="trees in the downstream random forest (default: %(default)s)",
    )
    parser.add_argument("--cv", type=int, default=3)
    parser.add_argument(
        "--oracle-engine",
        choices=["naive", "presort"],
        default="presort",
        help="split engine of the downstream oracle's random forest; both "
        "produce bit-identical scores, presort is faster (default: %(default)s)",
    )
    parser.add_argument(
        "--cv-jobs",
        type=int,
        default=1,
        help="worker processes for fold-parallel cross-validation "
        "(1 = serial, -1 = all cores; default: %(default)s)",
    )
    parser.add_argument(
        "--oracle-mode",
        choices=["serial", "async"],
        default="serial",
        help="'async' defers triggered downstream evaluations to worker "
        "processes and keeps stepping on predictor estimates; a pinned "
        "reconcile schedule keeps the trajectory deterministic "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--reconcile-every-k",
        type=int,
        default=4,
        help="async mode: land pending real scores every K global steps "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--oracle-workers",
        type=int,
        default=2,
        help="async mode: evaluation worker processes (0 = inline reference "
        "arm, -1 = all cores; default: %(default)s)",
    )
    parser.add_argument(
        "--oracle-timeout",
        type=float,
        default=None,
        help="async mode: seconds before a hung evaluation is retried and "
        "then degraded to its predictor estimate (default: no timeout)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--verbose", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_data = sub.add_parser("datasets", help="list registered datasets")
    p_data.add_argument("--task", choices=["classification", "regression", "detection"])
    p_data.set_defaults(func=_cmd_datasets)

    p_tr = sub.add_parser("transform", help="run FastFT on registry dataset(s)")
    p_tr.add_argument(
        "dataset",
        nargs="*",
        default=[],
        help="registry dataset name(s); several names run as one batch "
        "(omit with --resume)",
    )
    _add_search_flags(p_tr)
    p_tr.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker processes when batching several datasets "
        "(1 = serial, -1 = all cores; default: %(default)s)",
    )
    p_tr.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="continue from a session checkpoint instead of starting fresh; "
        "the dataset argument and all search flags are ignored — the "
        "checkpoint carries its own config (see also the `resume` command)",
    )
    _add_session_flags(p_tr)
    p_tr.set_defaults(func=_cmd_transform)

    p_sw = sub.add_parser(
        "sweep",
        help="run the paper's multi-seed protocol on one dataset",
    )
    p_sw.add_argument("dataset", help="registry dataset name")
    _add_search_flags(p_sw)
    p_sw.add_argument(
        "--seeds",
        default="0,1,2",
        help="comma-separated search seeds, one session per seed "
        "(default: %(default)s; --seed still controls dataset sampling)",
    )
    p_sw.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial, -1 = all cores; "
        "per-seed results are bit-identical either way; default: %(default)s)",
    )
    p_sw.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-seed wall-clock budget, enforced inside each worker",
    )
    p_sw.add_argument("--save-plan", default=None,
                      help="write the best seed's plan JSON here")
    p_sw.add_argument(
        "--backend",
        choices=["pool", "jobfile"],
        default="pool",
        help="'pool' runs seeds in-process; 'jobfile' runs the crash-safe "
        "file-backed fleet (bit-identical results, survives worker crashes; "
        "default: %(default)s)",
    )
    p_sw.add_argument(
        "--sweep-dir",
        default=None,
        metavar="DIR",
        help="jobfile backend: persistent sweep directory (re-running over "
        "it resumes unfinished seeds from their checkpoints; default: a "
        "temp dir discarded after the gather)",
    )
    p_sw.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="jobfile backend: seconds without a heartbeat before a job's "
        "lease is reclaimed (default: %(default)s)",
    )
    p_sw.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="jobfile backend: failed attempts before a seed is marked "
        "permanently failed (default: %(default)s)",
    )
    p_sw.add_argument(
        "--allow-partial",
        action="store_true",
        help="jobfile backend: return a partial result naming failed seeds "
        "instead of erroring when seeds exhaust their retries",
    )
    p_sw.set_defaults(func=_cmd_sweep)

    p_jobs = sub.add_parser(
        "jobs",
        help="crash-safe file-backed sweep fleet (init, run, gather, ...)",
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    p_ji = jobs_sub.add_parser(
        "init", help="materialize a resumable sweep directory for a dataset"
    )
    p_ji.add_argument("sweep_dir", help="directory to create the sweep in")
    p_ji.add_argument("dataset", help="registry dataset name")
    _add_search_flags(p_ji)
    p_ji.add_argument("--seeds", default="0,1,2",
                      help="comma-separated search seeds (default: %(default)s)")
    p_ji.add_argument("--lease-timeout", type=float, default=30.0,
                      help="seconds without a heartbeat before a lease is "
                      "reclaimed (default: %(default)s)")
    p_ji.add_argument("--max-retries", type=int, default=2,
                      help="failed attempts before a seed is marked permanently "
                      "failed (default: %(default)s)")
    p_ji.add_argument("--checkpoint-every", type=int, default=1,
                      help="checkpoint each job every N episodes (default: %(default)s)")
    p_ji.set_defaults(func=_cmd_jobs_init)

    p_jr = jobs_sub.add_parser(
        "run", help="supervise local workers until every job is done or failed"
    )
    p_jr.add_argument("sweep_dir", help="initialized sweep directory")
    p_jr.add_argument("--workers", type=int, default=1,
                      help="concurrent worker processes (-1 = all cores; "
                      "default: %(default)s)")
    p_jr.add_argument("--max-retries", type=int, default=None,
                      help="override the spec's retry budget")
    p_jr.add_argument("--reset-failed", action="store_true",
                      help="clear permanent-failure markers first, giving "
                      "failed seeds a fresh retry budget")
    p_jr.set_defaults(func=_cmd_jobs_run)

    p_jw = jobs_sub.add_parser(
        "worker",
        help="run exactly one seed (the scheduler array-task entry point); "
        "exits 0 done, 3 lease held elsewhere, 1 failure",
    )
    p_jw.add_argument("sweep_dir", help="initialized sweep directory")
    p_jw.add_argument("--seed", type=int, required=True, help="seed to run")
    p_jw.set_defaults(func=_cmd_jobs_worker)

    p_js = jobs_sub.add_parser("status", help="print per-seed job states")
    p_js.add_argument("sweep_dir", help="initialized sweep directory")
    p_js.set_defaults(func=_cmd_jobs_status)

    p_jg = jobs_sub.add_parser(
        "gather", help="assemble the SweepResult from completed jobs"
    )
    p_jg.add_argument("sweep_dir", help="initialized sweep directory")
    p_jg.add_argument("--allow-partial", action="store_true",
                      help="tolerate permanently failed seeds (partial result)")
    p_jg.add_argument("--save-plan", default=None,
                      help="write the best seed's plan JSON here")
    p_jg.set_defaults(func=_cmd_jobs_gather)

    p_jl = jobs_sub.add_parser(
        "launch", help="write a scheduler job-array script for the sweep"
    )
    p_jl.add_argument("sweep_dir", help="initialized sweep directory")
    p_jl.add_argument("--kind", choices=["slurm", "shell"], default="slurm",
                      help="script flavor (default: %(default)s)")
    p_jl.add_argument("--workers", type=int, default=4,
                      help="shell kind: concurrent workers (default: %(default)s)")
    p_jl.add_argument("--python", default="python",
                      help="python executable the script should invoke "
                      "(default: %(default)s)")
    p_jl.set_defaults(func=_cmd_jobs_launch)

    p_ex = sub.add_parser(
        "export",
        help="search a dataset, fit the downstream model, save a servable artifact",
    )
    p_ex.add_argument("dataset", help="registry dataset name")
    _add_search_flags(p_ex)
    p_ex.add_argument("--out", default=None, metavar="DIR",
                      help="write the artifact directory here")
    p_ex.add_argument("--registry", default=None, metavar="ROOT",
                      help="publish into this artifact registry instead of --out")
    p_ex.add_argument("--name", default=None,
                      help="artifact name within the registry")
    p_ex.add_argument("--tag", default=None,
                      help="promote the published version to this tag (e.g. prod)")
    p_ex.set_defaults(func=_cmd_export)

    p_srv = sub.add_parser("serve", help="serve a pipeline artifact over HTTP")
    p_srv.add_argument("--artifact", default=None, metavar="DIR",
                       help="artifact directory written by export/--out")
    p_srv.add_argument("--registry", default=None, metavar="ROOT",
                       help="load from this artifact registry instead of --artifact")
    p_srv.add_argument("--name", default=None, help="artifact name within the registry")
    p_srv.add_argument("--version", default=None, help="registry version (default: latest)")
    p_srv.add_argument("--tag", default=None, help="resolve the version via this tag")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8000,
                       help="listen port (0 = ephemeral; default: %(default)s)")
    p_srv.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch coalescing window (default: %(default)s)")
    p_srv.add_argument("--max-batch-rows", type=int, default=4096,
                       help="row cap per coalesced batch (default: %(default)s)")
    p_srv.add_argument("--max-requests", type=int, default=None,
                       help="shut down after serving this many requests")
    p_srv.add_argument("--max-queue", type=int, default=None,
                       help="bound the admission queue; overflow is shed with "
                       "HTTP 429 + Retry-After (default: unbounded)")
    p_srv.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline; expired requests answer "
                       "HTTP 504 (clients override with X-Deadline-Ms)")
    p_srv.add_argument("--reload", action="store_true",
                       help="enable POST /admin/reload: re-resolve --tag (or latest) "
                       "in the registry and hot-swap with zero downtime")
    p_srv.add_argument("--shadow-tag", default=None, metavar="TAG",
                       help="mirror traffic onto this registry tag's artifact and "
                       "count output divergences (serves the primary)")
    p_srv.add_argument("--access-log", action="store_true",
                       help="log every HTTP request to stderr (off by default)")
    p_srv.add_argument("--url-file", default=None, metavar="PATH",
                       help="write the bound server URL here once listening")
    p_srv.set_defaults(func=_cmd_serve)

    p_trc = sub.add_parser(
        "trace",
        help="render recorded trace file(s) as a profiling report",
    )
    p_trc.add_argument(
        "trace_file",
        nargs="+",
        help="trace JSONL file(s) written by --trace; several files "
        "(e.g. sweep workers) report side-by-side with merged metrics",
    )
    p_trc.set_defaults(func=_cmd_trace)

    p_re = sub.add_parser("resume", help="continue a checkpointed search")
    p_re.add_argument("checkpoint_file", help="checkpoint written by --checkpoint")
    _add_session_flags(p_re)
    p_re.set_defaults(func=_cmd_resume)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("--profile", choices=["smoke", "default", "full"], default="smoke")
    p_exp.add_argument("--out", default="reports")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
