"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``transform``    run FastFT on a registry dataset and print the discovered plan
``experiments``  regenerate the paper's tables/figures (delegates to run_all)
``datasets``     list the 23 registered Table I datasets
"""

from __future__ import annotations

import argparse
import sys


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS

    print(f"{'name':20s} {'source':10s} {'task':14s} {'samples':>8s} {'features':>8s}")
    for spec in DATASET_SPECS.values():
        if args.task and spec.task != args.task:
            continue
        print(
            f"{spec.name:20s} {spec.source:10s} {spec.task:14s} "
            f"{spec.n_samples:8d} {spec.n_features:8d}"
        )
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro.core import FastFT, FastFTConfig
    from repro.data import load_dataset

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = FastFTConfig(
        episodes=args.episodes,
        steps_per_episode=args.steps,
        cold_start_episodes=max(1, args.episodes // 4),
        retrain_every_episodes=2,
        component_epochs=4,
        cv_splits=args.cv,
        rf_estimators=8,
        seed=args.seed,
        verbose=args.verbose,
    )
    result = FastFT(config).fit(
        dataset.X, dataset.y, task=dataset.task, feature_names=dataset.feature_names
    )
    print(f"dataset   : {dataset.name} ({dataset.n_samples}x{dataset.n_features}, {dataset.task})")
    print(f"score     : {result.base_score:.4f} -> {result.best_score:.4f}")
    print(f"downstream: {result.n_downstream_calls} calls, "
          f"eval {result.time.evaluation:.1f}s / est {result.time.estimation:.1f}s / "
          f"opt {result.time.optimization:.1f}s")
    print("plan      :")
    for expr in result.expressions():
        print(f"  {expr}")
    if args.save_plan:
        with open(args.save_plan, "w") as fh:
            fh.write(result.plan.to_json())
        print(f"plan saved to {args.save_plan}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import EXPERIMENTS, run_experiments

    names = args.only if args.only else list(EXPERIMENTS)
    run_experiments(names, profile_name=args.profile, out_dir=args.out, seed=args.seed)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_data = sub.add_parser("datasets", help="list registered datasets")
    p_data.add_argument("--task", choices=["classification", "regression", "detection"])
    p_data.set_defaults(func=_cmd_datasets)

    p_tr = sub.add_parser("transform", help="run FastFT on a registry dataset")
    p_tr.add_argument("dataset")
    p_tr.add_argument("--scale", type=float, default=0.2)
    p_tr.add_argument("--episodes", type=int, default=8)
    p_tr.add_argument("--steps", type=int, default=5)
    p_tr.add_argument("--cv", type=int, default=3)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--save-plan", default=None, help="write the plan JSON here")
    p_tr.add_argument("--verbose", action="store_true")
    p_tr.set_defaults(func=_cmd_transform)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("--profile", choices=["smoke", "default", "full"], default="smoke")
    p_exp.add_argument("--out", default="reports")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
