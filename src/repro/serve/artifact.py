"""Pipeline artifacts: the reusable product of a finished search.

FastFT's economics only work if the expensive search is paid once and the
discovered ``T*(F) → F*`` record is reused many times (the traceability
property the paper makes central). A :class:`PipelineArtifact` is that
record made operational: the transformation plan (compiled on first use),
a downstream model fitted on the transformed training data, the human-
readable feature expressions, and a provenance manifest — search config,
seed, dataset fingerprint, repro version and a content hash — with
versioned save/load so artifacts written today remain loadable (or fail
loudly) tomorrow.

Layout on disk (one directory per artifact)::

    artifact/
      manifest.json   # provenance + content hash, indent=2
      plan.json       # TransformationPlan.to_json(indent=2)
      model.pkl       # pickled fitted downstream model (optional)
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.sequence import TransformationPlan
from repro.ml.evaluation import TASKS
from repro.serve.compile import CompiledPlan, compile_plan

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "PipelineArtifact",
    "dataset_fingerprint",
]

ARTIFACT_FORMAT = "fastft-pipeline"
ARTIFACT_VERSION = 1

_MANIFEST = "manifest.json"
_PLAN = "plan.json"
_MODEL = "model.pkl"


def dataset_fingerprint(X: np.ndarray, y: np.ndarray) -> str:
    """Content hash of a training set — ties an artifact to its data."""
    h = hashlib.sha256()
    for arr in (np.ascontiguousarray(X), np.ascontiguousarray(y)):
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _content_hash(plan_text: str, model_blob: bytes | None, core: dict) -> str:
    """Hash over everything that defines the artifact's behaviour."""
    h = hashlib.sha256()
    h.update(plan_text.encode())
    h.update(model_blob or b"")
    h.update(json.dumps(core, sort_keys=True).encode())
    return h.hexdigest()


class PipelineArtifact:
    """A compiled transformation pipeline plus its provenance.

    Build one from a finished search with
    :meth:`repro.core.result.FastFTResult.to_artifact` (or directly from a
    plan); persist with :meth:`save`/:meth:`load`; serve with
    :mod:`repro.serve.server`.
    """

    def __init__(
        self,
        plan: TransformationPlan,
        task: str,
        model=None,
        manifest: dict | None = None,
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"Unknown task {task!r}; expected one of {TASKS}")
        plan.validate()
        self.plan = plan
        self.task = task
        self.model = model
        self.manifest = dict(manifest or {})
        self.manifest.setdefault("format", ARTIFACT_FORMAT)
        self.manifest.setdefault("version", ARTIFACT_VERSION)
        self.manifest.setdefault("repro_version", __version__)
        self.manifest.setdefault("task", task)
        self.manifest.setdefault("n_input_columns", plan.n_input_columns)
        self.manifest.setdefault("n_features", plan.n_features)
        self._compiled: CompiledPlan | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        result,
        X: np.ndarray,
        y: np.ndarray,
        model=None,
        extra_manifest: dict | None = None,
    ) -> "PipelineArtifact":
        """Bundle a :class:`FastFTResult` with a model fitted on ``T*(X)``.

        ``model`` defaults to the search's own downstream oracle template
        (same forest size, depth, seed and split engine), fitted here on
        the transformed training data so the artifact predicts with the
        exact model family the search optimized for.
        """
        from repro.ml.evaluation import default_model_for_task

        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        cfg = result.config
        if model is None:
            model = default_model_for_task(
                result.task,
                n_estimators=cfg.rf_estimators,
                max_depth=cfg.rf_max_depth,
                seed=cfg.seed,
                split_engine=cfg.oracle_engine,
            )
        model.fit(result.plan.apply(X), y)
        manifest = {
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "seed": cfg.seed,
            "base_score": result.base_score,
            "best_score": result.best_score,
            "dataset_fingerprint": dataset_fingerprint(X, y),
            "n_training_samples": int(X.shape[0]),
            "config": {
                k: (list(v) if isinstance(v, tuple) else v) for k, v in asdict(cfg).items()
            },
            "expressions": result.plan.expressions(),
        }
        manifest.update(extra_manifest or {})
        return cls(result.plan, result.task, model=model, manifest=manifest)

    # -- execution -------------------------------------------------------------

    @property
    def compiled(self) -> CompiledPlan:
        """The compiled program (built on first access, then cached)."""
        if self._compiled is None:
            self._compiled = compile_plan(self.plan)
        return self._compiled

    def transform(self, X: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Apply the compiled plan — byte-identical to ``plan.apply``."""
        return self.compiled.apply(X, chunk_size=chunk_size)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("Artifact carries no downstream model; use transform()")
        return self.model.predict(self.transform(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("Artifact carries no downstream model; use transform()")
        if not hasattr(self.model, "predict_proba"):
            raise AttributeError("Downstream model does not expose predict_proba")
        return self.model.predict_proba(self.transform(X))

    def expressions(self) -> list[str]:
        return self.plan.expressions()

    # -- persistence -----------------------------------------------------------

    # Derived-at-save keys, excluded from the hashed portion so that a
    # load-then-resave round trip reproduces the same content hash.
    _DERIVED_KEYS = ("content_hash", "has_model")

    def _core_manifest(self) -> dict:
        """Manifest minus the derived keys (the hashed portion)."""
        return {k: v for k, v in self.manifest.items() if k not in self._DERIVED_KEYS}

    def save(self, path: str | Path) -> Path:
        """Write the artifact directory; returns its path."""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        plan_text = self.plan.to_json(indent=2) + "\n"
        model_blob = pickle.dumps(self.model) if self.model is not None else None
        core = self._core_manifest()
        manifest = dict(core)
        manifest["content_hash"] = _content_hash(plan_text, model_blob, core)
        manifest["has_model"] = model_blob is not None
        (path / _PLAN).write_text(plan_text)
        if model_blob is not None:
            (path / _MODEL).write_bytes(model_blob)
        (path / _MANIFEST).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        self.manifest = manifest
        return path

    @classmethod
    def load(cls, path: str | Path, verify: bool = True) -> "PipelineArtifact":
        """Load an artifact directory, verifying format and content hash."""
        path = Path(path)
        manifest_path = path / _MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(f"No artifact manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != ARTIFACT_FORMAT:
            raise ValueError(f"{path} is not a {ARTIFACT_FORMAT} artifact")
        if int(manifest.get("version", -1)) > ARTIFACT_VERSION:
            raise ValueError(
                f"Artifact version {manifest['version']} is newer than this "
                f"repro ({ARTIFACT_VERSION}); upgrade to load it"
            )
        plan_text = (path / _PLAN).read_text()
        model_blob = (path / _MODEL).read_bytes() if (path / _MODEL).is_file() else None
        if verify:
            core = {k: v for k, v in manifest.items() if k not in cls._DERIVED_KEYS}
            expected = manifest.get("content_hash")
            actual = _content_hash(plan_text, model_blob, core)
            if expected != actual:
                raise ValueError(
                    f"Artifact at {path} failed content-hash verification "
                    f"(expected {expected}, got {actual})"
                )
        plan = TransformationPlan.from_json(plan_text)
        model = pickle.loads(model_blob) if model_blob is not None else None
        return cls(plan, manifest["task"], model=model, manifest=manifest)

    @property
    def short_hash(self) -> str | None:
        """First 12 hex chars of the content hash (None before save).

        The serving layer uses this as the default artifact version label
        when the artifact was not resolved through a registry version.
        """
        content_hash = self.manifest.get("content_hash")
        return content_hash[:12] if content_hash else None

    def summary(self) -> dict:
        """Compact description for logs and the server's /healthz."""
        return {
            "task": self.task,
            "n_input_columns": self.plan.n_input_columns,
            "n_features": self.plan.n_features,
            "has_model": self.model is not None,
            "content_hash": self.manifest.get("content_hash"),
            "repro_version": self.manifest.get("repro_version"),
            "best_score": self.manifest.get("best_score"),
        }
