"""Micro-batching inference server for pipeline artifacts.

Three layers, separable on purpose:

- :class:`MicroBatcher` — a single worker thread that coalesces requests
  arriving within a short window into one vectorized pipeline apply. N
  concurrent single-row ``/predict`` calls cost one compiled-plan
  execution and one model predict over an (N, d) matrix instead of N of
  each — the serving-side analogue of the search-side batching the paper
  leans on.
- :class:`PipelineService` — the in-process client: ``transform``,
  ``predict`` and ``healthz`` against an artifact through the batcher,
  no sockets involved. Tests (and embedders) use this directly.
- :class:`InferenceServer` — a stdlib ``ThreadingHTTPServer`` exposing the
  service as JSON over HTTP: ``POST /transform``, ``POST /predict``,
  ``GET /healthz``, ``GET /metrics`` (Prometheus text format).

Request/response shapes::

    POST /transform {"rows": [[...], ...]}  -> {"features": [[...], ...]}
    POST /predict   {"rows": [[...], ...]}  -> {"predictions": [...],
                                                "proba": [[...], ...]?}
    GET  /healthz                           -> {"status": "ok", ...stats}
    GET  /metrics                           -> Prometheus exposition text

Observability: the batcher always records per-request and per-batch
latency histograms plus batch-size distributions (an ``observe()`` is two
dict lookups and a bisect — noise next to a pipeline apply); ``/healthz``
reports their p50/p99 and ``/metrics`` renders everything for scraping.
An opt-in access log (``access_log=``, CLI ``--access-log``) restores the
per-request lines ``log_message`` otherwise discards.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.serve.artifact import PipelineArtifact

__all__ = ["MicroBatcher", "PipelineService", "InferenceServer"]

# Upper bucket edges for batch-size distributions (requests and rows).
_BATCH_SIZE_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class _Pending:
    """One enqueued request: rows in, slice of the batched result out."""

    __slots__ = ("kind", "rows", "event", "result", "error", "t_submit")

    def __init__(self, kind: str, rows: np.ndarray) -> None:
        self.kind = kind
        self.rows = rows
        self.event = threading.Event()
        self.result: dict | None = None
        self.error: Exception | None = None
        self.t_submit = time.perf_counter()


class MicroBatcher:
    """Coalesce concurrent requests into one vectorized apply.

    On the first request of a batch the worker waits up to
    ``max_wait_ms`` for followers, then executes every pending request of
    each kind in a single pipeline call and fans the row slices back out.
    ``max_batch_rows`` bounds a batch; overflow rolls into the next one.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 4096,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        self.artifact = artifact
        self.max_wait_ms = max_wait_ms
        self.max_batch_rows = max_batch_rows
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._req_latency = self.metrics.histogram(
            "serve_request_seconds", help="Per-request latency (submit to response)"
        )
        self._batch_latency = self.metrics.histogram(
            "serve_batch_execute_seconds", help="Per-batch pipeline execution latency"
        )
        self._batch_requests = self.metrics.histogram(
            "serve_batch_requests",
            help="Requests coalesced per batch",
            bounds=_BATCH_SIZE_BOUNDS,
        )
        self._batch_rows = self.metrics.histogram(
            "serve_batch_rows", help="Rows per batch", bounds=_BATCH_SIZE_BOUNDS
        )
        self._queue: deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stopped = False
        self.n_requests = 0
        self.n_batches = 0
        self.n_rows = 0
        self.max_batch_seen = 0
        self._worker = threading.Thread(target=self._loop, daemon=True)
        self._worker.start()

    # -- client side -----------------------------------------------------------

    def submit(self, kind: str, rows: np.ndarray) -> dict:
        """Enqueue one request and block until its batch has run."""
        pending = _Pending(kind, rows)
        with self._wake:
            if self._stopped:
                raise RuntimeError("MicroBatcher is stopped")
            self._queue.append(pending)
            self.n_requests += 1
            self._wake.notify()
        pending.event.wait()
        self._req_latency.observe(time.perf_counter() - pending.t_submit)
        self.metrics.counter("serve_requests", labels={"kind": kind}).inc()
        if pending.error is not None:
            self.metrics.counter("serve_request_errors", labels={"kind": kind}).inc()
            raise pending.error
        return pending.result

    def close(self) -> None:
        with self._wake:
            self._stopped = True
            self._wake.notify()
        self._worker.join(timeout=5.0)

    def stats(self) -> dict:
        with self._lock:
            out = {
                "requests": self.n_requests,
                "batches": self.n_batches,
                "rows": self.n_rows,
                "max_batch_requests": self.max_batch_seen,
            }
        # Latency/batch-shape quantiles from the always-on histograms
        # (outside the queue lock: histograms carry their own locks).
        out["request_latency_p50"] = round(self._req_latency.quantile(0.5), 6)
        out["request_latency_p99"] = round(self._req_latency.quantile(0.99), 6)
        out["batch_requests_p50"] = round(self._batch_requests.quantile(0.5), 2)
        out["batch_requests_p99"] = round(self._batch_requests.quantile(0.99), 2)
        out["batch_rows_p50"] = round(self._batch_rows.quantile(0.5), 2)
        out["batch_rows_p99"] = round(self._batch_rows.quantile(0.99), 2)
        return out

    # -- worker side -----------------------------------------------------------

    def _drain(self) -> list[_Pending]:
        """Wait for work, linger ``max_wait_ms`` for followers, take a batch."""
        with self._wake:
            while not self._queue and not self._stopped:
                self._wake.wait()
            if self._queue and self.max_wait_ms > 0 and not self._stopped:
                # Linger on the condition — each follower's notify re-checks
                # the row cap, so a full batch departs immediately and an
                # idle window costs no wakeups.
                deadline = time.monotonic() + self.max_wait_ms / 1000.0
                while not self._stopped:
                    if sum(len(p.rows) for p in self._queue) >= self.max_batch_rows:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wake.wait(timeout=remaining)
            batch: list[_Pending] = []
            rows = 0
            while self._queue and rows < self.max_batch_rows:
                batch.append(self._queue.popleft())
                rows += len(batch[-1].rows)
            if batch:
                self.n_batches += 1
                self.n_rows += rows
                self.max_batch_seen = max(self.max_batch_seen, len(batch))
        if batch:
            self._batch_requests.observe(len(batch))
            self._batch_rows.observe(rows)
        return batch

    def _execute(self, kind: str, group: list[_Pending]) -> None:
        """One vectorized pipeline call for every request of ``kind``."""
        stacked = np.vstack([p.rows for p in group])
        features = self.artifact.transform(stacked)
        predictions = proba = None
        if kind == "predict":
            model = self.artifact.model
            if model is None:
                raise RuntimeError("Artifact carries no downstream model")
            predictions = model.predict(features)
            proba = (
                model.predict_proba(features)
                if hasattr(model, "predict_proba")
                else None
            )
        offset = 0
        for p in group:
            stop = offset + len(p.rows)
            if kind == "transform":
                p.result = {"features": features[offset:stop]}
            else:
                p.result = {"predictions": predictions[offset:stop]}
                if proba is not None:
                    p.result["proba"] = proba[offset:stop]
            offset = stop

    def _loop(self) -> None:
        while True:
            batch = self._drain()
            if not batch:
                if self._stopped:
                    return
                continue
            for kind in ("transform", "predict"):
                group = [p for p in batch if p.kind == kind]
                if not group:
                    continue
                t0 = time.perf_counter()
                try:
                    self._execute(kind, group)
                except Exception as exc:  # surface per-request, keep serving
                    for p in group:
                        p.error = exc
                self._batch_latency.observe(time.perf_counter() - t0)
            for p in batch:
                p.event.set()


class PipelineService:
    """In-process client: artifact + micro-batcher, no sockets.

    This is the object the HTTP handler delegates to, so in-process tests
    exercise exactly the code the server runs.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 4096,
    ) -> None:
        self.artifact = artifact
        self.batcher = MicroBatcher(
            artifact, max_wait_ms=max_wait_ms, max_batch_rows=max_batch_rows
        )
        self._started = time.monotonic()

    @property
    def metrics(self) -> MetricsRegistry:
        """The serving metrics registry (rendered by ``GET /metrics``)."""
        return self.batcher.metrics

    def _rows(self, rows) -> np.ndarray:
        arr = np.asarray(rows, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.artifact.plan.n_input_columns:
            raise ValueError(
                f"rows must be (n, {self.artifact.plan.n_input_columns}); "
                f"got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            # Non-finite inputs would be imputed with *batch* column medians
            # by the final sanitization pass, making a response depend on
            # which requests it was coalesced with; rejecting them keeps
            # micro-batching exact (every op output is already finite).
            raise ValueError("rows must be finite numbers")
        return arr

    def transform(self, rows) -> np.ndarray:
        return self.batcher.submit("transform", self._rows(rows))["features"]

    def predict(self, rows) -> dict:
        """Returns ``{"predictions": ndarray, "proba": ndarray?}``."""
        return self.batcher.submit("predict", self._rows(rows))

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "artifact": self.artifact.summary(),
            "batcher": self.batcher.stats(),
        }

    def close(self) -> None:
        self.batcher.close()


_KNOWN_PATHS = ("/transform", "/predict", "/healthz", "/metrics")


class _Handler(BaseHTTPRequestHandler):
    # The server instance injects `service` / `on_request` / `access_log`
    # via the class attributes of a per-server subclass (see
    # InferenceServer).
    service: PipelineService = None
    on_request = staticmethod(lambda: None)
    access_log = None  # text stream, or None for the quiet default

    def log_message(self, format, *args):
        stream = self.access_log
        if stream is None:  # quiet by default
            return
        stream.write(
            "%s - - [%s] %s\n"
            % (self.address_string(), self.log_date_time_string(), format % args)
        )
        stream.flush()

    def _count_response(self, status: int) -> None:
        # Known paths only, so a scanner cannot explode label cardinality.
        path = self.path if self.path in _KNOWN_PATHS else "other"
        self.service.metrics.counter(
            "serve_http_responses", labels={"path": path, "status": status}
        ).inc()

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._count_response(status)

    def _send_metrics(self) -> None:
        body = self.service.metrics.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._count_response(200)

    def do_GET(self) -> None:
        try:
            if self.path == "/healthz":
                self._send(200, self.service.healthz())
            elif self.path == "/metrics":
                self._send_metrics()
            else:
                self._send(404, {"error": f"unknown path {self.path}"})
        finally:
            self.on_request()

    def do_POST(self) -> None:
        try:
            if self.path not in ("/transform", "/predict"):
                self._send(404, {"error": f"unknown path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
                rows = payload["rows"]
            except (ValueError, KeyError, TypeError) as exc:
                self._send(400, {"error": f"bad request body: {exc}"})
                return
            try:
                if self.path == "/transform":
                    features = self.service.transform(rows)
                    self._send(200, {"features": features.tolist()})
                else:
                    out = self.service.predict(rows)
                    body = {"predictions": out["predictions"].tolist()}
                    if "proba" in out:
                        body["proba"] = out["proba"].tolist()
                    self._send(200, body)
            except (ValueError, RuntimeError) as exc:
                self._send(400, {"error": str(exc)})
            except Exception as exc:  # user-supplied model blew up: answer,
                # don't drop the connection with a bare traceback
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            self.on_request()


class InferenceServer:
    """HTTP front of a :class:`PipelineService` on ``ThreadingHTTPServer``.

    ::

        server = InferenceServer(artifact, port=0)   # 0 = ephemeral port
        server.start()                               # background thread
        ... requests against server.url ...
        server.stop()

    ``max_requests`` (optional) shuts the server down after that many
    requests have been answered — the hook ``repro serve --max-requests``
    and the tests use for bounded runs. Also usable as a context manager
    and blocking via :meth:`serve_forever`.

    ``access_log`` opts into per-request log lines (CLI ``--access-log``):
    ``True`` logs to stderr, or pass any text stream.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 4096,
        max_requests: int | None = None,
        access_log=None,
    ) -> None:
        self.service = PipelineService(
            artifact, max_wait_ms=max_wait_ms, max_batch_rows=max_batch_rows
        )
        self.max_requests = max_requests
        self._served = 0
        self._served_lock = threading.Lock()
        self._done = threading.Event()
        self._cleaned = False
        if access_log is True:
            access_log = sys.stderr
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "service": self.service,
                "on_request": staticmethod(self._count_request),
                "access_log": access_log or None,
            },
        )
        self._http = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    def _count_request(self) -> None:
        with self._served_lock:
            self._served += 1
            if self.max_requests is not None and self._served >= self.max_requests:
                self._done.set()
                # shutdown() blocks until serve_forever exits; do it off-thread.
                threading.Thread(target=self._http.shutdown, daemon=True).start()

    @property
    def address(self) -> tuple[str, int]:
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._served

    def _serve_loop(self) -> None:
        """serve_forever plus cleanup — so a max_requests shutdown closes
        the listening socket and the batcher even without an explicit
        stop() call."""
        try:
            self._http.serve_forever()
        finally:
            self._cleanup()

    def start(self) -> "InferenceServer":
        """Serve on a background thread; returns self once listening."""
        if self._thread is not None:
            raise RuntimeError("Server already started")
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (until stop(), Ctrl-C, or max_requests)."""
        try:
            self._serve_loop()
        except KeyboardInterrupt:
            pass

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a ``max_requests`` shutdown has triggered."""
        return self._done.wait(timeout)

    def stop(self) -> None:
        self._http.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._cleanup()

    def _cleanup(self) -> None:
        # May run from both the serving thread (max_requests) and stop().
        with self._served_lock:
            if self._cleaned:
                return
            self._cleaned = True
        self._http.server_close()
        self.service.close()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
