"""Production micro-batching inference front end for pipeline artifacts.

Four layers, separable on purpose:

- :class:`MicroBatcher` — a single worker thread that coalesces requests
  arriving within a short window into one vectorized pipeline apply. N
  concurrent single-row ``/predict`` calls cost one compiled-plan
  execution and one model predict over an (N, d) matrix instead of N of
  each — the serving-side analogue of the search-side batching the paper
  leans on. The admission queue is optionally bounded (``max_queue``):
  overflow raises :class:`QueueFullError` instead of letting latency grow
  without limit, per-request deadlines expire queued work that can no
  longer be answered in time, and :meth:`swap_artifact` atomically
  replaces the served artifact between batches (every batch runs
  entirely on one artifact snapshot — no mixed-version responses).
- :class:`ShadowRouter` — optional challenger artifact fed a best-effort
  async copy of live traffic; output mismatches increment a divergence
  counter instead of affecting responses.
- :class:`PipelineService` — the in-process client: ``transform``,
  ``predict`` and ``healthz`` against an artifact through the batcher,
  no sockets involved. Tests (and embedders) use this directly.
- :class:`InferenceServer` — an asyncio HTTP/1.1 front end exposing the
  service as JSON: ``POST /transform``, ``POST /predict``,
  ``GET /healthz``, ``GET /metrics`` (Prometheus text format), and
  ``POST /admin/reload`` for zero-downtime hot swap of a registry tag.

Request/response shapes::

    POST /transform {"rows": [[...], ...]}  -> {"features": [[...], ...],
                                                "artifact_version": "..."}
    POST /predict   {"rows": [[...], ...]}  -> {"predictions": [...],
                                                "proba": [[...], ...]?,
                                                "artifact_version": "..."}
    GET  /healthz                           -> {"status": "ok", ...stats}
    GET  /metrics                           -> Prometheus exposition text
    POST /admin/reload                      -> {"swapped": bool, ...}

Error envelope: ``{"error": "..."}`` with 400 (bad input), 404 (unknown
path), 429 + ``Retry-After`` (admission queue full), 504 (deadline
expired), 500 (model blew up). A client disconnecting mid-response is
counted under the ``disconnect`` status label and never kills a worker.

Observability: the batcher always records per-request and per-batch
latency histograms plus batch-size distributions (an ``observe()`` is two
dict lookups and a bisect — noise next to a pipeline apply); ``/healthz``
reports their p50/p99 and ``/metrics`` renders everything for scraping,
including ``serve_queue_depth``, ``serve_requests_shed_total``,
``serve_deadline_expired_total``, ``serve_reloads_total`` and the shadow
divergence counters. An opt-in access log (``access_log=``, CLI
``--access-log``) restores per-request lines.
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
import sys
import threading
import time
import traceback
from collections import deque

import numpy as np

from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.serve.artifact import PipelineArtifact

__all__ = [
    "DeadlineExceededError",
    "InferenceServer",
    "MicroBatcher",
    "PipelineService",
    "QueueFullError",
    "ShadowRouter",
]

# Upper bucket edges for batch-size distributions (requests and rows).
_BATCH_SIZE_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

# Waiter-side poll interval: bounds how long a client can block after the
# worker thread has died without an explicit wake-up (the worker normally
# sets the event; the poll is the liveness backstop).
_WAIT_POLL_SECONDS = 0.05


class QueueFullError(RuntimeError):
    """The bounded admission queue rejected a request (HTTP 429)."""

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(RuntimeError):
    """A request's deadline passed before its batch ran (HTTP 504)."""


def _artifact_version_label(artifact: PipelineArtifact) -> str:
    """Default serving version label: the saved content hash, if any."""
    short = getattr(artifact, "short_hash", None)
    return f"sha:{short}" if short else "unversioned"


class _Pending:
    """One enqueued request: rows in, slice of the batched result out."""

    __slots__ = (
        "kind",
        "rows",
        "event",
        "result",
        "error",
        "t_submit",
        "deadline",
        "cancelled",
        "on_done",
        "served_by",
    )

    def __init__(
        self,
        kind: str,
        rows: np.ndarray,
        deadline: float | None = None,
        on_done=None,
    ) -> None:
        self.kind = kind
        self.rows = rows
        self.event = threading.Event()
        self.result: dict | None = None
        self.error: Exception | None = None
        self.t_submit = time.perf_counter()
        self.deadline = deadline  # absolute time.monotonic(), or None
        self.cancelled = False  # waiter gave up; worker skips the work
        self.on_done = on_done  # called (exactly once) after event.set()
        self.served_by: str | None = None  # artifact version label


class MicroBatcher:
    """Coalesce concurrent requests into one vectorized apply.

    On the first request of a batch the worker waits up to
    ``max_wait_ms`` for followers, then executes every pending request of
    each kind in a single pipeline call and fans the row slices back out.
    ``max_batch_rows`` bounds a batch; overflow rolls into the next one.

    Admission control: ``max_queue`` (optional) bounds how many requests
    may wait; overflow raises :class:`QueueFullError` immediately instead
    of queueing unbounded latency. Requests may carry an absolute
    ``deadline`` (``time.monotonic()`` seconds): the worker drops expired
    requests with :class:`DeadlineExceededError` rather than spending a
    batch slot on an answer nobody is waiting for.

    Hot swap: :meth:`swap_artifact` atomically replaces the served
    artifact. The swap happens between batches — each batch snapshots
    ``(artifact, version)`` under the queue lock, so every response in a
    batch comes from exactly one artifact version.

    Robustness: the worker finishing a request (setting its event,
    recording metrics) can no longer be skipped by an exception mid-batch,
    and waiters poll worker liveness — if the worker thread dies, current
    and future submitters get a ``RuntimeError`` instead of blocking
    forever. :meth:`close` fails still-queued requests the same way.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 4096,
        metrics: MetricsRegistry | None = None,
        *,
        max_queue: int | None = None,
        version: str | None = None,
    ) -> None:
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        self._artifact = artifact
        self._version = version if version is not None else _artifact_version_label(artifact)
        self.max_wait_ms = max_wait_ms
        self.max_batch_rows = max_batch_rows
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._req_latency = self.metrics.histogram(
            "serve_request_seconds", help="Per-request latency (submit to response)"
        )
        self._batch_latency = self.metrics.histogram(
            "serve_batch_execute_seconds", help="Per-batch pipeline execution latency"
        )
        self._batch_requests = self.metrics.histogram(
            "serve_batch_requests",
            help="Requests coalesced per batch",
            bounds=_BATCH_SIZE_BOUNDS,
        )
        self._batch_rows = self.metrics.histogram(
            "serve_batch_rows", help="Rows per batch", bounds=_BATCH_SIZE_BOUNDS
        )
        self._queue_depth = self.metrics.gauge(
            "serve_queue_depth", help="Requests waiting in the admission queue"
        )
        self._shed = self.metrics.counter(
            "serve_requests_shed",
            help="Requests rejected because the admission queue was full",
        )
        self._deadline_expired = self.metrics.counter(
            "serve_deadline_expired",
            help="Requests dropped or abandoned past their deadline",
        )
        self._queue: deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stopped = False
        self.n_requests = 0
        self.n_batches = 0
        self.n_rows = 0
        self.max_batch_seen = 0
        self._worker = threading.Thread(target=self._loop, daemon=True)
        self._worker.start()

    # -- client side -----------------------------------------------------------

    @property
    def artifact(self) -> PipelineArtifact:
        return self._artifact

    @property
    def version(self) -> str:
        return self._version

    def swap_artifact(self, artifact: PipelineArtifact, version: str | None = None) -> str:
        """Atomically replace the served artifact; returns the old version.

        The reference swaps under the queue lock, and the worker snapshots
        the pair at batch-claim time — in-flight batches finish on the old
        artifact, later batches run on the new one, never a mix.
        """
        with self._wake:
            previous = self._version
            self._artifact = artifact
            self._version = version if version is not None else _artifact_version_label(artifact)
        return previous

    def _retry_after(self) -> int:
        """Seconds a shed client should back off: queue drain time, ceil'd."""
        p99 = self._batch_latency.quantile(0.99)
        if p99 <= 0:
            return 1
        return max(1, min(60, math.ceil(p99 * (self.max_queue or 1))))

    def submit_nowait(
        self,
        kind: str,
        rows: np.ndarray,
        deadline: float | None = None,
        on_done=None,
    ) -> _Pending:
        """Enqueue one request without blocking; returns its handle.

        Raises :class:`QueueFullError` when the bounded queue is at
        capacity and ``RuntimeError`` when the batcher is stopped or its
        worker thread has died.
        """
        pending = _Pending(kind, rows, deadline=deadline, on_done=on_done)
        with self._wake:
            if self._stopped:
                raise RuntimeError("MicroBatcher is stopped")
            if not self._worker.is_alive():
                raise RuntimeError(
                    "MicroBatcher worker thread has died; restart the service"
                )
            if self.max_queue is not None and len(self._queue) >= self.max_queue:
                self._shed.inc()
                raise QueueFullError(
                    f"admission queue full ({self.max_queue} waiting requests)",
                    retry_after=self._retry_after(),
                )
            self._queue.append(pending)
            self.n_requests += 1
            self._queue_depth.set(len(self._queue))
            self._wake.notify()
        return pending

    def wait_for(self, pending: _Pending) -> dict:
        """Block until ``pending`` finishes; raise its error if it failed.

        Polls worker liveness so a dead worker raises ``RuntimeError``
        instead of hanging, and enforces the request deadline on the
        waiter side (the worker may be mid-batch and unable to check).
        """
        while not pending.event.wait(timeout=_WAIT_POLL_SECONDS):
            if pending.deadline is not None and time.monotonic() >= pending.deadline:
                self.abandon(pending)
                raise DeadlineExceededError(
                    f"deadline expired after {time.perf_counter() - pending.t_submit:.3f}s"
                )
            if not self._worker.is_alive():
                # Re-check after observing death: the dying worker's rescue
                # pass may have finished this pending between our wait and
                # the liveness read.
                if pending.event.wait(timeout=_WAIT_POLL_SECONDS):
                    break
                raise RuntimeError(
                    "MicroBatcher worker thread died while the request was queued"
                )
        if pending.error is not None:
            raise pending.error
        return pending.result

    def submit(self, kind: str, rows: np.ndarray, deadline: float | None = None) -> dict:
        """Enqueue one request and block until its batch has run."""
        return self.wait_for(self.submit_nowait(kind, rows, deadline=deadline))

    def abandon(self, pending: _Pending) -> None:
        """Waiter gave up (deadline): mark so the worker skips the work."""
        pending.cancelled = True
        self._deadline_expired.inc()

    def close(self) -> None:
        with self._wake:
            self._stopped = True
            self._wake.notify_all()
        self._worker.join(timeout=5.0)
        # The worker's own shutdown path rescues the queue; this second
        # pass covers a worker that was already dead (or failed to exit
        # within the join timeout) so no pending is left waiting.
        self._fail_queued("MicroBatcher is stopped")

    def stats(self) -> dict:
        with self._lock:
            out = {
                "requests": self.n_requests,
                "batches": self.n_batches,
                "rows": self.n_rows,
                "max_batch_requests": self.max_batch_seen,
                "queue_depth": len(self._queue),
                "max_queue": self.max_queue,
                "version": self._version,
            }
        out["shed"] = int(self._shed.value)
        out["deadline_expired"] = int(self._deadline_expired.value)
        # Latency/batch-shape quantiles from the always-on histograms
        # (outside the queue lock: histograms carry their own locks).
        out["request_latency_p50"] = round(self._req_latency.quantile(0.5), 6)
        out["request_latency_p99"] = round(self._req_latency.quantile(0.99), 6)
        out["batch_requests_p50"] = round(self._batch_requests.quantile(0.5), 2)
        out["batch_requests_p99"] = round(self._batch_requests.quantile(0.99), 2)
        out["batch_rows_p50"] = round(self._batch_rows.quantile(0.5), 2)
        out["batch_rows_p99"] = round(self._batch_rows.quantile(0.99), 2)
        return out

    # -- worker side -----------------------------------------------------------

    def _finish(self, pending: _Pending) -> None:
        """Complete one request: metrics, wake the waiter, fire the hook.

        Exception-safe by construction — ``event.set()`` runs in a
        ``finally`` so a raising histogram or callback can never strand
        the waiter (the pre-rebuild hang bug).
        """
        if pending.event.is_set():
            return
        try:
            self._req_latency.observe(time.perf_counter() - pending.t_submit)
            self.metrics.counter("serve_requests", labels={"kind": pending.kind}).inc()
            if pending.error is not None:
                self.metrics.counter(
                    "serve_request_errors", labels={"kind": pending.kind}
                ).inc()
        finally:
            pending.event.set()
            if pending.on_done is not None:
                try:
                    pending.on_done(pending)
                except Exception:
                    pass

    def _fail_queued(self, message: str) -> None:
        with self._wake:
            leftovers = list(self._queue)
            self._queue.clear()
            self._queue_depth.set(0)
        for pending in leftovers:
            pending.error = RuntimeError(message)
            self._finish(pending)

    def _drain(self):
        """Wait for work, linger ``max_wait_ms`` for followers, take a batch.

        Returns ``(batch, artifact, version)`` — the artifact pair is
        snapshotted under the lock so the whole batch runs on one version
        even if :meth:`swap_artifact` lands mid-execution.
        """
        dropped: list[_Pending] = []
        with self._wake:
            while not self._queue and not self._stopped:
                self._wake.wait()
            if self._stopped:
                return [], None, None
            if self._queue and self.max_wait_ms > 0:
                # Linger on the condition — each follower's notify re-checks
                # the row cap, so a full batch departs immediately and an
                # idle window costs no wakeups.
                deadline = time.monotonic() + self.max_wait_ms / 1000.0
                while not self._stopped:
                    if sum(len(p.rows) for p in self._queue) >= self.max_batch_rows:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wake.wait(timeout=remaining)
            batch: list[_Pending] = []
            rows = 0
            now = time.monotonic()
            while self._queue and rows < self.max_batch_rows:
                pending = self._queue.popleft()
                if pending.cancelled:
                    # Waiter already raised; nothing to compute or report.
                    dropped.append(pending)
                    continue
                if pending.deadline is not None and pending.deadline <= now:
                    pending.error = DeadlineExceededError(
                        "deadline expired while queued"
                    )
                    self._deadline_expired.inc()
                    dropped.append(pending)
                    continue
                batch.append(pending)
                rows += len(pending.rows)
            if batch:
                self.n_batches += 1
                self.n_rows += rows
                self.max_batch_seen = max(self.max_batch_seen, len(batch))
            self._queue_depth.set(len(self._queue))
            artifact, version = self._artifact, self._version
        for pending in dropped:
            if pending.error is None:
                pending.error = DeadlineExceededError("request abandoned past its deadline")
            self._finish(pending)
        if batch:
            self._batch_requests.observe(len(batch))
            self._batch_rows.observe(rows)
        return batch, artifact, version

    def _execute(
        self,
        kind: str,
        group: list[_Pending],
        artifact: PipelineArtifact,
        version: str,
    ) -> None:
        """One vectorized pipeline call for every request of ``kind``."""
        stacked = np.vstack([p.rows for p in group])
        features = artifact.transform(stacked)
        predictions = proba = None
        if kind == "predict":
            model = artifact.model
            if model is None:
                raise RuntimeError("Artifact carries no downstream model")
            predictions = model.predict(features)
            proba = (
                model.predict_proba(features)
                if hasattr(model, "predict_proba")
                else None
            )
        offset = 0
        for p in group:
            stop = offset + len(p.rows)
            if kind == "transform":
                p.result = {"features": features[offset:stop]}
            else:
                p.result = {"predictions": predictions[offset:stop]}
                if proba is not None:
                    p.result["proba"] = proba[offset:stop]
            p.served_by = version
            offset = stop

    def _run_batch(
        self,
        batch: list[_Pending],
        artifact: PipelineArtifact,
        version: str,
    ) -> None:
        try:
            for kind in ("transform", "predict"):
                group = [p for p in batch if p.kind == kind]
                if not group:
                    continue
                t0 = time.perf_counter()
                try:
                    self._execute(kind, group, artifact, version)
                except Exception as exc:  # surface per-request, keep serving
                    for p in group:
                        p.error = exc
                        p.served_by = version
                self._batch_latency.observe(time.perf_counter() - t0)
        finally:
            # Every claimed request finishes, whatever happened above — a
            # raising metrics hook must not strand a waiter.
            for p in batch:
                self._finish(p)

    def _loop(self) -> None:
        batch: list[_Pending] = []
        try:
            while True:
                batch, artifact, version = self._drain()
                if not batch:
                    if self._stopped:
                        return
                    continue
                self._run_batch(batch, artifact, version)
                batch = []
        finally:
            # Orderly stop or crash: no claimed or queued request may be
            # left waiting on an event nobody will ever set.
            message = (
                "MicroBatcher is stopped"
                if self._stopped
                else "MicroBatcher worker thread died"
            )
            for p in batch:
                if not p.event.is_set():
                    p.error = RuntimeError(message)
                    self._finish(p)
            self._fail_queued(message)


class ShadowRouter:
    """Mirror live traffic onto a challenger artifact, off the hot path.

    ``offer`` enqueues (rows, primary result) pairs into a bounded buffer
    consumed by a single daemon thread; when the buffer is full the pair
    is dropped (and counted) rather than slowing the live request. The
    worker re-runs the challenger and compares outputs exactly
    (``np.array_equal``), incrementing ``serve_shadow_divergence`` per
    mismatching request.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        version: str | None = None,
        metrics: MetricsRegistry | None = None,
        max_pending: int = 256,
    ) -> None:
        self.artifact = artifact
        self.version = version if version is not None else _artifact_version_label(artifact)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_pending = max_pending
        self.n_requests = 0
        self.n_divergences = 0
        self.n_dropped = 0
        self.n_errors = 0
        self._queue: deque[tuple] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stopped = False
        self._busy = False
        self._worker = threading.Thread(target=self._loop, daemon=True)
        self._worker.start()

    def offer(self, kind: str, rows: np.ndarray, primary: dict) -> bool:
        """Queue one mirrored request; returns False when shed."""
        with self._wake:
            if self._stopped:
                return False
            if len(self._queue) >= self.max_pending:
                self.n_dropped += 1
                self.metrics.counter(
                    "serve_shadow_dropped",
                    help="Shadow comparisons shed because the mirror queue was full",
                ).inc()
                return False
            self._queue.append((kind, rows, primary))
            self._wake.notify()
        return True

    def _compare(self, kind: str, rows: np.ndarray, primary: dict) -> None:
        features = self.artifact.transform(rows)
        if kind == "transform":
            diverged = not np.array_equal(features, primary["features"])
        else:
            model = self.artifact.model
            if model is None:
                raise RuntimeError("shadow artifact carries no downstream model")
            predictions = model.predict(features)
            diverged = not np.array_equal(predictions, primary["predictions"])
        self.n_requests += 1
        self.metrics.counter(
            "serve_shadow_requests",
            help="Live requests mirrored to the shadow artifact",
            labels={"kind": kind},
        ).inc()
        if diverged:
            self.n_divergences += 1
            self.metrics.counter(
                "serve_shadow_divergence",
                help="Mirrored requests whose shadow output differed",
                labels={"kind": kind},
            ).inc()

    def _loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stopped:
                    self._wake.wait()
                if self._stopped and not self._queue:
                    return
                kind, rows, primary = self._queue.popleft()
                self._busy = True
            try:
                self._compare(kind, rows, primary)
            except Exception:
                self.n_errors += 1
                self.metrics.counter(
                    "serve_shadow_errors", help="Shadow comparisons that raised"
                ).inc()
            finally:
                with self._wake:
                    self._busy = False
                    self._wake.notify_all()

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until the mirror queue is idle (tests); False on timeout."""
        deadline = time.monotonic() + timeout
        with self._wake:
            while self._queue or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._wake.wait(timeout=remaining)
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "version": self.version,
                "pending": len(self._queue),
                "requests": self.n_requests,
                "divergences": self.n_divergences,
                "dropped": self.n_dropped,
                "errors": self.n_errors,
            }

    def close(self) -> None:
        with self._wake:
            self._stopped = True
            self._wake.notify_all()
        self._worker.join(timeout=5.0)


class PipelineService:
    """In-process client: artifact + micro-batcher, no sockets.

    This is the object the HTTP handler delegates to, so in-process tests
    exercise exactly the code the server runs. ``deadline_ms`` sets a
    default per-request deadline; ``max_queue`` bounds admission;
    ``shadow_artifact`` mirrors traffic onto a challenger through a
    :class:`ShadowRouter`.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 4096,
        *,
        max_queue: int | None = None,
        deadline_ms: float | None = None,
        version: str | None = None,
        shadow_artifact: PipelineArtifact | None = None,
        shadow_version: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 (or None)")
        self.batcher = MicroBatcher(
            artifact,
            max_wait_ms=max_wait_ms,
            max_batch_rows=max_batch_rows,
            metrics=metrics,
            max_queue=max_queue,
            version=version,
        )
        self.deadline_ms = deadline_ms
        self.shadow: ShadowRouter | None = None
        if shadow_artifact is not None:
            self.shadow = ShadowRouter(
                shadow_artifact, version=shadow_version, metrics=self.batcher.metrics
            )
        self._started = time.monotonic()

    @property
    def artifact(self) -> PipelineArtifact:
        return self.batcher.artifact

    @property
    def version(self) -> str:
        return self.batcher.version

    @property
    def metrics(self) -> MetricsRegistry:
        """The serving metrics registry (rendered by ``GET /metrics``)."""
        return self.batcher.metrics

    def _rows(self, rows) -> np.ndarray:
        try:
            arr = np.asarray(rows, dtype=float)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"rows must be numeric: {exc}") from None
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.artifact.plan.n_input_columns:
            raise ValueError(
                f"rows must be (n, {self.artifact.plan.n_input_columns}); "
                f"got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            # Non-finite inputs would be imputed with *batch* column medians
            # by the final sanitization pass, making a response depend on
            # which requests it was coalesced with; rejecting them keeps
            # micro-batching exact (every op output is already finite).
            raise ValueError("rows must be finite numbers")
        return arr

    def resolve_deadline(self, deadline_ms: float | None = None) -> float | None:
        """Per-request override or service default, as absolute monotonic."""
        ms = deadline_ms if deadline_ms is not None else self.deadline_ms
        if ms is None:
            return None
        if ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        return time.monotonic() + ms / 1000.0

    def submit_nowait(self, kind: str, rows, deadline: float | None = None, on_done=None):
        """Validate and enqueue without blocking (the async front end)."""
        return self.batcher.submit_nowait(
            kind, self._rows(rows), deadline=deadline, on_done=on_done
        )

    def shadow_offer(self, kind: str, rows: np.ndarray, result: dict) -> None:
        if self.shadow is not None and result is not None:
            self.shadow.offer(kind, rows, result)

    def _call(self, kind: str, rows) -> dict:
        arr = self._rows(rows)
        result = self.batcher.submit(kind, arr, deadline=self.resolve_deadline())
        self.shadow_offer(kind, arr, result)
        return result

    def transform(self, rows) -> np.ndarray:
        return self._call("transform", rows)["features"]

    def predict(self, rows) -> dict:
        """Returns ``{"predictions": ndarray, "proba": ndarray?}``."""
        return self._call("predict", rows)

    def reload(self, artifact: PipelineArtifact, version: str | None = None) -> str:
        """Hot-swap the served artifact; returns the previous version.

        Rejects artifacts with a different input width — a swap must never
        turn valid in-flight request shapes into 400s.
        """
        current = self.batcher.artifact
        if artifact.plan.n_input_columns != current.plan.n_input_columns:
            raise ValueError(
                f"cannot hot-swap: new artifact expects "
                f"{artifact.plan.n_input_columns} input columns, "
                f"serving expects {current.plan.n_input_columns}"
            )
        previous = self.batcher.swap_artifact(artifact, version=version)
        self.metrics.counter(
            "serve_reloads", help="Successful artifact hot swaps"
        ).inc()
        return previous

    def healthz(self) -> dict:
        out = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "version": self.version,
            "artifact": self.artifact.summary(),
            "batcher": self.batcher.stats(),
            "admission": {
                "max_queue": self.batcher.max_queue,
                "deadline_ms": self.deadline_ms,
                "shed": int(self.batcher._shed.value),
            },
        }
        if self.shadow is not None:
            out["shadow"] = self.shadow.stats()
        return out

    def close(self) -> None:
        self.batcher.close()
        if self.shadow is not None:
            self.shadow.close()


# Paths with their own metric label; everything else is clamped to
# "other" so a scanner cannot explode label cardinality.
_KNOWN_PATHS = ("/transform", "/predict", "/healthz", "/metrics", "/admin/reload")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

_MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_LINES = 200


class _BadRequest(Exception):
    """Malformed HTTP framing; answered with 400 then the connection closes."""


class _ClientGone(Exception):
    """The client disconnected mid-response; counted, never fatal."""


class _Request:
    __slots__ = ("method", "target", "version", "headers", "body")

    def __init__(self, method, target, version, headers, body):
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers  # lower-cased names
        self.body = body


class InferenceServer:
    """Asyncio HTTP front of a :class:`PipelineService`.

    ::

        server = InferenceServer(artifact, port=0)   # 0 = ephemeral port
        server.start()                               # background thread
        ... requests against server.url ...
        server.stop()

    The listening socket is bound in ``__init__`` (so ``.url`` is valid
    before serving starts); the event loop runs on a dedicated thread and
    bridges to the batcher's worker via ``call_soon_threadsafe``, so slow
    pipelines never block accepting connections.

    ``max_requests`` (optional) shuts the server down after that many
    requests have been answered — the hook ``repro serve --max-requests``
    and the tests use for bounded runs. Also usable as a context manager
    and blocking via :meth:`serve_forever`.

    ``access_log`` opts into per-request log lines (CLI ``--access-log``):
    ``True`` logs to stderr, or pass any text stream.

    Production knobs: ``max_queue`` bounds admission (overflow answers
    429 + ``Retry-After``), ``deadline_ms`` sets a default per-request
    deadline (expired answers 504; clients override per request with an
    ``X-Deadline-Ms`` header), ``reload_source`` — a zero-arg callable
    returning ``(artifact, version)`` — enables ``POST /admin/reload``
    hot swap, and ``shadow_artifact`` mirrors traffic to a challenger.
    """

    def __init__(
        self,
        artifact: PipelineArtifact,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 4096,
        max_requests: int | None = None,
        access_log=None,
        *,
        max_queue: int | None = None,
        deadline_ms: float | None = None,
        version: str | None = None,
        reload_source=None,
        shadow_artifact: PipelineArtifact | None = None,
        shadow_version: str | None = None,
    ) -> None:
        self.service = PipelineService(
            artifact,
            max_wait_ms=max_wait_ms,
            max_batch_rows=max_batch_rows,
            max_queue=max_queue,
            deadline_ms=deadline_ms,
            version=version,
            shadow_artifact=shadow_artifact,
            shadow_version=shadow_version,
        )
        self.max_requests = max_requests
        self.access_log = sys.stderr if access_log is True else (access_log or None)
        self._reload_source = reload_source
        self._reload_lock = threading.Lock()
        self._served = 0
        self._served_lock = threading.Lock()
        self._done = threading.Event()
        self._ready = threading.Event()
        self._cleaned = False
        self._stop_requested = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._conn_tasks: set = set()
        self._writers: set = set()
        self._thread: threading.Thread | None = None
        # Bind eagerly: `.url` must work before start() (the CLI writes
        # --url-file between construction and serve_forever()).
        self._sock = socket.create_server((host, port), backlog=128)
        self._address = self._sock.getsockname()[:2]

    # -- public surface --------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._served

    def start(self) -> "InferenceServer":
        """Serve on a background thread; returns self once listening."""
        if self._thread is not None:
            raise RuntimeError("Server already started")
        self._thread = threading.Thread(target=self._serve_blocking, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("Server failed to start within 10s")
        return self

    def serve_forever(self) -> None:
        """Blocking serve (until stop(), Ctrl-C, or max_requests)."""
        try:
            self._serve_blocking()
        except KeyboardInterrupt:
            pass

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a ``max_requests`` shutdown has triggered."""
        return self._done.wait(timeout)

    def stop(self) -> None:
        self._stop_requested = True
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._signal_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._cleanup()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- event loop ------------------------------------------------------------

    def _signal_shutdown(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def _serve_blocking(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            self._loop = None
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.run_until_complete(loop.shutdown_default_executor())
            except Exception:
                pass
            loop.close()
            self._cleanup()

    async def _main(self) -> None:
        self._shutdown_event = asyncio.Event()
        if self._stop_requested or self._done.is_set():
            self._shutdown_event.set()
        server = await asyncio.start_server(self._handle_client, sock=self._sock)
        self._ready.set()
        try:
            await self._shutdown_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Graceful drain: give in-flight handlers a moment, then abort
            # lingering connections so shutdown stays bounded.
            if self._conn_tasks:
                await asyncio.wait(list(self._conn_tasks), timeout=1.0)
            for writer in list(self._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            if self._conn_tasks:
                await asyncio.wait(list(self._conn_tasks), timeout=5.0)

    def _cleanup(self) -> None:
        # May run from both the serving thread (max_requests) and stop().
        with self._served_lock:
            if self._cleaned:
                return
            self._cleaned = True
        try:
            self._sock.close()
        except OSError:
            pass
        self.service.close()

    def _note_request_served(self) -> None:
        with self._served_lock:
            self._served += 1
            done = self.max_requests is not None and self._served >= self.max_requests
        if done:
            self._done.set()
            self._signal_shutdown()

    # -- connection handling ---------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except ConnectionError:
            pass
        except Exception:
            # A handler bug must not kill the accept loop; surface it.
            traceback.print_exc(file=sys.stderr)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader) -> _Request | None:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            return None
        if not line or not line.strip():
            return None  # EOF / client closed between requests
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {line!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if not raw:
                return None
            text = raw.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many header lines")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _BadRequest("invalid Content-Length") from None
            if length < 0 or length > _MAX_BODY_BYTES:
                raise _BadRequest(f"Content-Length {length} out of range")
            if length:
                body = await reader.readexactly(length)
        return _Request(method, target, version, headers, body)

    async def _serve_connection(self, reader, writer) -> None:
        while self._shutdown_event is not None and not self._shutdown_event.is_set():
            try:
                request = await self._read_request(reader)
            except asyncio.IncompleteReadError:
                self._count_disconnect("other")
                return
            except _BadRequest as exc:
                try:
                    await self._respond_json(writer, 400, {"error": str(exc)}, "other")
                except _ClientGone:
                    pass
                return
            if request is None:
                return
            keep_alive = await self._dispatch(request, writer)
            self._note_request_served()
            if not keep_alive:
                return

    # -- response plumbing -----------------------------------------------------

    def _count_response(self, path: str, status) -> None:
        # Known paths only, so a scanner cannot explode label cardinality.
        # `path` arrives pre-stripped of its query string (the pre-rebuild
        # handler matched the raw target, miscounting `/healthz?probe=1`).
        label = path if path in _KNOWN_PATHS else "other"
        self.service.metrics.counter(
            "serve_http_responses", labels={"path": label, "status": status}
        ).inc()

    def _count_disconnect(self, path: str) -> None:
        self.service.metrics.counter(
            "serve_client_disconnects",
            help="Clients that disconnected before their response was written",
        ).inc()
        self._count_response(path, "disconnect")

    async def _respond(
        self, writer, status: int, body: bytes, content_type: str, path: str,
        extra_headers=(),
    ) -> int:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        payload = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        try:
            writer.write(payload)
            await writer.drain()
        except ConnectionError:
            self._count_disconnect(path)
            raise _ClientGone from None
        self._count_response(path, status)
        return status

    async def _respond_json(
        self, writer, status: int, payload: dict, path: str, extra_headers=()
    ) -> int:
        body = json.dumps(payload).encode()
        return await self._respond(
            writer, status, body, "application/json", path, extra_headers
        )

    def _log_access(self, writer, method: str, target: str, status) -> None:
        stream = self.access_log
        if stream is None:  # quiet by default
            return
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "-"
        stamp = time.strftime("%d/%b/%Y %H:%M:%S")
        stream.write(
            f'{client} - - [{stamp}] "{method} {target} HTTP/1.1" {status} -\n'
        )
        stream.flush()

    # -- request dispatch ------------------------------------------------------

    async def _dispatch(self, request: _Request, writer) -> bool:
        # Strip the query string before routing *and* counting (the
        # pre-rebuild handler matched the raw path, so `/healthz?probe=1`
        # 404'd and was miscounted as "other").
        path = request.target.partition("?")[0]
        keep_alive = (
            request.version != "HTTP/1.0"
            and request.headers.get("connection", "").lower() != "close"
        )
        try:
            if request.method == "GET" and path == "/healthz":
                payload = dict(self.service.healthz())
                payload["requests_served"] = self.requests_served
                status = await self._respond_json(writer, 200, payload, path)
            elif request.method == "GET" and path == "/metrics":
                body = self.service.metrics.render_prometheus().encode("utf-8")
                status = await self._respond(
                    writer, 200, body, PROMETHEUS_CONTENT_TYPE, path
                )
            elif request.method == "POST" and path in ("/transform", "/predict"):
                status = await self._handle_inference(request, writer, path)
            elif request.method == "POST" and path == "/admin/reload":
                status = await self._handle_reload(writer, path)
            elif request.method in ("GET", "POST", "HEAD", "PUT", "DELETE"):
                status = await self._respond_json(
                    writer, 404, {"error": f"unknown path {path}"}, path
                )
            else:
                status = await self._respond_json(
                    writer, 405, {"error": f"unsupported method {request.method}"}, path
                )
        except _ClientGone:
            self._log_access(writer, request.method, request.target, "disconnect")
            return False
        self._log_access(writer, request.method, request.target, status)
        return keep_alive

    async def _submit(self, kind: str, rows, deadline_ms: float | None):
        """Bridge the batcher's threading.Event completion into asyncio."""
        loop = asyncio.get_running_loop()
        fut = loop.create_future()

        def on_done(pending) -> None:
            def resolve() -> None:
                if not fut.done():
                    fut.set_result(None)

            try:
                loop.call_soon_threadsafe(resolve)
            except RuntimeError:
                pass  # loop shut down while the batch was in flight

        deadline = self.service.resolve_deadline(deadline_ms)
        pending = self.service.submit_nowait(kind, rows, deadline=deadline, on_done=on_done)
        if deadline is None:
            await fut
        else:
            try:
                await asyncio.wait_for(fut, timeout=max(deadline - time.monotonic(), 0.0))
            except TimeoutError:
                self.service.batcher.abandon(pending)
                raise DeadlineExceededError(
                    "deadline expired before the batch ran"
                ) from None
        if pending.error is not None:
            raise pending.error
        return pending

    async def _handle_inference(self, request: _Request, writer, path: str) -> int:
        try:
            payload = json.loads(request.body or b"{}")
            rows = payload["rows"]
        except (ValueError, KeyError, TypeError) as exc:
            return await self._respond_json(
                writer, 400, {"error": f"bad request body: {exc}"}, path
            )
        deadline_ms = None
        header = request.headers.get("x-deadline-ms")
        if header:
            try:
                deadline_ms = float(header)
                if deadline_ms <= 0:
                    raise ValueError
            except ValueError:
                return await self._respond_json(
                    writer, 400, {"error": f"invalid X-Deadline-Ms: {header!r}"}, path
                )
        kind = path.lstrip("/")
        try:
            pending = await self._submit(kind, rows, deadline_ms)
        except QueueFullError as exc:
            return await self._respond_json(
                writer,
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                path,
                extra_headers=(("Retry-After", str(exc.retry_after)),),
            )
        except DeadlineExceededError as exc:
            return await self._respond_json(writer, 504, {"error": str(exc)}, path)
        except (ValueError, RuntimeError) as exc:
            return await self._respond_json(writer, 400, {"error": str(exc)}, path)
        except Exception as exc:  # user-supplied model blew up: answer,
            # don't drop the connection with a bare traceback
            return await self._respond_json(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"}, path
            )
        result = pending.result
        if kind == "transform":
            body = {"features": result["features"].tolist()}
        else:
            body = {"predictions": result["predictions"].tolist()}
            if "proba" in result:
                body["proba"] = result["proba"].tolist()
        body["artifact_version"] = pending.served_by
        self.service.shadow_offer(kind, pending.rows, result)
        return await self._respond_json(writer, 200, body, path)

    async def _handle_reload(self, writer, path: str) -> int:
        if self._reload_source is None:
            return await self._respond_json(
                writer,
                400,
                {"error": "reload not configured; serve with --registry and --reload"},
                path,
            )
        loop = asyncio.get_running_loop()

        def load():
            # Serialize reloads: two concurrent POSTs must not interleave
            # resolve/load/swap.
            with self._reload_lock:
                artifact, version = self._reload_source()
                previous = self.service.version
                if version is not None and version == previous:
                    return False, previous, previous
                old = self.service.reload(artifact, version=version)
                return True, self.service.version, old

        try:
            swapped, version, previous = await loop.run_in_executor(None, load)
        except ValueError as exc:  # incompatible artifact shape
            return await self._respond_json(writer, 409, {"error": str(exc)}, path)
        except Exception as exc:
            return await self._respond_json(
                writer, 500, {"error": f"reload failed: {type(exc).__name__}: {exc}"}, path
            )
        return await self._respond_json(
            writer,
            200,
            {"swapped": swapped, "version": version, "previous": previous},
            path,
        )
