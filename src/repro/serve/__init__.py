"""The serving layer: from finished search to production inference.

A FastFT search is expensive; its product — the transformation plan plus a
fitted downstream model — should be cheap to reuse. This package makes the
``T*(F) → F*`` record operational:

- :mod:`repro.serve.compile`  — flatten a :class:`TransformationPlan` DAG
  into a vectorized, CSE-deduplicated program with chunked execution;
  byte-identical to the interpreter, faster.
- :mod:`repro.serve.artifact` — :class:`PipelineArtifact`: compiled plan +
  fitted model + provenance manifest, with versioned save/load and
  content-hash verification.
- :mod:`repro.serve.registry` — :class:`ArtifactRegistry`: disk-backed
  versioned publish/get/list/latest with tag promotion.
- :mod:`repro.serve.server`   — :class:`InferenceServer`: a micro-batching
  JSON-over-HTTP server (``/transform``, ``/predict``, ``/healthz``) with
  an in-process :class:`PipelineService` client for socket-free use.

Quickstart::

    result = api.search(X, y, task="classification", episodes=12)
    artifact = result.to_artifact(X, y)

    registry = ArtifactRegistry("registry/")
    version = registry.publish(artifact, "churn", tag="prod")

    with InferenceServer(registry.get("churn", tag="prod"), port=0) as srv:
        ...  # POST rows to f"{srv.url}/predict"
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    PipelineArtifact,
    dataset_fingerprint,
)
from repro.serve.compile import CompiledPlan, Instruction, compile_plan
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import (
    DeadlineExceededError,
    InferenceServer,
    MicroBatcher,
    PipelineService,
    QueueFullError,
    ShadowRouter,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "PipelineArtifact",
    "dataset_fingerprint",
    "CompiledPlan",
    "Instruction",
    "compile_plan",
    "ArtifactRegistry",
    "DeadlineExceededError",
    "InferenceServer",
    "MicroBatcher",
    "PipelineService",
    "QueueFullError",
    "ShadowRouter",
]
