"""Disk-backed artifact registry: versioned publish/get with tag promotion.

The registry is the hand-off point between search (which produces
:class:`~repro.serve.artifact.PipelineArtifact` directories) and serving
(which loads them by name). Layout::

    registry-root/
      <name>/
        v0001/ ...      # one PipelineArtifact directory per version
        v0002/ ...
        tags.json       # {"prod": "v0001", ...}

Versions are immutable and monotonically numbered; publishing writes to a
temporary directory and renames it into place, so a crashed publish never
leaves a half-written version visible. Tags are mutable pointers
(``promote``) — the usual "serve whatever *prod* points at" workflow.
"""

from __future__ import annotations

import json
import re
import shutil
from pathlib import Path

from repro.serve.artifact import PipelineArtifact

__all__ = ["ArtifactRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_TAGS = "tags.json"


def _version_string(number: int) -> str:
    return f"v{number:04d}"


class ArtifactRegistry:
    """Filesystem registry of published pipeline artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"Invalid artifact name {name!r}: use letters, digits, '.', '_', '-'"
            )
        return name

    def _entry_dir(self, name: str) -> Path:
        return self.root / self._check_name(name)

    def _tags_path(self, name: str) -> Path:
        return self._entry_dir(name) / _TAGS

    def _read_tags(self, name: str) -> dict[str, str]:
        path = self._tags_path(name)
        return json.loads(path.read_text()) if path.is_file() else {}

    @staticmethod
    def _normalize_version(version: int | str) -> str:
        if isinstance(version, int):
            return _version_string(version)
        if _VERSION_RE.match(version):
            return version
        if version.isdigit():
            return _version_string(int(version))
        raise ValueError(f"Invalid version {version!r}: expected an int or 'vNNNN'")

    # -- queries ---------------------------------------------------------------

    def names(self) -> list[str]:
        """Published artifact names, sorted."""
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and _NAME_RE.match(p.name) and self.versions(p.name)
        )

    def versions(self, name: str) -> list[str]:
        """All versions of ``name``, oldest first ([] when unpublished)."""
        entry = self._entry_dir(name)
        if not entry.is_dir():
            return []
        found = [p.name for p in entry.iterdir() if p.is_dir() and _VERSION_RE.match(p.name)]
        return sorted(found)

    def latest(self, name: str) -> str:
        """Highest published version of ``name``."""
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"No artifact named {name!r} in {self.root}")
        return versions[-1]

    def tags(self, name: str) -> dict[str, str]:
        """Current tag → version mapping for ``name``."""
        return dict(self._read_tags(name))

    def list(self) -> dict[str, dict]:
        """Registry inventory: name → {versions, tags, latest}."""
        return {
            name: {
                "versions": self.versions(name),
                "tags": self._read_tags(name),
                "latest": self.latest(name),
            }
            for name in self.names()
        }

    def resolve_version(
        self,
        name: str,
        version: int | str | None = None,
        tag: str | None = None,
    ) -> str:
        """Resolve (version|tag|latest) to a concrete published ``vNNNN``.

        This is the serving layer's reload hook: re-resolving a tag after
        a ``promote`` yields the new version string without loading the
        artifact, so a no-op reload stays cheap.
        """
        if version is not None and tag is not None:
            raise ValueError("Pass version or tag, not both")
        if tag is not None:
            tags = self._read_tags(name)
            if tag not in tags:
                raise KeyError(
                    f"No tag {tag!r} on {name!r}; have {sorted(tags) or 'none'}"
                )
            return tags[tag]
        if version is None:
            return self.latest(name)
        resolved = self._normalize_version(version)
        if resolved not in self.versions(name):
            raise KeyError(
                f"No version {resolved} of {name!r}; have {self.versions(name)}"
            )
        return resolved

    # -- publish / get / promote ----------------------------------------------

    def publish(
        self, artifact: PipelineArtifact, name: str, tag: str | None = None
    ) -> str:
        """Save ``artifact`` as the next version of ``name``; returns it.

        The artifact directory is written under a dot-prefixed temporary
        name and renamed into place, so concurrent readers never observe a
        partial version. ``tag`` optionally promotes the new version
        immediately.
        """
        if tag is not None and not _NAME_RE.match(tag):
            # Validate before writing anything: a bad tag must not leave an
            # orphan published version behind.
            raise ValueError(f"Invalid tag {tag!r}")
        entry = self._entry_dir(name)
        entry.mkdir(parents=True, exist_ok=True)
        existing = self.versions(name)
        number = int(_VERSION_RE.match(existing[-1]).group(1)) + 1 if existing else 1
        version = _version_string(number)
        tmp = entry / f".tmp-{version}"
        if tmp.exists():
            shutil.rmtree(tmp)
        try:
            artifact.save(tmp)
            tmp.rename(entry / version)
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        if tag is not None:
            self.promote(name, version, tag)
        return version

    def get(
        self,
        name: str,
        version: int | str | None = None,
        tag: str | None = None,
        verify: bool = True,
    ) -> PipelineArtifact:
        """Load an artifact by explicit version, by tag, or latest."""
        resolved = self.resolve_version(name, version=version, tag=tag)
        path = self._entry_dir(name) / resolved
        if not path.is_dir():
            raise KeyError(
                f"No version {resolved} of {name!r}; have {self.versions(name)}"
            )
        return PipelineArtifact.load(path, verify=verify)

    def promote(self, name: str, version: int | str, tag: str) -> None:
        """Point ``tag`` at ``version`` (e.g. promote v0003 to 'prod')."""
        if not _NAME_RE.match(tag):
            raise ValueError(f"Invalid tag {tag!r}")
        resolved = self._normalize_version(version)
        if resolved not in self.versions(name):
            raise KeyError(
                f"Cannot tag unpublished version {resolved} of {name!r}; "
                f"have {self.versions(name)}"
            )
        tags = self._read_tags(name)
        tags[tag] = resolved
        path = self._tags_path(name)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(tags, indent=2, sort_keys=True) + "\n")
        tmp.rename(path)
