"""The plan compiler: FeatureNode DAGs → flat vectorized programs.

:meth:`TransformationPlan.apply` is a memoized recursive interpreter — fine
for a handful of calls at search time, wasteful on the serving path where
the same plan runs on every request. :func:`compile_plan` flattens the DAG
into a topologically-ordered instruction list with three properties the
interpreter lacks:

- **Common-subexpression elimination.** The interpreter memoizes per
  feature id, but a search regularly materializes structurally identical
  derivations under distinct ids (``FeatureSpace`` only dedups against the
  *live* set, so pruned-and-regrown subtrees recur). The compiler keys
  every node by ``(op, operand slots)`` / ``(source column)`` and emits
  each distinct computation exactly once.
- **Chunked / streaming execution.** ``apply(X, chunk_size=...)`` evaluates
  the program over row blocks, releasing intermediate buffers as soon as
  their last consumer has run, so peak memory is bounded by
  ``chunk_size × live-slot count`` instead of ``n_rows × n_nodes``.
- **No recursion.** Compilation and execution are iterative, so plans
  deeper than Python's recursion limit still run.

The contract is byte-identity: for any valid plan and input,
``compile_plan(plan).apply(X)`` equals ``plan.apply(X)`` array-for-array
(asserted in ``tests/serve/test_compile.py`` over every registered
operation). Every operation in the registry is elementwise, which is what
makes both CSE and chunking exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.operations import Operation, get_operation
from repro.core.sequence import TransformationPlan
from repro.ml.preprocessing import sanitize_features

__all__ = ["Instruction", "CompiledPlan", "compile_plan"]


@dataclass(frozen=True)
class Instruction:
    """One step of the flattened program.

    ``op is None`` loads input column ``source_col`` into ``slot``;
    otherwise the operation is applied to the values in ``args`` slots.
    """

    slot: int
    op: str | None
    args: tuple[int, ...] = ()
    source_col: int | None = None


@dataclass
class CompiledPlan:
    """A topologically-ordered, CSE-deduplicated executable plan.

    Produced by :func:`compile_plan`; byte-identical to the source plan's
    interpreter on every input (chunked or not).
    """

    n_input_columns: int
    feature_names: list[str]
    instructions: list[Instruction]
    output_slots: list[int]
    n_slots: int
    n_nodes: int  # reachable FeatureNodes before CSE
    # slot -> index of the last instruction that reads it (outputs are
    # pinned past the end of the program); drives buffer release.
    _last_use: list[int] = field(default_factory=list)

    @property
    def n_features(self) -> int:
        return len(self.output_slots)

    @property
    def n_merged(self) -> int:
        """Nodes eliminated by common-subexpression elimination."""
        return self.n_nodes - len(self.instructions)

    def _run(self, X: np.ndarray, ops: list[Operation | None], out: np.ndarray) -> None:
        """Execute the program over ``X`` writing the live columns to ``out``."""
        values: list[np.ndarray | None] = [None] * self.n_slots
        for i, ins in enumerate(self.instructions):
            if ins.op is None:
                values[ins.slot] = X[:, ins.source_col]
            else:
                values[ins.slot] = ops[i](*[values[a] for a in ins.args])
            # Release buffers whose last consumer just ran (streaming mode's
            # memory bound); output slots have last_use beyond the program.
            for a in ins.args:
                if self._last_use[a] == i:
                    values[a] = None
        for j, slot in enumerate(self.output_slots):
            out[:, j] = values[slot]

    def apply(self, X: np.ndarray, chunk_size: int | None = None) -> np.ndarray:
        """Evaluate every live feature on ``X``; optionally in row chunks.

        Byte-identical to :meth:`TransformationPlan.apply` for any
        ``chunk_size``: all operations are elementwise, and the final
        sanitization pass (whose column medians are global statistics)
        runs once over the fully assembled matrix, exactly as the
        interpreter does.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_input_columns:
            raise ValueError(
                f"Plan was fitted on {self.n_input_columns} columns, got {X.shape}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        ops = [None if ins.op is None else get_operation(ins.op) for ins in self.instructions]
        n = X.shape[0]
        out = np.empty((n, self.n_features), dtype=float)
        if chunk_size is None or chunk_size >= n:
            self._run(X, ops, out)
        else:
            for start in range(0, n, chunk_size):
                stop = min(start + chunk_size, n)
                self._run(X[start:stop], ops, out[start:stop])
        return sanitize_features(out)


def _topological_order(plan: TransformationPlan) -> list[int]:
    """Iterative post-order DFS from the live set — the interpreter's
    evaluation order, without its recursion limit."""
    order: list[int] = []
    done: set[int] = set()
    for root in plan.live_ids:
        if root in done:
            continue
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            fid, expanded = stack.pop()
            if fid in done:
                continue
            if expanded:
                done.add(fid)
                order.append(fid)
                continue
            stack.append((fid, True))
            for child in reversed(plan.nodes[fid].children):
                if child not in done:
                    stack.append((child, False))
    return order


def compile_plan(plan: TransformationPlan) -> CompiledPlan:
    """Compile a (validated) plan into a :class:`CompiledPlan`."""
    plan.validate()
    order = _topological_order(plan)

    instructions: list[Instruction] = []
    slot_of_key: dict[tuple, int] = {}
    slot_of_fid: dict[int, int] = {}
    for fid in order:
        node = plan.nodes[fid]
        if node.op is None:
            key: tuple = ("src", node.source_col)
            args: tuple[int, ...] = ()
        else:
            args = tuple(slot_of_fid[c] for c in node.children)
            key = (node.op, args)
        slot = slot_of_key.get(key)
        if slot is None:
            slot = len(instructions)
            slot_of_key[key] = slot
            instructions.append(
                Instruction(slot=slot, op=node.op, args=args, source_col=node.source_col)
            )
        slot_of_fid[fid] = slot

    output_slots = [slot_of_fid[fid] for fid in plan.live_ids]
    last_use = [-1] * len(instructions)
    for i, ins in enumerate(instructions):
        for a in ins.args:
            last_use[a] = i
    for slot in output_slots:
        last_use[slot] = len(instructions)  # outputs are never released

    return CompiledPlan(
        n_input_columns=plan.n_input_columns,
        feature_names=list(plan.feature_names),
        instructions=instructions,
        output_slots=output_slots,
        n_slots=len(instructions),
        n_nodes=len(order),
        _last_use=last_use,
    )
