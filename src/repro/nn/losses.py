"""Loss functions composed from autodiff primitives."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["mse_loss", "huber_loss"]


def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error — the training loss of both evaluation components
    (Equations 3 and 4)."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=float))
    diff = pred - target
    return (diff * diff).mean()


def huber_loss(pred: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Smooth-L1 loss; offered for the critic as a robust alternative."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=float))
    diff = pred - target
    abs_diff = np.abs(diff.data)
    quadratic = diff * diff * 0.5
    # Piecewise selection uses the (constant) indicator of |diff| <= delta.
    inside = Tensor((abs_diff <= delta).astype(float))
    sign = Tensor(np.sign(diff.data))
    linear = sign * diff * delta - Tensor(np.full_like(abs_diff, 0.5 * delta * delta))
    return (inside * quadratic + (1.0 - inside) * linear).mean()
