"""Module/Parameter containers mirroring the torch.nn API surface we need."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as trainable by :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: recursive parameter collection, train/eval flag, state dict."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Parameter]:
        """Yield all unique parameters in this module and its submodules."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def memory_bytes(self) -> int:
        """Parameter memory footprint (used by the Fig 11 harness)."""
        return sum(p.data.nbytes for p in self.parameters())

    def train(self) -> "Module":
        self.training = True
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for value in vars(self).values():
            if isinstance(value, Module):
                value.eval()
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise ValueError(f"State mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(
                    f"Shape mismatch for {name}: {own[name].data.shape} vs {values.shape}"
                )
            own[name].data = values.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
