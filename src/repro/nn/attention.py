"""Minimal Transformer encoder (the Fig 8 sequential-modeling ablation).

Single-head scaled dot-product self-attention + position-wise FFN, with
pre-LayerNorm residual blocks, sinusoidal positions and masked mean pooling.
The paper finds LSTM matches this model at far lower runtime — the ablation
harness reproduces exactly that comparison.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, softmax

__all__ = ["TransformerEncoder"]


def _sinusoidal_positions(T: int, dim: int) -> np.ndarray:
    positions = np.arange(T)[:, None].astype(float)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((T, dim))
    table[:, 0::2] = np.sin(positions * div)
    table[:, 1::2] = np.cos(positions * div[: table[:, 1::2].shape[1]])
    return table


class _EncoderBlock(Module):
    def __init__(self, dim: int, ffn_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.q = Linear(dim, dim, rng=rng)
        self.k = Linear(dim, dim, rng=rng)
        self.v = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.ffn1 = Linear(dim, ffn_dim, rng=rng)
        self.ffn2 = Linear(ffn_dim, dim, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.scale = 1.0 / np.sqrt(dim)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        # x: (B, T, D); mask: (B, T) with 1 for real tokens.
        normed = self.norm1(x)
        q, k, v = self.q(normed), self.k(normed), self.v(normed)
        scores = (q @ k.swapaxes(-1, -2)) * self.scale  # (B, T, T)
        # Padded keys get -1e9 so they receive ~zero attention mass.
        bias = (mask[:, None, :] - 1.0) * 1e9
        attn = softmax(scores + Tensor(bias), axis=-1)
        attended = self.out(attn @ v)
        x = x + attended
        x = x + self.ffn2(self.ffn1(self.norm2(x)).relu())
        return x


class TransformerEncoder(Module):
    """Token sequence → (B, hidden) encoding via masked mean pooling."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        ffn_dim: int | None = None,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.blocks = [
            _EncoderBlock(embed_dim, ffn_dim or 2 * embed_dim, rng) for _ in range(num_layers)
        ]
        self.project = Linear(embed_dim, hidden_dim, rng=rng)

    def forward(self, tokens: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens.reshape(1, -1)
        B, T = tokens.shape
        if mask is None:
            mask = np.ones((B, T), dtype=np.float64)
        x = self.embedding(tokens) + Tensor(_sinusoidal_positions(T, self.embed_dim))
        for block in self.blocks:
            x = block(x, mask)
        # Masked mean pooling over real tokens.
        m = Tensor(mask[:, :, None])
        pooled = (x * m).sum(axis=1) / Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        return self.project(pooled).tanh()
