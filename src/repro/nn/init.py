"""Weight initializers.

The Novelty Estimator's frozen target network ψ⊥ is *orthogonally*
initialized with a large gain (the paper uses 16.0, following the
randomized-prior-functions recipe) so that unvisited sequences produce large,
structured prediction errors.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["orthogonal_", "xavier_uniform_", "normal_", "zeros_"]


def orthogonal_(tensor: Tensor, gain: float = 1.0, rng: np.random.Generator | None = None) -> Tensor:
    """Fill a 2-D tensor with a (semi-)orthogonal matrix scaled by ``gain``."""
    if tensor.data.ndim != 2:
        raise ValueError("orthogonal_ requires a 2-D tensor")
    rng = rng or np.random.default_rng()
    rows, cols = tensor.data.shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Sign correction makes the distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    tensor.data = gain * q[:rows, :cols]
    return tensor


def xavier_uniform_(tensor: Tensor, gain: float = 1.0, rng: np.random.Generator | None = None) -> Tensor:
    """Glorot/Xavier uniform initialization for 2-D weights."""
    if tensor.data.ndim != 2:
        raise ValueError("xavier_uniform_ requires a 2-D tensor")
    rng = rng or np.random.default_rng()
    fan_in, fan_out = tensor.data.shape
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    tensor.data = rng.uniform(-bound, bound, size=tensor.data.shape)
    return tensor


def normal_(tensor: Tensor, std: float = 0.02, rng: np.random.Generator | None = None) -> Tensor:
    rng = rng or np.random.default_rng()
    tensor.data = rng.normal(0.0, std, size=tensor.data.shape)
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    tensor.data = np.zeros_like(tensor.data)
    return tensor
