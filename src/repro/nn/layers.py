"""Feed-forward building blocks: Linear, Embedding, activations, LayerNorm."""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform_
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Linear", "Embedding", "Sequential", "ReLU", "Tanh", "Sigmoid", "LayerNorm"]


class Linear(Module):
    """Affine map ``x @ W + b`` with Xavier-initialized weights."""

    def __init__(
        self, in_features: int, out_features: int, bias: bool = True, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((in_features, out_features)))
        xavier_uniform_(self.weight, rng=rng)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-index → dense-vector lookup with scatter-add gradients."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 0.1, size=(num_embeddings, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"Token index out of range [0, {self.num_embeddings}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self.weight[indices]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def named_parameters(self, prefix: str = ""):
        for i, layer in enumerate(self.layers):
            yield from layer.named_parameters(prefix=f"{prefix}layers.{i}.")


class LayerNorm(Module):
    """Per-feature layer normalization (last axis)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
