"""Recurrent sequence encoders: multi-layer LSTM and vanilla RNN.

Both the Performance Predictor and the Novelty Estimator encode a
transformation-token sequence with a 2-layer LSTM (paper §V: embedding 32).
Batches are right-padded; a per-timestep mask freezes the hidden state after
a sequence's last real token, so the returned encoding is exactly the state
at each sequence's own end.

Two batch paths exist, with different guarantees:

- :meth:`_RecurrentBase.forward` — the autograd path used for training.
  Its padded multi-sequence batches go through flat 2-D GEMMs whose
  blocked summation order depends on the batch size, so a padded batch
  encode is *not* bit-identical to encoding each sequence alone (ULP
  drift). Training tolerates this; it is part of the pinned goldens.
- :meth:`_RecurrentBase.encode_batch` — the inference path. It runs the
  same masked unroll in raw numpy but dispatches every matrix product as
  a stack of per-row ``(1, D) @ (D, K)`` products, which makes the whole
  batch bit-identical to the per-sequence loop. Estimation paths (the
  performance predictor and novelty estimator) use this, so batched
  scoring is exact, not approximately-equal.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["LSTMEncoder", "RNNEncoder", "pad_token_batch"]


def _rowwise_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``(B, D) @ (D, K)`` as a stack of per-row ``(1, D) @ (D, K)`` products.

    A flat 2-D ``x @ w`` lets BLAS pick a blocked kernel whose summation
    order depends on B, so the batched result drifts from the per-row
    products in the last ULP. The stacked 3-D form runs the same
    row-vector kernel as ``x[i:i+1] @ w`` for every row, which keeps
    batched encodes bit-identical to the per-sequence loop.
    """
    return np.matmul(x[:, None, :], w)[:, 0, :]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.sigmoid exactly (same clip bounds, same expression).
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def pad_token_batch(sequences: list[np.ndarray], pad_value: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad integer token sequences into (B, T) tokens + (B, T) float mask."""
    if not sequences:
        raise ValueError("Empty batch")
    lengths = [len(s) for s in sequences]
    if min(lengths) == 0:
        raise ValueError("Sequences must be non-empty")
    T = max(lengths)
    tokens = np.full((len(sequences), T), pad_value, dtype=np.int64)
    mask = np.zeros((len(sequences), T), dtype=np.float64)
    for i, seq in enumerate(sequences):
        tokens[i, : len(seq)] = seq
        mask[i, : len(seq)] = 1.0
    return tokens, mask


class _RecurrentBase(Module):
    """Shared plumbing: embedding, per-layer weights, masked unroll."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        gate_multiple: int = 1,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)

        def glorot(rows: int, cols: int) -> Parameter:
            bound = np.sqrt(6.0 / (rows + cols))
            return Parameter(rng.uniform(-bound, bound, size=(rows, cols)))

        g = gate_multiple
        self.w_x = [glorot(embed_dim if l == 0 else hidden_dim, g * hidden_dim) for l in range(num_layers)]
        self.w_h = [glorot(hidden_dim, g * hidden_dim) for _ in range(num_layers)]
        self.b = [Parameter(np.zeros(g * hidden_dim)) for _ in range(num_layers)]

    def forward(self, tokens: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        """Encode (B, T) token indices into (B, hidden_dim) final states."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens.reshape(1, -1)
        B, T = tokens.shape
        if mask is None:
            mask = np.ones((B, T), dtype=np.float64)
        embedded = self.embedding(tokens)  # (B, T, E)
        return self._unroll(embedded, mask, B, T)

    def _unroll(self, embedded: Tensor, mask: np.ndarray, B: int, T: int) -> Tensor:
        raise NotImplementedError

    def encode_batch(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Encode ragged token sequences in one masked pass.

        Returns a raw ``(B, hidden_dim)`` float array with no autograd
        tape — inference only. Bit-identical to stacking
        ``forward(seq).data`` per sequence: alive timesteps replay the
        reference's mask-1 blend arithmetic verbatim, frozen timesteps
        keep the old state through ``np.where`` (the per-sequence loop
        never computes them at all).
        """
        tokens, mask = pad_token_batch(sequences)
        embedded = self.embedding.weight.data[tokens]  # (B, T, E)
        return self._unroll_exact(embedded, mask)

    def _unroll_exact(self, embedded: np.ndarray, mask: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class LSTMEncoder(_RecurrentBase):
    """Multi-layer LSTM; gates packed as [input, forget, cell, output]."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(vocab_size, embed_dim, hidden_dim, num_layers, gate_multiple=4, seed=seed)
        # Forget-gate bias of 1.0 — the standard trick for gradient flow.
        for b in self.b:
            b.data[hidden_dim : 2 * hidden_dim] = 1.0

    def _unroll(self, embedded: Tensor, mask: np.ndarray, B: int, T: int) -> Tensor:
        H = self.hidden_dim
        h = [Tensor(np.zeros((B, H))) for _ in range(self.num_layers)]
        c = [Tensor(np.zeros((B, H))) for _ in range(self.num_layers)]
        for t in range(T):
            x = embedded[:, t, :]
            m = Tensor(mask[:, t : t + 1])
            for l in range(self.num_layers):
                z = x @ self.w_x[l] + h[l] @ self.w_h[l] + self.b[l]
                i_gate = z[:, 0 * H : 1 * H].sigmoid()
                f_gate = z[:, 1 * H : 2 * H].sigmoid()
                g_gate = z[:, 2 * H : 3 * H].tanh()
                o_gate = z[:, 3 * H : 4 * H].sigmoid()
                c_new = f_gate * c[l] + i_gate * g_gate
                h_new = o_gate * c_new.tanh()
                # Frozen past the sequence end: padded steps keep old state.
                c[l] = m * c_new + (1.0 - m) * c[l]
                h[l] = m * h_new + (1.0 - m) * h[l]
                x = h[l]
        return h[-1]

    def _unroll_exact(self, embedded: np.ndarray, mask: np.ndarray) -> np.ndarray:
        H = self.hidden_dim
        B, T, _ = embedded.shape
        h = [np.zeros((B, H)) for _ in range(self.num_layers)]
        c = [np.zeros((B, H)) for _ in range(self.num_layers)]
        for t in range(T):
            x = embedded[:, t, :]
            m = mask[:, t : t + 1]
            alive = m > 0.0
            for l in range(self.num_layers):
                z = (
                    _rowwise_matmul(x, self.w_x[l].data)
                    + _rowwise_matmul(h[l], self.w_h[l].data)
                ) + self.b[l].data
                i_gate = _sigmoid(z[:, 0 * H : 1 * H])
                f_gate = _sigmoid(z[:, 1 * H : 2 * H])
                g_gate = np.tanh(z[:, 2 * H : 3 * H])
                o_gate = _sigmoid(z[:, 3 * H : 4 * H])
                c_new = f_gate * c[l] + i_gate * g_gate
                h_new = o_gate * np.tanh(c_new)
                c[l] = np.where(alive, m * c_new + (1.0 - m) * c[l], c[l])
                h[l] = np.where(alive, m * h_new + (1.0 - m) * h[l], h[l])
                x = h[l]
        return h[-1]


class RNNEncoder(_RecurrentBase):
    """Multi-layer Elman RNN with tanh recurrence (Fig 8 ablation)."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(vocab_size, embed_dim, hidden_dim, num_layers, gate_multiple=1, seed=seed)

    def _unroll(self, embedded: Tensor, mask: np.ndarray, B: int, T: int) -> Tensor:
        h = [Tensor(np.zeros((B, self.hidden_dim))) for _ in range(self.num_layers)]
        for t in range(T):
            x = embedded[:, t, :]
            m = Tensor(mask[:, t : t + 1])
            for l in range(self.num_layers):
                h_new = (x @ self.w_x[l] + h[l] @ self.w_h[l] + self.b[l]).tanh()
                h[l] = m * h_new + (1.0 - m) * h[l]
                x = h[l]
        return h[-1]

    def _unroll_exact(self, embedded: np.ndarray, mask: np.ndarray) -> np.ndarray:
        B, T, _ = embedded.shape
        h = [np.zeros((B, self.hidden_dim)) for _ in range(self.num_layers)]
        for t in range(T):
            x = embedded[:, t, :]
            m = mask[:, t : t + 1]
            alive = m > 0.0
            for l in range(self.num_layers):
                h_new = np.tanh(
                    (
                        _rowwise_matmul(x, self.w_x[l].data)
                        + _rowwise_matmul(h[l], self.w_h[l].data)
                    )
                    + self.b[l].data
                )
                h[l] = np.where(alive, m * h_new + (1.0 - m) * h[l], h[l])
                x = h[l]
        return h[-1]
