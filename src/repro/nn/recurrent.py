"""Recurrent sequence encoders: multi-layer LSTM and vanilla RNN.

Both the Performance Predictor and the Novelty Estimator encode a
transformation-token sequence with a 2-layer LSTM (paper §V: embedding 32).
Batches are right-padded; a per-timestep mask freezes the hidden state after
a sequence's last real token, so the returned encoding is exactly the state
at each sequence's own end.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["LSTMEncoder", "RNNEncoder", "pad_token_batch"]


def pad_token_batch(sequences: list[np.ndarray], pad_value: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad integer token sequences into (B, T) tokens + (B, T) float mask."""
    if not sequences:
        raise ValueError("Empty batch")
    lengths = [len(s) for s in sequences]
    if min(lengths) == 0:
        raise ValueError("Sequences must be non-empty")
    T = max(lengths)
    tokens = np.full((len(sequences), T), pad_value, dtype=np.int64)
    mask = np.zeros((len(sequences), T), dtype=np.float64)
    for i, seq in enumerate(sequences):
        tokens[i, : len(seq)] = seq
        mask[i, : len(seq)] = 1.0
    return tokens, mask


class _RecurrentBase(Module):
    """Shared plumbing: embedding, per-layer weights, masked unroll."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        gate_multiple: int = 1,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)

        def glorot(rows: int, cols: int) -> Parameter:
            bound = np.sqrt(6.0 / (rows + cols))
            return Parameter(rng.uniform(-bound, bound, size=(rows, cols)))

        g = gate_multiple
        self.w_x = [glorot(embed_dim if l == 0 else hidden_dim, g * hidden_dim) for l in range(num_layers)]
        self.w_h = [glorot(hidden_dim, g * hidden_dim) for _ in range(num_layers)]
        self.b = [Parameter(np.zeros(g * hidden_dim)) for _ in range(num_layers)]

    def forward(self, tokens: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        """Encode (B, T) token indices into (B, hidden_dim) final states."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens.reshape(1, -1)
        B, T = tokens.shape
        if mask is None:
            mask = np.ones((B, T), dtype=np.float64)
        embedded = self.embedding(tokens)  # (B, T, E)
        return self._unroll(embedded, mask, B, T)

    def _unroll(self, embedded: Tensor, mask: np.ndarray, B: int, T: int) -> Tensor:
        raise NotImplementedError


class LSTMEncoder(_RecurrentBase):
    """Multi-layer LSTM; gates packed as [input, forget, cell, output]."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(vocab_size, embed_dim, hidden_dim, num_layers, gate_multiple=4, seed=seed)
        # Forget-gate bias of 1.0 — the standard trick for gradient flow.
        for b in self.b:
            b.data[hidden_dim : 2 * hidden_dim] = 1.0

    def _unroll(self, embedded: Tensor, mask: np.ndarray, B: int, T: int) -> Tensor:
        H = self.hidden_dim
        h = [Tensor(np.zeros((B, H))) for _ in range(self.num_layers)]
        c = [Tensor(np.zeros((B, H))) for _ in range(self.num_layers)]
        for t in range(T):
            x = embedded[:, t, :]
            m = Tensor(mask[:, t : t + 1])
            for l in range(self.num_layers):
                z = x @ self.w_x[l] + h[l] @ self.w_h[l] + self.b[l]
                i_gate = z[:, 0 * H : 1 * H].sigmoid()
                f_gate = z[:, 1 * H : 2 * H].sigmoid()
                g_gate = z[:, 2 * H : 3 * H].tanh()
                o_gate = z[:, 3 * H : 4 * H].sigmoid()
                c_new = f_gate * c[l] + i_gate * g_gate
                h_new = o_gate * c_new.tanh()
                # Frozen past the sequence end: padded steps keep old state.
                c[l] = m * c_new + (1.0 - m) * c[l]
                h[l] = m * h_new + (1.0 - m) * h[l]
                x = h[l]
        return h[-1]


class RNNEncoder(_RecurrentBase):
    """Multi-layer Elman RNN with tanh recurrence (Fig 8 ablation)."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(vocab_size, embed_dim, hidden_dim, num_layers, gate_multiple=1, seed=seed)

    def _unroll(self, embedded: Tensor, mask: np.ndarray, B: int, T: int) -> Tensor:
        h = [Tensor(np.zeros((B, self.hidden_dim))) for _ in range(self.num_layers)]
        for t in range(T):
            x = embedded[:, t, :]
            m = Tensor(mask[:, t : t + 1])
            for l in range(self.num_layers):
                h_new = (x @ self.w_x[l] + h[l] @ self.w_h[l] + self.b[l]).tanh()
                h[l] = m * h_new + (1.0 - m) * h[l]
                x = h[l]
        return h[-1]
