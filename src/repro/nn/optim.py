"""Gradient-descent optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, parameters, lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("No parameters to optimize")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(_Optimizer):
    """Adam with bias correction and optional decoupled weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 5.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def _clip_gradients(self) -> None:
        if self.max_grad_norm is None:
            return
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float(np.sum(p.grad**2))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm:
            scale = self.max_grad_norm / (norm + 1e-12)
            for p in self.parameters:
                if p.grad is not None:
                    p.grad *= scale

    def step(self) -> None:
        self._clip_gradients()
        self._t += 1
        b1, b2 = self.betas
        correction1 = 1.0 - b1**self._t
        correction2 = 1.0 - b2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay > 0:
                p.data *= 1.0 - self.lr * self.weight_decay
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
