"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small engine: every operation records its inputs and a local
backward closure; :meth:`Tensor.backward` runs the closures in reverse
topological order. Broadcasting is handled by summing gradients back to the
operand's shape. This is the full set of primitives the paper's models need
(LSTM/RNN/Transformer encoders, feed-forward heads, actor-critic losses).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "concat", "stack", "softmax", "log_softmax", "no_grad"]

_GRAD_ENABLED = True


@contextmanager
def no_grad():
    """Disable graph construction inside the block (inference fast path).

    Every forward value is computed by exactly the same numpy expressions —
    only the per-op parent bookkeeping and backward closures are skipped —
    so outputs are bit-identical to a recording forward pass; calling
    ``backward()`` on a tensor produced inside the block raises instead of
    silently yielding zero gradients."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient and a backward graph edge."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor(data)
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return self._result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return self._result(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return self._result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data**2))

        return self._result(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._result(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ g)

        return self._result(out_data, (self, other), backward)

    # -- nonlinearities --------------------------------------------------------

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return self._result(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._result(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (self.data > 0))

        return self._result(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._result(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-12))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / np.maximum(self.data, 1e-12))

        return self._result(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # -- reductions and shaping -------------------------------------------------

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._result(out_data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g).reshape(self.data.shape))

        return self._result(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g).T)

        return self._result(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(np.asarray(g), axis1, axis2))

        return self._result(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, g)
                self._accumulate(full)

        return self._result(out_data, (self,), backward)

    # -- autodiff driver ---------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("Called backward on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        g = np.asarray(g)
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                t._accumulate(g[tuple(index)])

    return Tensor._result(out_data, tensors, backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        g = np.asarray(g)
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(g, i, axis=axis))

    return Tensor._result(out_data, tensors, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax (max is detached — constant shift)."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()
