"""Neural-network substrate (PyTorch stand-in) built on numpy.

Provides everything the paper's evaluation components need:

- :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff over numpy arrays
- :mod:`~repro.nn.layers` — Linear, Embedding, Sequential, LayerNorm
- :mod:`~repro.nn.recurrent` — LSTM and RNN sequence encoders (masked batches)
- :mod:`~repro.nn.attention` — a minimal Transformer encoder (Fig 8 ablation)
- :mod:`~repro.nn.optim` — SGD and Adam
- :mod:`~repro.nn.init` — orthogonal / Xavier initializers (the Novelty
  Estimator's frozen target network is orthogonally initialized, §III-C)
"""

from repro.nn.attention import TransformerEncoder
from repro.nn.init import orthogonal_, xavier_uniform_
from repro.nn.layers import Embedding, LayerNorm, Linear, ReLU, Sequential, Tanh
from repro.nn.losses import mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.recurrent import LSTMEncoder, RNNEncoder
from repro.nn.tensor import Tensor, concat, log_softmax, softmax, stack

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "ReLU",
    "Tanh",
    "LayerNorm",
    "LSTMEncoder",
    "RNNEncoder",
    "TransformerEncoder",
    "SGD",
    "Adam",
    "mse_loss",
    "orthogonal_",
    "xavier_uniform_",
]
