"""Synthetic tabular-task generators with interaction-structured targets.

Every generator draws a matrix of heterogeneous base features and builds the
target from a latent score composed of pairwise/triple interactions drawn
from the same algebra as FastFT's operation set (products, ratios, logs,
squares). A method that discovers the right feature crossings can therefore
linearize the problem — exactly the premise of the paper's search task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatentInteraction", "make_classification", "make_regression", "make_detection"]


@dataclass(frozen=True)
class LatentInteraction:
    """One term of the hidden score: ``weight * form(x_i, x_j)``."""

    form: str
    i: int
    j: int
    weight: float

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        a, b = X[:, self.i], X[:, self.j]
        if self.form == "product":
            value = a * b
        elif self.form == "ratio":
            value = a / (np.abs(b) + 1.0)
        elif self.form == "log_product":
            value = np.log1p(np.abs(a)) * b
        elif self.form == "square_sum":
            value = (a + b) ** 2
        elif self.form == "diff_square":
            value = (a - b) ** 2
        else:
            raise ValueError(f"Unknown interaction form {self.form!r}")
        return self.weight * value


_FORMS = ("product", "ratio", "log_product", "square_sum", "diff_square")


def _base_features(rng: np.random.Generator, n_samples: int, n_features: int) -> np.ndarray:
    """Heterogeneous columns: normal, lognormal, uniform, integer-ish."""
    X = np.empty((n_samples, n_features))
    for j in range(n_features):
        kind = j % 4
        if kind == 0:
            X[:, j] = rng.normal(0.0, 1.0, n_samples)
        elif kind == 1:
            X[:, j] = rng.lognormal(0.0, 0.5, n_samples) - 1.0
        elif kind == 2:
            X[:, j] = rng.uniform(-2.0, 2.0, n_samples)
        else:
            X[:, j] = rng.integers(0, 6, n_samples).astype(float) - 2.5
    return X


def _latent_terms(
    rng: np.random.Generator, n_features: int, n_informative: int, n_terms: int
) -> list[LatentInteraction]:
    informative = rng.choice(n_features, size=min(n_informative, n_features), replace=False)
    terms = []
    for _ in range(n_terms):
        i, j = rng.choice(informative, size=2, replace=len(informative) < 2)
        form = _FORMS[int(rng.integers(0, len(_FORMS)))]
        weight = float(rng.uniform(0.5, 1.5)) * (1 if rng.random() < 0.5 else -1)
        terms.append(LatentInteraction(form, int(i), int(j), weight))
    return terms


def _latent_score(X: np.ndarray, terms: list[LatentInteraction]) -> np.ndarray:
    score = np.zeros(X.shape[0])
    for term in terms:
        value = term.evaluate(X)
        std = value.std()
        score += value / (std if std > 0 else 1.0)
    return score


def make_classification(
    n_samples: int,
    n_features: int,
    n_classes: int = 2,
    n_informative: int | None = None,
    n_terms: int | None = None,
    noise: float = 0.3,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Classes are quantile bins of a noisy interaction score (balanced)."""
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    rng = np.random.default_rng(seed)
    n_informative = n_informative or max(2, n_features // 2)
    n_terms = n_terms or max(2, n_informative // 2)
    X = _base_features(rng, n_samples, n_features)
    score = _latent_score(X, _latent_terms(rng, n_features, n_informative, n_terms))
    score += rng.normal(0.0, noise * max(score.std(), 1e-9), n_samples)
    edges = np.quantile(score, np.linspace(0, 1, n_classes + 1)[1:-1])
    y = np.searchsorted(edges, score)
    return X, y.astype(np.int64)


def make_regression(
    n_samples: int,
    n_features: int,
    n_informative: int | None = None,
    n_terms: int | None = None,
    noise: float = 0.2,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Target is the interaction score plus Gaussian noise, rescaled to ~N(0,1)."""
    rng = np.random.default_rng(seed)
    n_informative = n_informative or max(2, n_features // 2)
    n_terms = n_terms or max(2, n_informative // 2)
    X = _base_features(rng, n_samples, n_features)
    score = _latent_score(X, _latent_terms(rng, n_features, n_informative, n_terms))
    y = score + rng.normal(0.0, noise * max(score.std(), 1e-9), n_samples)
    std = y.std()
    return X, (y - y.mean()) / (std if std > 0 else 1.0)


def make_detection(
    n_samples: int,
    n_features: int,
    contamination: float = 0.08,
    n_informative: int | None = None,
    noise: float = 0.45,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Anomaly detection: inliers satisfy a hidden interaction constraint.

    Inliers obey ``x_0 ≈ mix of interactions of other columns``; anomalies
    violate it by a sampled offset. The ratio/difference features FastFT can
    construct make the violation linearly separable.
    """
    if not 0.0 < contamination < 0.5:
        raise ValueError("contamination must be in (0, 0.5)")
    rng = np.random.default_rng(seed)
    n_informative = n_informative or max(2, n_features // 2)
    X = _base_features(rng, n_samples, n_features)
    terms = _latent_terms(rng, n_features, n_informative, max(1, n_informative // 2))
    # Keep x_0 tied to the constraint: overwrite it with the score + noise.
    score = _latent_score(X[:, 1:], [LatentInteraction(t.form, t.i % (n_features - 1), t.j % (n_features - 1), t.weight) for t in terms]) if n_features > 1 else np.zeros(n_samples)
    X[:, 0] = score + rng.normal(0.0, noise, n_samples)
    y = (rng.random(n_samples) < contamination).astype(np.int64)
    offsets = rng.choice([-1.0, 1.0], size=n_samples) * rng.uniform(1.0, 2.2, n_samples)
    X[y == 1, 0] += offsets[y == 1] * max(score.std(), 1.0) * (0.5 + noise)
    return X, y
