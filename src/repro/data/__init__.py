"""Dataset substrate: seeded synthetic equivalents of the paper's 23 datasets.

The original evaluation uses public tabular datasets (Kaggle, UCI, LibSVM,
OpenML, AutoML) that are unavailable offline. Each named dataset here is a
deterministic generator matching the paper's task type and (scaled) shape,
whose target depends on *hidden interactions* of the observed features —
products, ratios, logs — which is precisely the structure feature
transformation methods compete to recover. See DESIGN.md §2 for the
substitution argument.
"""

from repro.data.registry import DATASET_SPECS, Dataset, dataset_names, load_dataset
from repro.data.synthesis import make_classification, make_detection, make_regression

__all__ = [
    "Dataset",
    "DATASET_SPECS",
    "dataset_names",
    "load_dataset",
    "make_classification",
    "make_regression",
    "make_detection",
]
