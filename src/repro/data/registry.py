"""Registry of the paper's 23 evaluation datasets (Table I), synthesized.

Each entry records the paper's source, task type and original shape, and maps
to a seeded generator. ``scale`` shrinks the sample count (the paper's largest
datasets — Albert at 425k rows — are impractical for a laptop reproduction;
the *relative* ordering across methods is what the benchmarks reproduce).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthesis import make_classification, make_detection, make_regression

__all__ = ["DatasetSpec", "Dataset", "DATASET_SPECS", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table I dataset."""

    name: str
    source: str
    task: str  # classification | regression | detection
    n_samples: int
    n_features: int
    n_classes: int = 2
    feature_names: tuple[str, ...] | None = None


@dataclass
class Dataset:
    """A materialized dataset ready for the FastFT pipeline."""

    name: str
    X: np.ndarray
    y: np.ndarray
    task: str
    feature_names: list[str] = field(default_factory=list)
    source: str = ""

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]


_CARDIO_NAMES = (
    "Age", "Height", "Weight", "SBP", "DBP", "Cholesterol",
    "Glucose", "Smoke", "Alcohol", "Active", "BMI", "Pulse",
)
_WINE_NAMES = (
    "fixed acidity", "volatile acidity", "citric acid", "residual sugar",
    "chlorides", "free sulfur dioxide", "total sulfur dioxide", "density",
    "pH", "sulphates", "alcohol", "quality proxy",
)
_PIMA_NAMES = (
    "Pregnancies", "Glucose", "BloodPressure", "SkinThickness",
    "Insulin", "BMI", "DiabetesPedigree", "Age",
)

_SPECS: list[DatasetSpec] = [
    DatasetSpec("alzheimers", "Kaggle", "classification", 2149, 33, 2),
    DatasetSpec("cardiovascular", "Kaggle", "classification", 5000, 12, 2, _CARDIO_NAMES),
    DatasetSpec("fetal_health", "Kaggle", "classification", 2126, 22, 3),
    DatasetSpec("pima_indian", "UCIrvine", "classification", 768, 8, 2, _PIMA_NAMES),
    DatasetSpec("svmguide3", "LibSVM", "classification", 1243, 21, 2),
    DatasetSpec("amazon_employee", "Kaggle", "classification", 32769, 9, 2),
    DatasetSpec("german_credit", "UCIrvine", "classification", 1001, 24, 2),
    DatasetSpec("wine_quality_red", "UCIrvine", "classification", 999, 12, 4, _WINE_NAMES),
    DatasetSpec("wine_quality_white", "UCIrvine", "classification", 4898, 12, 4, _WINE_NAMES),
    DatasetSpec("jannis", "AutoML", "classification", 83733, 55, 4),
    DatasetSpec("adult", "AutoML", "classification", 34190, 25, 2),
    DatasetSpec("volkert", "AutoML", "classification", 58310, 181, 10),
    DatasetSpec("albert", "AutoML", "classification", 425240, 79, 2),
    DatasetSpec("openml_618", "OpenML", "regression", 1000, 50),
    DatasetSpec("openml_589", "OpenML", "regression", 1000, 25),
    DatasetSpec("openml_616", "OpenML", "regression", 500, 50),
    DatasetSpec("openml_607", "OpenML", "regression", 1000, 50),
    DatasetSpec("openml_620", "OpenML", "regression", 1000, 25),
    DatasetSpec("openml_637", "OpenML", "regression", 500, 50),
    DatasetSpec("openml_586", "OpenML", "regression", 1000, 25),
    DatasetSpec("wbc", "UCIrvine", "detection", 278, 30),
    DatasetSpec("mammography", "OpenML", "detection", 11183, 6),
    DatasetSpec("thyroid", "UCIrvine", "detection", 3772, 6),
    DatasetSpec("smtp", "UCIrvine", "detection", 95156, 3),
]

DATASET_SPECS: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}


def dataset_names(task: str | None = None) -> list[str]:
    """All registered dataset names, optionally filtered by task type."""
    return [s.name for s in _SPECS if task is None or s.task == task]


def _stable_seed(name: str, seed: int) -> int:
    """Deterministic per-dataset seed independent of Python's hash salt."""
    digest = 0
    for ch in name:
        digest = (digest * 131 + ord(ch)) % (2**31 - 1)
    return (digest + 7919 * seed) % (2**31 - 1)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    max_samples: int | None = 20000,
) -> Dataset:
    """Materialize a named dataset.

    Parameters
    ----------
    scale:
        Multiplier on the paper's sample count (feature count is preserved).
    max_samples:
        Hard cap after scaling, so the largest AutoML datasets stay tractable;
        pass ``None`` to disable.
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"Unknown dataset {name!r}. Available: {sorted(DATASET_SPECS)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = DATASET_SPECS[name]
    n = max(60, int(spec.n_samples * scale))
    if max_samples is not None:
        n = min(n, max_samples)
    gen_seed = _stable_seed(name, seed)

    if spec.task == "classification":
        X, y = make_classification(
            n, spec.n_features, n_classes=spec.n_classes, seed=gen_seed
        )
    elif spec.task == "regression":
        X, y = make_regression(n, spec.n_features, seed=gen_seed)
    elif spec.task == "detection":
        X, y = make_detection(n, spec.n_features, seed=gen_seed)
    else:  # pragma: no cover - specs are static
        raise ValueError(f"Bad task in spec: {spec.task}")

    names = (
        list(spec.feature_names[: spec.n_features])
        if spec.feature_names
        else [f"f{j + 1}" for j in range(spec.n_features)]
    )
    while len(names) < spec.n_features:
        names.append(f"f{len(names) + 1}")
    return Dataset(name=name, X=X, y=y, task=spec.task, feature_names=names, source=spec.source)
