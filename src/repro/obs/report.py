"""Render recorded traces into the ``repro trace`` terminal report.

Three sections, mirroring what the paper reports about runtime:

1. **Time breakdown** — the Table-II buckets (optimization / estimation /
   evaluation) summed from bucket spans, with share-of-total percentages.
   Residual spans emitted at ``on_finish`` make these totals equal the
   run's ``result.time`` exactly, so this table *is* Table II for the
   recorded run.
2. **Span tree** — spans aggregated by their path in the span hierarchy
   (``search/episode/step/evaluation`` …), with call counts and total /
   mean durations, indented like a profiler's call tree.
3. **Metrics** — counters, gauges, and histogram summaries (count, mean,
   p50/p90/p99, max) restored from the trace's summary records.

Multiple trace files (sweep workers, serving replicas) are reported
side-by-side for spans and *merged* for metrics — counters and
histograms sum exactly across processes.
"""

from __future__ import annotations

from repro.obs.trace import BUCKET_SPAN_NAMES, TraceData, load_trace, merge_trace_metrics

__all__ = ["render_trace_report", "render_bucket_table", "render_span_tree"]

_INDENT = "  "


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:8.1f}s"
    if seconds >= 0.1:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.3f}ms"


def render_bucket_table(traces: list[TraceData]) -> str:
    """The Table-II style breakdown, summed over all given traces."""
    totals = dict.fromkeys(BUCKET_SPAN_NAMES, 0.0)
    for trace in traces:
        for name, value in trace.bucket_totals().items():
            totals[name] += value
    grand = sum(totals.values())
    lines = ["Time breakdown (Table II buckets)", "-" * 48]
    for name in BUCKET_SPAN_NAMES:
        share = 100.0 * totals[name] / grand if grand else 0.0
        lines.append(f"  {name:<14} {_fmt_seconds(totals[name])}   {share:5.1f}%")
    lines.append(f"  {'total':<14} {_fmt_seconds(grand)}   100.0%")
    return "\n".join(lines)


def _span_paths(trace: TraceData) -> dict[tuple, list[float]]:
    """Aggregate span durations by hierarchy path (root → leaf names)."""
    by_id = {span["id"]: span for span in trace.spans}
    paths: dict[tuple, list[float]] = {}

    def path_of(span: dict) -> tuple:
        names: list[str] = []
        seen: set[int] = set()
        cursor = span
        while cursor is not None and cursor["id"] not in seen:
            seen.add(cursor["id"])
            names.append(cursor["name"])
            parent = cursor.get("parent")
            # Parents evicted from a bounded ring are simply absent; the
            # span then roots at its deepest still-known ancestor.
            cursor = by_id.get(parent) if parent is not None else None
        return tuple(reversed(names))

    for span in trace.spans:
        paths.setdefault(path_of(span), []).append(span["dur"])
    return paths


def render_span_tree(trace: TraceData) -> str:
    """Profiler-style call tree: count, total, and mean per span path."""
    paths = _span_paths(trace)
    if not paths:
        return "  (no spans recorded)"
    lines = [f"  {'span':<44} {'count':>6} {'total':>10} {'mean':>10}"]
    for path in sorted(paths):
        durations = paths[path]
        label = _INDENT * (len(path) - 1) + path[-1]
        total = sum(durations)
        mean = total / len(durations)
        lines.append(
            f"  {label:<44} {len(durations):>6} {_fmt_seconds(total):>10}"
            f" {_fmt_seconds(mean):>10}"
        )
    return "\n".join(lines)


def _render_metrics(traces: list[TraceData]) -> str:
    merged = merge_trace_metrics(traces)
    if not len(merged):
        return "  (no metrics recorded)"
    lines: list[str] = []
    for metric in merged:
        label = metric.name
        if metric.labels:
            label += "{" + ",".join(f"{k}={v}" for k, v in sorted(metric.labels.items())) + "}"
        if metric.kind == "histogram":
            lines.append(
                f"  {label:<34} count={metric.count:<7} mean={metric.mean:.6g} "
                f"p50={metric.quantile(0.5):.6g} p90={metric.quantile(0.9):.6g} "
                f"p99={metric.quantile(0.99):.6g} max={metric.max:.6g}"
            )
        else:
            lines.append(f"  {label:<34} {metric.kind}={metric.value:g}")
    return "\n".join(lines)


def _render_header(trace: TraceData) -> str:
    meta = trace.meta
    bits = [
        f"repro {meta.get('repro_version', '?')}",
        f"numpy {meta.get('numpy_version', '?')}",
        f"python {meta.get('python_version', '?')}",
        f"n_cores={meta.get('n_cores', '?')}",
    ]
    lines = [f"{trace.path}", f"  {' | '.join(bits)}"]
    for ann in trace.annotations:
        facts = ", ".join(f"{k}={v}" for k, v in ann.items() if k != "type")
        lines.append(f"  {facts}")
    if trace.elapsed is not None:
        lines.append(f"  trace elapsed: {trace.elapsed:.3f}s")
    return "\n".join(lines)


def render_trace_report(paths: list[str]) -> str:
    """Full ``repro trace`` report over one or more trace files."""
    traces = [load_trace(p) for p in paths]
    sections: list[str] = ["=== repro trace report ===", ""]
    for trace in traces:
        sections.append(_render_header(trace))
    sections += ["", render_bucket_table(traces), ""]
    for trace in traces:
        if len(traces) > 1:
            sections.append(f"Span tree — {trace.path}")
        else:
            sections.append("Span tree")
        sections.append("-" * 48)
        sections.append(render_span_tree(trace))
        sections.append("")
    merged_note = " (merged over all traces)" if len(traces) > 1 else ""
    sections.append(f"Metrics{merged_note}")
    sections.append("-" * 48)
    sections.append(_render_metrics(traces))
    sections.append("")
    return "\n".join(sections)
