"""Run metadata: who/where/what produced a trace or a benchmark report.

Perf numbers are only interpretable when the producing environment is
attached — the BENCH trajectory across PRs was uninterpretable without
knowing the core count and numpy build behind each report. Every trace
header line and every ``benchmarks/reports/*.txt`` writer embeds this.
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np

from repro._version import __version__

__all__ = ["run_metadata", "run_metadata_header"]


def run_metadata() -> dict:
    """Environment facts attached to traces and reports (JSON-safe)."""
    return {
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "n_cores": os.cpu_count() or 1,
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


def run_metadata_header() -> str:
    """One ``#``-prefixed line for the top of plain-text reports."""
    meta = run_metadata()
    return (
        f"# repro {meta['repro_version']} | numpy {meta['numpy_version']} | "
        f"python {meta['python_version']} | {meta['platform']} | "
        f"n_cores={meta['n_cores']}"
    )
