"""``repro.obs`` — dependency-free observability: tracing, metrics, reports.

- :mod:`repro.obs.trace` — :class:`Tracer` (nested spans + JSONL
  streaming) and :class:`TracingCallback` (attach to a search via the
  callback protocol). Off by default; never perturbs the trajectory.
- :mod:`repro.obs.metrics` — counters / gauges / histograms and the
  Prometheus text renderer behind ``GET /metrics``.
- :mod:`repro.obs.report` — the ``repro trace`` terminal report
  (Table-II bucket breakdown, span tree, histogram summaries).
- :mod:`repro.obs.runmeta` — environment header attached to traces and
  benchmark reports.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import render_trace_report
from repro.obs.runmeta import run_metadata, run_metadata_header
from repro.obs.trace import (
    BUCKET_SPAN_NAMES,
    TRACE_SCHEMA_VERSION,
    TraceData,
    Tracer,
    TracingCallback,
    load_trace,
    merge_trace_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "PROMETHEUS_CONTENT_TYPE",
    "Tracer",
    "TracingCallback",
    "TraceData",
    "TRACE_SCHEMA_VERSION",
    "BUCKET_SPAN_NAMES",
    "load_trace",
    "merge_trace_metrics",
    "render_trace_report",
    "run_metadata",
    "run_metadata_header",
]
