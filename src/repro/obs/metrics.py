"""Metric primitives: counters, gauges, histograms, and a Prometheus view.

The observability layer (``repro.obs``) is dependency-free on purpose —
these are the minimal, thread-safe primitives the tracer, the serving
stack and the benchmarks share:

- :class:`Counter` — monotonically increasing count (requests served,
  evaluations landed, cache hits). Rendered as ``<name>_total``.
- :class:`Gauge` — last-written value (queue depth, best score so far).
- :class:`Histogram` — fixed-bucket distribution with exact count / sum /
  min / max and interpolated quantiles. Buckets default to a log-spaced
  latency ladder (microseconds to a minute), the standard shape for
  request and evaluation timings; pass explicit ``bounds`` for anything
  else (batch sizes, feature counts).
- :class:`MetricsRegistry` — named get-or-create home for the above, with
  label support, merging (for multi-process aggregation) and a
  Prometheus text-format renderer (``GET /metrics``).

Quantiles are estimated by linear interpolation inside the bucket that
contains the requested rank, so the error is bounded by the width of that
bucket; ``count``/``sum``/``min``/``max`` are exact. This is the same
trade every fixed-bucket system (Prometheus histograms included) makes,
and it keeps ``observe()`` at O(log buckets) with O(buckets) memory —
cheap enough for the search loop's ≤5 % overhead budget.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "PROMETHEUS_CONTENT_TYPE",
]

# Content type of the Prometheus text exposition format, served by
# InferenceServer's GET /metrics.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Log-spaced seconds ladder: 10 µs .. 60 s, roughly 3 buckets per decade.
DEFAULT_LATENCY_BOUNDS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_label_suffix(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """Monotonic counter. ``inc`` with a negative amount is an error."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.inc amount must be >= 0")
        with self._lock:
            self._value += amount

    def merge(self, other: "Counter") -> None:
        with self._lock:
            self._value += other._value

    def summary(self) -> dict:
        return {"value": self._value}

    def load_summary(self, payload: dict) -> None:
        self._value = float(payload["value"])


class Gauge:
    """Last-written value; ``set``/``add`` are both allowed."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    def merge(self, other: "Gauge") -> None:
        # Merging process-local gauges has no universal semantics; "last
        # writer wins" matches how a scrape of any single process behaves.
        with self._lock:
            self._value = other._value

    def summary(self) -> dict:
        return {"value": self._value}

    def load_summary(self, payload: dict) -> None:
        self._value = float(payload["value"])


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    ``bounds`` are the *upper* edges of the finite buckets (ascending);
    one implicit overflow bucket catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: tuple | list | None = None,
        labels: dict | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        bounds = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reading -----------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile; error bounded by the containing bucket.

        The exact ``min``/``max`` clamp the first and last occupied
        buckets, so single-bucket distributions still come back sane.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for idx, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lo = self.bounds[idx - 1] if idx > 0 else 0.0
            hi = self.bounds[idx] if idx < len(self.bounds) else self._max
            # Clamp the interpolation window to the observed range.
            lo = max(lo, self._min) if cumulative == 0 else lo
            hi = min(hi, self._max)
            if rank <= cumulative + bucket_count:
                frac = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cumulative += bucket_count
        return self._max

    def summary(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "bounds": list(self.bounds),
            "counts": list(self._counts),
        }

    def load_summary(self, payload: dict) -> None:
        """Restore recorded state from a :meth:`summary` payload (JSONL)."""
        if list(payload["bounds"]) != list(self.bounds):
            raise ValueError(
                f"histogram {self.name!r}: bounds mismatch on load "
                f"({payload['bounds']} != {list(self.bounds)})"
            )
        self._counts = [int(c) for c in payload["counts"]]
        self._count = int(payload["count"])
        self._sum = float(payload["sum"])
        self._min = float(payload["min"]) if self._count else float("inf")
        self._max = float(payload["max"]) if self._count else float("-inf")

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r}: {len(self.bounds)} vs {len(other.bounds)} edges)"
            )
        with self._lock:
            for i, c in enumerate(other._counts):
                self._counts[i] += c
            self._count += other._count
            self._sum += other._sum
            if other._count:
                self._min = min(self._min, other._min)
                self._max = max(self._max, other._max)


class MetricsRegistry:
    """Named get-or-create home for metrics, with labels and merging."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: dict | None) -> tuple:
        return (name, tuple(sorted((labels or {}).items())))

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, labels=labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple | list | None = None,
        labels: dict | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, bounds=bounds)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: (m.name, sorted(m.labels.items()))))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, labels: dict | None = None):
        return self._metrics.get(self._key(name, labels))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (summing counters/histograms)."""
        for metric in other:
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.help, metric.labels).merge(metric)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, metric.help, metric.labels).merge(metric)
            elif isinstance(metric, Histogram):
                self.histogram(
                    metric.name, metric.help, bounds=metric.bounds, labels=metric.labels
                ).merge(metric)

    # -- renderers ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """``{rendered_name: summary_dict}`` for JSON endpoints and traces."""
        out = {}
        for metric in self:
            key = metric.name + _format_label_suffix(metric.labels)
            out[key] = {"kind": metric.kind, **metric.summary()}
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        Counters render as ``<name>_total``; histograms render cumulative
        ``_bucket{le=...}`` series plus ``_sum``/``_count``, exactly the
        shape ``prometheus`` scrapes expect.
        """
        lines: list[str] = []
        seen_headers: set[str] = set()

        def header(name: str, kind: str, help_text: str) -> None:
            if name in seen_headers:
                return
            seen_headers.add(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for metric in self:
            suffix = _format_label_suffix(metric.labels)
            if isinstance(metric, Counter):
                name = f"{metric.name}_total"
                header(name, "counter", metric.help)
                lines.append(f"{name}{suffix} {metric.value:g}")
            elif isinstance(metric, Gauge):
                header(metric.name, "gauge", metric.help)
                lines.append(f"{metric.name}{suffix} {metric.value:g}")
            elif isinstance(metric, Histogram):
                header(metric.name, "histogram", metric.help)
                cumulative = 0
                for bound, count in zip(metric.bounds, metric._counts):
                    cumulative += count
                    le_labels = dict(metric.labels, le=f"{bound:g}")
                    lines.append(
                        f"{metric.name}_bucket{_format_label_suffix(le_labels)} {cumulative}"
                    )
                le_labels = dict(metric.labels, le="+Inf")
                lines.append(
                    f"{metric.name}_bucket{_format_label_suffix(le_labels)} {metric.count}"
                )
                lines.append(f"{metric.name}_sum{suffix} {metric.sum:g}")
                lines.append(f"{metric.name}_count{suffix} {metric.count}")
        return "\n".join(lines) + "\n"
