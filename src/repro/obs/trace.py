"""Structured tracing: nested spans + metrics, streamed to JSONL.

A :class:`Tracer` records what a run *did* and where its time went:

- **spans** — named, attributed time intervals forming a tree (``search``
  → ``episode`` → ``step`` → Table-II buckets). Spans stream to a JSONL
  file the moment they finish, so memory stays bounded no matter how long
  the run is (an in-memory ring keeps the most recent ``max_spans`` for
  programmatic inspection).
- **metrics** — counters/gauges/histograms from :mod:`repro.obs.metrics`,
  summarized into the trace on :meth:`close`.

The trace file is self-describing: line 1 is a ``meta`` record carrying
the schema version and the producing environment
(:func:`repro.obs.runmeta.run_metadata`), followed by ``span`` records in
completion order, optional ``annotation`` records, and one summary record
per metric at close. :func:`load_trace` reads it all back;
``repro trace <run.jsonl>`` renders it (:mod:`repro.obs.report`).

Searches attach tracing through the existing callback protocol::

    from repro.obs import TracingCallback
    cb = TracingCallback(path="run.trace.jsonl")
    result = api.search(X, y, task, callbacks=[cb])

Tracing is **off by default and passive**: it observes timings the
session already measures and never feeds anything back, so a traced run's
trajectory is byte-identical to an untraced one (pinned by the goldens)
and the enabled overhead is benchmarked ≤5 % of the search loop
(``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.callbacks import Callback
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.runmeta import run_metadata

__all__ = [
    "Tracer",
    "TracingCallback",
    "TraceData",
    "load_trace",
    "merge_trace_metrics",
    "TRACE_SCHEMA_VERSION",
    "BUCKET_SPAN_NAMES",
]

TRACE_SCHEMA_VERSION = 1

# Span names that sum into the paper's Table II time buckets. Structural
# spans (search/episode/step) overlap their children and are excluded
# from bucket totals by the report.
BUCKET_SPAN_NAMES = ("optimization", "estimation", "evaluation")


class Tracer:
    """Nested-span recorder with attached metrics and JSONL streaming.

    Parameters
    ----------
    path:
        JSONL output file. ``None`` keeps everything in memory (the span
        ring plus the metrics registry) — useful for tests and ad-hoc use.
    max_spans:
        Size of the in-memory span ring. The file, when given, always
        receives *every* span; the ring only bounds what :attr:`spans`
        keeps around.
    registry:
        Share an existing :class:`MetricsRegistry` (e.g. the serving
        registry) instead of creating a private one.
    meta:
        Extra key/values merged into the trace's ``meta`` header line.
    """

    def __init__(
        self,
        path: str | None = None,
        max_spans: int = 4096,
        registry: MetricsRegistry | None = None,
        meta: dict | None = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.path = path
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.max_spans = max_spans
        self.spans: list[dict] = []  # ring; see _emit
        self.meta = {"type": "meta", "schema": TRACE_SCHEMA_VERSION, **run_metadata()}
        if meta:
            self.meta.update(meta)
        self._epoch = time.perf_counter()
        self._wall_epoch = time.time()
        self.meta["wall_time_start"] = round(self._wall_epoch, 3)
        self._next_id = 1
        self._id_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._local = threading.local()  # per-thread open-span stack
        self._closed = False
        self._fh = None
        if path is not None:
            self._fh = open(path, "w", encoding="utf-8")
        self._write_line(self.meta)

    # -- plumbing ----------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> int:
        with self._id_lock:
            sid = self._next_id
            self._next_id += 1
            return sid

    def _write_line(self, payload: dict) -> None:
        if self._fh is None:
            return
        line = json.dumps(payload, separators=(",", ":"), default=str)
        with self._write_lock:
            if not self._closed:
                self._fh.write(line + "\n")

    def _emit(self, record: dict) -> None:
        self._write_line(record)
        with self._write_lock:
            self.spans.append(record)
            if len(self.spans) > self.max_spans:
                del self.spans[: len(self.spans) - self.max_spans]

    # -- span API ----------------------------------------------------------------

    def begin(self, name: str, **attrs) -> int:
        """Open a span on this thread's stack; close it with :meth:`end`."""
        sid = self._new_id()
        stack = self._stack()
        parent = stack[-1][0] if stack else None
        stack.append((sid, name, time.perf_counter(), parent, dict(attrs)))
        return sid

    def end(self, span_id: int | None = None, **extra_attrs) -> None:
        """Close the innermost open span (or spans, down to ``span_id``).

        Closing a span that is not the innermost closes everything opened
        after it first, so an exception that skips ``end`` calls cannot
        leave phantom parents on the stack.
        """
        stack = self._stack()
        if not stack:
            raise RuntimeError("Tracer.end() with no open span")
        if span_id is not None and all(s[0] != span_id for s in stack):
            raise RuntimeError(f"span {span_id} is not open on this thread")
        while stack:
            sid, name, start, parent, attrs = stack.pop()
            last = span_id is None or sid == span_id
            if last and extra_attrs:
                attrs.update(extra_attrs)
            self._emit_span(sid, name, start, time.perf_counter() - start, parent, attrs)
            if last:
                return

    @contextmanager
    def span(self, name: str, **attrs):
        """Context-managed span. Exceptions tag the span (``error`` attr),
        unwind cleanly, and propagate."""
        sid = self.begin(name, **attrs)
        try:
            yield sid
        except BaseException as exc:
            self.end(sid, error=type(exc).__name__)
            raise
        else:
            self.end(sid)

    def record_span(
        self,
        name: str,
        duration: float,
        start: float | None = None,
        parent: int | None = None,
        **attrs,
    ) -> int:
        """Emit a span from a pre-measured duration.

        The instrumentation hooks use this to re-use ``perf_counter``
        deltas the code already computes, so tracing adds no extra clock
        reads to the hot path. ``start`` is a ``perf_counter`` timestamp
        (default: now − duration); ``parent`` defaults to the innermost
        open span on this thread.
        """
        sid = self._new_id()
        if start is None:
            start = time.perf_counter() - duration
        if parent is None:
            stack = self._stack()
            parent = stack[-1][0] if stack else None
        self._emit_span(sid, name, start, duration, parent, attrs)
        return sid

    def _emit_span(self, sid, name, start, duration, parent, attrs) -> None:
        record = {
            "type": "span",
            "id": sid,
            "name": name,
            "t": round(start - self._epoch, 6),
            # Full precision: bucket spans must sum to result.time exactly,
            # and rounding errors would accumulate across thousands of spans.
            "dur": float(duration),
        }
        if parent is not None:
            record["parent"] = parent
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    # -- metrics shortcuts -------------------------------------------------------

    def count(self, name: str, amount: float = 1.0, labels: dict | None = None) -> None:
        self.metrics.counter(name, labels=labels).inc(amount)

    def gauge(self, name: str, value: float, labels: dict | None = None) -> None:
        self.metrics.gauge(name, labels=labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple | list | None = None,
        labels: dict | None = None,
    ) -> None:
        self.metrics.histogram(name, bounds=bounds, labels=labels).observe(value)

    # -- lifecycle ---------------------------------------------------------------

    def annotate(self, **kv) -> None:
        """Append an ``annotation`` record (run-level facts, e.g. scores)."""
        self._emit({"type": "annotation", **kv})

    def close(self) -> None:
        """Flush metric summaries and close the file. Idempotent."""
        if self._closed:
            return
        for metric in self.metrics:
            self._write_line(
                {
                    "type": metric.kind,
                    "name": metric.name,
                    "labels": metric.labels,
                    **metric.summary(),
                }
            )
        self._write_line(
            {"type": "end", "elapsed": round(time.perf_counter() - self._epoch, 6)}
        )
        with self._write_lock:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown varies
        try:
            self.close()
        except Exception:
            pass


class TracingCallback(Callback):
    """Attach a :class:`Tracer` to a search through the callback protocol.

    Every lifecycle event becomes a span with structured attributes:

    - ``search`` → ``episode`` → ``step`` nesting, with per-step op,
      score, φ estimate vs real flag, trigger/deferral state;
    - one child span per Table-II bucket under each step (re-using the
      durations the session already measures — no extra clock reads);
    - ``evaluation``-bucket spans for the base-score measurement and
      async reconciles, ``estimation``-bucket spans for component
      (re)training, ``optimization``-bucket spans for episode setup;
    - counters/gauges/histograms: steps, real/deferred evaluations,
      oracle cache hits/misses, step-latency histogram, best score.

    At ``on_finish`` any bucket time the callback could not see live
    (e.g. the pseudo-best validation inside ``result()``) is emitted as an
    explicit ``kind="residual"`` span per bucket, so the trace's bucket
    totals equal ``result.time`` exactly — ``repro trace`` reproduces the
    Table II breakdown from the file alone.

    Works both attached to a live :class:`~repro.core.session.SearchSession`
    and driven by the sweep event relay (where it receives
    :class:`~repro.core.parallel.SessionView` snapshots): every session
    attribute it reads is optional.
    """

    def __init__(
        self,
        path: str | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 4096,
        close_on_finish: bool | None = None,
    ) -> None:
        self._owns_tracer = tracer is None
        self.tracer = tracer if tracer is not None else Tracer(path=path, max_spans=max_spans)
        self._close_on_finish = (
            close_on_finish if close_on_finish is not None else self._owns_tracer
        )
        self._search_span: int | None = None
        self._episode_span: int | None = None
        self._traced = dict.fromkeys(BUCKET_SPAN_NAMES, 0.0)
        self._cache = None

    # -- helpers -----------------------------------------------------------------

    def _bucket_span(self, name: str, duration: float, **attrs) -> None:
        if duration <= 0.0:
            return
        self._traced[name] += duration
        self.tracer.record_span(name, duration, **attrs)

    # -- callback protocol -------------------------------------------------------

    def on_search_start(self, session) -> None:
        tracer = self.tracer
        self._search_span = tracer.begin(
            "search",
            task=getattr(session, "task", None),
            total_steps=getattr(session, "total_steps", None),
        )
        # Deep instrumentation: the session forwards the tracer to its
        # evaluator (per-fold timings) and async oracle (queue telemetry).
        set_tracer = getattr(session, "set_tracer", None)
        if set_tracer is not None:
            set_tracer(tracer)
        evaluator = getattr(session, "_evaluator", None)
        self._cache = getattr(evaluator, "cache", None)
        base_eval = getattr(session, "base_eval_seconds", 0.0)
        self._bucket_span("evaluation", base_eval, kind="base_score")
        tracer.count("search.sessions")
        base = getattr(session, "base_score", None)
        if base is not None:
            tracer.gauge("search.base_score", base)

    def on_episode_start(self, session, episode) -> None:
        self._episode_span = self.tracer.begin("episode", episode=episode)
        self._bucket_span(
            "optimization",
            getattr(session, "last_episode_setup_seconds", 0.0),
            kind="episode_setup",
            episode=episode,
        )

    def on_step(self, session, record) -> None:
        tracer = self.tracer
        dur = record.time_optimization + record.time_estimation + record.time_evaluation
        attrs = {
            "episode": record.episode,
            "step": record.step,
            "global_step": record.global_step,
            "op": record.op_name,
            "score": record.score,
            "is_real": record.is_real,
            "triggered": record.triggered,
            "n_features": record.n_features,
        }
        if record.predicted_score is not None:
            attrs["phi"] = record.predicted_score
        if record.triggered and not record.is_real:
            attrs["deferred"] = True
        sid = tracer.record_span("step", dur, **attrs)
        self._bucket_span(
            "optimization", record.time_optimization, parent=sid, kind="step"
        )
        self._bucket_span("estimation", record.time_estimation, parent=sid, kind="step")
        self._bucket_span("evaluation", record.time_evaluation, parent=sid, kind="step")
        tracer.observe("search.step_seconds", dur)
        tracer.count("search.steps")
        if record.triggered:
            tracer.count("search.triggered")
        if record.is_real:
            tracer.count("search.real_evaluations")
        elif record.triggered:
            tracer.count("search.deferred_evaluations")
        tracer.gauge("search.best_score", record.best_score_so_far)
        tracer.gauge("search.n_features", record.n_features)

    def on_reconcile(self, session, landed, degraded) -> None:
        self._bucket_span(
            "evaluation",
            getattr(session, "last_reconcile_seconds", 0.0),
            kind="reconcile",
            landed=landed,
            degraded=degraded,
        )
        tracer = self.tracer
        if landed:
            tracer.count("oracle.landed", landed)
        if degraded:
            tracer.count("oracle.degraded", degraded)

    def on_retrain(self, session, episode, stage) -> None:
        self._bucket_span(
            "estimation",
            getattr(session, "last_retrain_seconds", 0.0),
            kind="retrain",
            stage=stage,
            episode=episode,
        )
        self.tracer.count("search.retrains")

    def on_episode_end(self, session, episode) -> None:
        if self._cache is not None:
            self.tracer.gauge("oracle.cache_hits", getattr(self._cache, "hits", 0))
            self.tracer.gauge("oracle.cache_misses", getattr(self._cache, "misses", 0))
        if self._episode_span is not None:
            self.tracer.end(
                self._episode_span,
                best_score=getattr(session, "best_score", None),
                n_downstream_calls=getattr(session, "n_downstream_calls", None),
            )
            self._episode_span = None

    def on_finish(self, session, result) -> None:
        tracer = self.tracer
        # Bucket time the callback stream never saw (pseudo-best
        # validation in result(), pre-attach work on resumed sessions):
        # emit it explicitly so trace totals equal result.time exactly.
        totals = {
            "optimization": result.time.optimization,
            "estimation": result.time.estimation,
            "evaluation": result.time.evaluation,
        }
        for name, total in totals.items():
            residual = total - self._traced[name]
            if residual > 1e-9:
                self._bucket_span(name, residual, kind="residual")
        if self._episode_span is not None:  # stopped mid-episode
            self.tracer.end(self._episode_span, stopped=True)
            self._episode_span = None
        if self._search_span is not None:
            tracer.end(
                self._search_span,
                best_score=result.best_score,
                n_downstream_calls=result.n_downstream_calls,
            )
            self._search_span = None
        tracer.annotate(
            base_score=result.base_score,
            best_score=result.best_score,
            n_downstream_calls=result.n_downstream_calls,
            n_steps=len(result.history),
            time_optimization=result.time.optimization,
            time_estimation=result.time.estimation,
            time_evaluation=result.time.evaluation,
        )
        if self._close_on_finish:
            tracer.close()

    def close(self) -> None:
        self.tracer.close()

    def __enter__(self) -> "TracingCallback":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- reading traces back ----------------------------------------------------------


@dataclass
class TraceData:
    """A parsed trace file: header, spans, annotations, restored metrics."""

    path: str
    meta: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    annotations: list[dict] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    elapsed: float | None = None

    def spans_named(self, name: str) -> list[dict]:
        return [s for s in self.spans if s["name"] == name]

    def bucket_totals(self) -> dict[str, float]:
        """Seconds per Table-II bucket, summed over bucket spans."""
        totals = dict.fromkeys(BUCKET_SPAN_NAMES, 0.0)
        for span in self.spans:
            if span["name"] in totals:
                totals[span["name"]] += span["dur"]
        return totals


def load_trace(path: str) -> TraceData:
    """Parse a trace JSONL file written by :class:`Tracer`.

    Raises ``ValueError`` on a missing/foreign header or an unsupported
    schema version; unknown record types are preserved nowhere (skipped)
    so newer traces degrade gracefully in older readers.
    """
    data = TraceData(path=str(path))
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno + 1}: not JSONL ({exc})") from None
            kind = record.get("type")
            if lineno == 0:
                if kind != "meta":
                    raise ValueError(f"{path} is not a repro trace (no meta header)")
                if record.get("schema") != TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: unsupported trace schema {record.get('schema')!r} "
                        f"(this build reads version {TRACE_SCHEMA_VERSION})"
                    )
                data.meta = record
            elif kind == "span":
                data.spans.append(record)
            elif kind == "annotation":
                data.annotations.append(record)
            elif kind == "counter":
                data.metrics.counter(
                    record["name"], labels=record.get("labels")
                ).load_summary(record)
            elif kind == "gauge":
                data.metrics.gauge(
                    record["name"], labels=record.get("labels")
                ).load_summary(record)
            elif kind == "histogram":
                hist = data.metrics.histogram(
                    record["name"], bounds=record["bounds"], labels=record.get("labels")
                )
                hist.load_summary(record)
            elif kind == "end":
                data.elapsed = record.get("elapsed")
    if not data.meta:
        raise ValueError(f"{path} is empty — not a repro trace")
    return data


def merge_trace_metrics(traces: list[TraceData]) -> MetricsRegistry:
    """One registry over several traces (sweep workers, serving replicas).

    Counters and histograms sum exactly; gauges keep the last trace's
    value. :class:`Histogram` merging requires matching bucket bounds,
    which all same-name histograms produced by this package share.
    """
    merged = MetricsRegistry()
    for trace in traces:
        merged.merge(trace.metrics)
    return merged
