"""The blocking FastFT entry point, now a facade over :class:`SearchSession`.

One :meth:`FastFT.fit` call runs the paper's four stages:

1. **Cold start** — the cascade explores with real downstream feedback
   (Eq. 5 rewards), collecting ⟨sequence, score⟩ pairs.
2. **Evaluation-component training** — the Performance Predictor φ and
   Novelty Estimator ψ are trained on the collected pairs (Eq. 3/4).
3. **Efficient exploration** — φ/ψ replace the downstream oracle (Eq. 6
   pseudo-rewards); the real task is invoked only for sequences in the
   top-α% of predicted performance or top-β% of novelty (§III-D).
4. **Fine-tuning** — every E episodes φ/ψ are re-fit on the prioritized
   memory's records.

The step-wise state machine behind these stages lives in
:class:`repro.core.session.SearchSession`; use it directly (or the
:mod:`repro.api` facade) when you need pausing, callbacks, checkpointing
or incremental observation. ``FastFT(cfg).fit(X, y, task)`` remains the
stable blocking interface with an unchanged signature and return type.

Wall time is accounted into the paper's Table II buckets: *optimization*
(agent decisions, clustering, replay updates), *estimation* (φ/ψ forwards
and training) and *evaluation* (downstream cross-validation).
"""

from __future__ import annotations

import numpy as np

from repro.core.callbacks import Callback
from repro.core.config import FastFTConfig
from repro.core.result import FastFTResult, StepRecord, TimeBreakdown
from repro.core.session import SearchSession
from repro.ml.evaluation import DownstreamEvaluator

__all__ = ["FastFT", "FastFTResult", "StepRecord", "TimeBreakdown"]


class FastFT:
    """Public entry point: ``FastFT(config).fit(X, y, task)``.

    The ablation arms of Fig 6 are plain config toggles:
    ``use_performance_predictor=False`` (−PP), ``use_novelty=False`` (−NE),
    ``prioritized_replay=False`` (−RCT).
    """

    def __init__(self, config: FastFTConfig | None = None) -> None:
        self.config = config or FastFTConfig()

    def session(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
        evaluator: DownstreamEvaluator | None = None,
        callbacks: list[Callback] | None = None,
    ) -> SearchSession:
        """Build (but do not start) a resumable search session."""
        return SearchSession(
            X,
            y,
            task=task,
            config=self.config,
            feature_names=feature_names,
            evaluator=evaluator,
            callbacks=callbacks,
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
        evaluator: DownstreamEvaluator | None = None,
    ) -> FastFTResult:
        """Search for the optimal transformation sequence T* (Eq. 1)."""
        return self.session(X, y, task, feature_names, evaluator).run()

    def fit_transform(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
    ) -> np.ndarray:
        """Fit and return the transformed feature matrix."""
        return self.fit(X, y, task, feature_names).transform(X)
