"""The FastFT engine: Algorithms 1 (cold start) and 2 (efficient exploration).

One :meth:`FastFT.fit` call runs the paper's four stages:

1. **Cold start** — the cascade explores with real downstream feedback
   (Eq. 5 rewards), collecting ⟨sequence, score⟩ pairs.
2. **Evaluation-component training** — the Performance Predictor φ and
   Novelty Estimator ψ are trained on the collected pairs (Eq. 3/4).
3. **Efficient exploration** — φ/ψ replace the downstream oracle (Eq. 6
   pseudo-rewards); the real task is invoked only for sequences in the
   top-α% of predicted performance or top-β% of novelty (§III-D).
4. **Fine-tuning** — every E episodes φ/ψ are re-fit on the prioritized
   memory's records.

Wall time is accounted into the paper's Table II buckets: *optimization*
(agent decisions, clustering, replay updates), *estimation* (φ/ψ forwards
and training) and *evaluation* (downstream cross-validation).
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.agents import CascadingAgents
from repro.core.clustering import cluster_features
from repro.core.config import FastFTConfig
from repro.core.novelty import NoveltyEstimator, novelty_distance
from repro.core.operations import OPERATION_NAMES, OPERATIONS
from repro.core.predictor import PerformancePredictor
from repro.core.reward import NoveltyWeightSchedule, downstream_reward, pseudo_reward
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.core.state import describe_matrix
from repro.core.tokens import TokenVocabulary
from repro.ml.evaluation import TASKS, DownstreamEvaluator, default_model_for_task
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features

__all__ = ["FastFT", "FastFTResult", "StepRecord", "TimeBreakdown"]


@dataclass
class StepRecord:
    """Everything the experiment harnesses need about one exploration step."""

    episode: int
    step: int
    global_step: int
    op_name: str
    n_new_features: int
    score: float
    is_real: bool
    predicted_score: float | None
    novelty: float
    novelty_weight: float
    reward: float
    priority: float
    n_features: int
    n_clusters: int
    best_score_so_far: float
    time_optimization: float
    time_estimation: float
    time_evaluation: float
    new_expressions: list[str] = field(default_factory=list)
    novelty_distance: float = 1.0
    unencountered_total: int = 0
    triggered: bool = False
    # Token sequence T_i at this step — lets analyses (Fig 14) compute
    # embedding-based metrics post hoc, independent of the ablation arm.
    sequence_tokens: list[int] = field(default_factory=list)


@dataclass
class TimeBreakdown:
    """Table II's per-run time buckets (seconds)."""

    optimization: float = 0.0
    estimation: float = 0.0
    evaluation: float = 0.0

    @property
    def overall(self) -> float:
        return self.optimization + self.estimation + self.evaluation

    def per_episode(self, episodes: int) -> "TimeBreakdown":
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        return TimeBreakdown(
            self.optimization / episodes,
            self.estimation / episodes,
            self.evaluation / episodes,
        )


@dataclass
class FastFTResult:
    """Outcome of one FastFT run: best plan, scores, full step history."""

    base_score: float
    best_score: float
    plan: TransformationPlan
    history: list[StepRecord]
    time: TimeBreakdown
    n_downstream_calls: int
    config: FastFTConfig
    task: str

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the best transformation plan T* to (possibly new) data."""
        return self.plan.apply(X)

    @property
    def improvement(self) -> float:
        return self.best_score - self.base_score

    def expressions(self) -> list[str]:
        """Traceable formulas of the best feature set (Table IV / Fig 15)."""
        return self.plan.expressions()

    def reward_peaks(self, top_k: int = 5) -> list[StepRecord]:
        """Steps with the highest rewards — the Fig 15 case-study view."""
        return sorted(self.history, key=lambda r: r.reward, reverse=True)[:top_k]

    def save(self, path: str) -> None:
        """Persist the full run (plan, history, config, timings) as JSON."""
        payload = {
            "base_score": self.base_score,
            "best_score": self.best_score,
            "task": self.task,
            "n_downstream_calls": self.n_downstream_calls,
            "time": {
                "optimization": self.time.optimization,
                "estimation": self.time.estimation,
                "evaluation": self.time.evaluation,
            },
            "plan": json.loads(self.plan.to_json()),
            "config": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in asdict(self.config).items()
            },
            "history": [asdict(record) for record in self.history],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)

    @classmethod
    def load(cls, path: str) -> "FastFTResult":
        """Restore a run saved by :meth:`save`."""
        with open(path) as fh:
            payload = json.load(fh)
        config_raw = dict(payload["config"])
        for key in ("predictor_head_dims", "novelty_head_dims"):
            config_raw[key] = tuple(config_raw[key])
        time_raw = payload["time"]
        return cls(
            base_score=payload["base_score"],
            best_score=payload["best_score"],
            plan=TransformationPlan.from_json(json.dumps(payload["plan"])),
            history=[StepRecord(**record) for record in payload["history"]],
            time=TimeBreakdown(
                optimization=time_raw["optimization"],
                estimation=time_raw["estimation"],
                evaluation=time_raw["evaluation"],
            ),
            n_downstream_calls=payload["n_downstream_calls"],
            config=FastFTConfig(**config_raw),
            task=payload["task"],
        )


class FastFT:
    """Public entry point: ``FastFT(config).fit(X, y, task)``.

    The ablation arms of Fig 6 are plain config toggles:
    ``use_performance_predictor=False`` (−PP), ``use_novelty=False`` (−NE),
    ``prioritized_replay=False`` (−RCT).
    """

    def __init__(self, config: FastFTConfig | None = None) -> None:
        self.config = config or FastFTConfig()

    # -- helpers -------------------------------------------------------------

    def _make_components(
        self, vocab_size: int
    ) -> tuple[PerformancePredictor | None, NoveltyEstimator | None]:
        cfg = self.config
        predictor = None
        novelty = None
        if cfg.use_performance_predictor:
            predictor = PerformancePredictor(
                vocab_size,
                seq_model=cfg.seq_model,
                embed_dim=cfg.embed_dim,
                hidden_dim=cfg.hidden_dim,
                num_layers=cfg.encoder_layers,
                head_dims=cfg.predictor_head_dims,
                lr=cfg.component_lr,
                seed=cfg.seed,
            )
        if cfg.use_novelty:
            novelty = NoveltyEstimator(
                vocab_size,
                seq_model=cfg.seq_model,
                embed_dim=cfg.embed_dim,
                hidden_dim=cfg.hidden_dim,
                num_layers=cfg.encoder_layers,
                estimator_head_dims=cfg.novelty_head_dims,
                orthogonal_gain=cfg.orthogonal_gain,
                lr=cfg.component_lr,
                seed=cfg.seed,
            )
        return predictor, novelty

    @staticmethod
    def _cluster_fids(space: FeatureSpace, column_clusters: list[list[int]]) -> list[list[int]]:
        live = space.live_ids
        return [[live[c] for c in cols] for cols in column_clusters]

    def _recluster(
        self, space: FeatureSpace, y: np.ndarray, task: str
    ) -> tuple[list[list[int]], np.ndarray, np.ndarray]:
        cfg = self.config
        matrix = sanitize_features(space.matrix())
        column_clusters = cluster_features(
            matrix,
            y,
            task=task,
            distance_threshold=cfg.cluster_threshold,
            max_clusters=cfg.max_clusters,
            n_bins=cfg.mi_bins,
            max_rows=cfg.mi_max_rows,
            seed=cfg.seed,
        )
        fid_clusters = self._cluster_fids(space, column_clusters)
        overall_rep = describe_matrix(matrix)
        cluster_reps = np.stack(
            [describe_matrix(space.matrix(fids)) for fids in fid_clusters]
        )
        return fid_clusters, overall_rep, cluster_reps

    def _prune(self, space: FeatureSpace, y: np.ndarray, task: str, cap: int) -> None:
        if space.n_features <= cap:
            return
        matrix = sanitize_features(space.matrix())
        relevance = mutual_info_with_target(matrix, y, task=task, n_bins=self.config.mi_bins)
        live = space.live_ids
        order = np.argsort(-relevance)
        keep = [live[i] for i in order[:cap]]
        space.prune(keep)

    # -- main loop ---------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
        evaluator: DownstreamEvaluator | None = None,
    ) -> FastFTResult:
        """Search for the optimal transformation sequence T* (Eq. 1)."""
        if task not in TASKS:
            raise ValueError(f"Unknown task {task!r}; expected one of {TASKS}")
        cfg = self.config
        X = sanitize_features(np.asarray(X, dtype=float))
        y = np.asarray(y)
        rng = np.random.default_rng(cfg.seed)

        evaluator = evaluator or DownstreamEvaluator(
            task,
            model=default_model_for_task(
                task, n_estimators=cfg.rf_estimators, max_depth=cfg.rf_max_depth, seed=cfg.seed
            ),
            n_splits=cfg.cv_splits,
            seed=cfg.seed,
        )
        vocab = TokenVocabulary(OPERATION_NAMES, n_feature_slots=cfg.feature_slots)
        predictor, novelty = self._make_components(len(vocab))
        agents = CascadingAgents(
            n_ops=len(OPERATIONS),
            framework=cfg.rl_framework,
            hidden=cfg.agent_hidden,
            lr=cfg.agent_lr,
            gamma=cfg.gamma,
            entropy_coef=cfg.entropy_coef,
            memory_size=cfg.memory_size,
            replay_batch_size=cfg.replay_batch_size,
            prioritized=cfg.prioritized_replay,
            per_alpha=cfg.per_alpha,
            per_beta=cfg.per_beta,
            seed=cfg.seed,
        )
        schedule = NoveltyWeightSchedule(
            cfg.novelty_weight_start, cfg.novelty_weight_end, cfg.novelty_decay_steps
        )

        timers = TimeBreakdown()
        history: list[StepRecord] = []
        feature_cap = cfg.resolved_max_features(X.shape[1])

        base_space = FeatureSpace(X, feature_names)
        base_score = evaluator(X, y)
        timers.evaluation += evaluator.total_time
        evaluator.reset_counters()
        n_eval_calls = 1

        best_real_score = base_score
        best_real_plan = base_space.snapshot()
        best_pseudo_score = -np.inf
        best_pseudo_plan: TransformationPlan | None = None

        # Training records for the evaluation components.
        eval_sequences: deque[np.ndarray] = deque(maxlen=cfg.eval_record_cap)
        eval_scores: deque[float] = deque(maxlen=cfg.eval_record_cap)
        seen_sequences: deque[np.ndarray] = deque(maxlen=2 * cfg.eval_record_cap)

        # Adaptive-trigger percentile windows (§III-D).
        pred_window: deque[float] = deque(maxlen=cfg.trigger_window)
        nov_window: deque[float] = deque(maxlen=cfg.trigger_window)

        # Fig 14 bookkeeping.
        embedding_history: list[np.ndarray] = []
        seen_expressions: set[str] = set()
        unencountered_total = 0

        global_step = 0
        components_trained = False

        for episode in range(cfg.episodes):
            space = FeatureSpace(X, feature_names)
            body_tokens: list[int] = []
            prev_seq = vocab.finalize(body_tokens, cfg.max_seq_len)

            t0 = time.perf_counter()
            clusters, overall_rep, cluster_reps = self._recluster(space, y, task)
            timers.optimization += time.perf_counter() - t0

            prev_score_used = base_score
            prev_phi: float | None = None

            for step in range(cfg.steps_per_episode):
                # ---- decide & transform (optimization bucket) ----
                t0 = time.perf_counter()
                decision = agents.decide(
                    overall_rep,
                    cluster_reps,
                    is_binary=lambda op_idx: OPERATIONS[op_idx].arity == 2,
                )
                op = OPERATIONS[decision.op_index]
                head_fids = clusters[decision.head_index]
                if op.arity == 2:
                    tail_fids = clusters[decision.tail_index]
                    new_fids = space.apply_binary(
                        op.name, head_fids, tail_fids, max_new=cfg.max_new_per_step, rng=rng
                    )
                    body_tokens.extend(vocab.step_tokens(op.name, head_fids, tail_fids))
                else:
                    tail_fids = None
                    new_fids = space.apply_unary(op.name, head_fids[: cfg.max_new_per_step])
                    body_tokens.extend(vocab.step_tokens(op.name, head_fids))
                seq = vocab.finalize(body_tokens, cfg.max_seq_len)
                self._prune(space, y, task, feature_cap)
                timers.optimization += time.perf_counter() - t0

                new_expressions = [space.expression(f) for f in new_fids]
                fresh = [e for e in new_expressions if e not in seen_expressions]
                unencountered_total += len(fresh)
                seen_expressions.update(fresh)

                # ---- score the new feature set ----
                in_cold_start = episode < cfg.cold_start_episodes or not components_trained
                use_components = (
                    cfg.use_performance_predictor and components_trained and not in_cold_start
                )

                phi_i: float | None = None
                nov = 0.0
                nov_raw = 0.0
                nov_dist = 1.0
                triggered = False
                time_estimation = 0.0
                time_evaluation = 0.0

                if novelty is not None and components_trained:
                    t1 = time.perf_counter()
                    nov_raw = novelty.score(seq)
                    # Running-std normalization keeps the intrinsic term on
                    # the same scale as the performance delta regardless of
                    # the orthogonal target's gain (standard RND practice);
                    # the raw value feeds the trigger percentile window.
                    if len(nov_window) >= 2:
                        scale = float(np.std(nov_window)) + 1e-8
                        nov = float(np.tanh(nov_raw / scale))
                    else:
                        nov = 1.0 if nov_raw > 0 else 0.0
                    emb = novelty.embedding(seq)
                    nov_dist = novelty_distance(emb, np.array(embedding_history) if embedding_history else None)
                    embedding_history.append(emb)
                    time_estimation += time.perf_counter() - t1

                if use_components:
                    t1 = time.perf_counter()
                    phi_i = predictor.predict(seq)
                    if prev_phi is None:
                        prev_phi = predictor.predict(prev_seq)
                    time_estimation += time.perf_counter() - t1

                    triggered = self._should_trigger(phi_i, nov_raw, pred_window, nov_window)
                    pred_window.append(phi_i)

                    if triggered:
                        t1 = time.perf_counter()
                        score = evaluator(space.matrix(), y)
                        time_evaluation += time.perf_counter() - t1
                        n_eval_calls += 1
                        is_real = True
                    else:
                        score = phi_i
                        is_real = False
                    eps_i = schedule.weight(global_step) if novelty is not None else 0.0
                    reward = pseudo_reward(
                        score if is_real else phi_i,
                        prev_phi if prev_phi is not None else 0.0,
                        nov,
                        eps_i,
                    )
                    prev_phi = phi_i
                else:
                    # Cold start (Algorithm 1) or the −PP ablation: real feedback.
                    t1 = time.perf_counter()
                    score = evaluator(space.matrix(), y)
                    time_evaluation += time.perf_counter() - t1
                    n_eval_calls += 1
                    is_real = True
                    eps_i = (
                        schedule.weight(global_step)
                        if (novelty is not None and components_trained)
                        else 0.0
                    )
                    reward = downstream_reward(score, prev_score_used) + eps_i * nov

                if novelty is not None and components_trained:
                    nov_window.append(nov_raw)
                timers.estimation += time_estimation
                timers.evaluation += time_evaluation
                prev_score_used = score
                prev_seq = seq

                # ---- best tracking ----
                if is_real:
                    eval_sequences.append(seq)
                    eval_scores.append(score)
                    if score > best_real_score:
                        best_real_score = score
                        best_real_plan = space.snapshot()
                elif score > best_pseudo_score:
                    best_pseudo_score = score
                    best_pseudo_plan = space.snapshot()
                seen_sequences.append(seq)

                # ---- remember & learn (optimization bucket) ----
                t0 = time.perf_counter()
                clusters, overall_rep_next, cluster_reps_next = self._recluster(space, y, task)
                done = step == cfg.steps_per_episode - 1
                priority = agents.store(
                    decision, reward, overall_rep_next, cluster_reps_next, done
                )
                agents.optimize()
                overall_rep, cluster_reps = overall_rep_next, cluster_reps_next
                timers.optimization += time.perf_counter() - t0

                best_so_far = max(best_real_score, base_score)
                history.append(
                    StepRecord(
                        episode=episode,
                        step=step,
                        global_step=global_step,
                        op_name=op.name,
                        n_new_features=len(new_fids),
                        score=score,
                        is_real=is_real,
                        predicted_score=phi_i,
                        novelty=nov,
                        novelty_weight=schedule.weight(global_step),
                        reward=reward,
                        priority=priority,
                        n_features=space.n_features,
                        n_clusters=len(clusters),
                        best_score_so_far=best_so_far,
                        time_optimization=0.0,
                        time_estimation=time_estimation,
                        time_evaluation=time_evaluation,
                        new_expressions=new_expressions,
                        novelty_distance=nov_dist,
                        unencountered_total=unencountered_total,
                        triggered=triggered,
                        sequence_tokens=[int(t) for t in seq],
                    )
                )
                global_step += 1

            # ---- stage transitions: component training / fine-tuning ----
            finished_cold_start = episode == cfg.cold_start_episodes - 1
            due_finetune = (
                components_trained
                and cfg.retrain_every_episodes > 0
                and (episode - cfg.cold_start_episodes + 1) % cfg.retrain_every_episodes == 0
            )
            if (finished_cold_start or due_finetune) and eval_sequences:
                t1 = time.perf_counter()
                if predictor is not None:
                    predictor.fit(
                        list(eval_sequences),
                        np.array(eval_scores),
                        epochs=cfg.component_epochs,
                        rng=rng,
                    )
                if novelty is not None:
                    novelty.fit(
                        list(seen_sequences), epochs=cfg.component_epochs, rng=rng
                    )
                timers.estimation += time.perf_counter() - t1
                components_trained = True
                if cfg.verbose:
                    stage = "cold-start training" if finished_cold_start else "fine-tuning"
                    print(f"[FastFT] episode {episode}: component {stage} done")

            if cfg.verbose:
                print(
                    f"[FastFT] episode {episode}: best={best_real_score:.4f} "
                    f"evals={n_eval_calls} features={space.n_features}"
                )

        # ---- final validation of the pseudo-best candidate ----
        best_score, best_plan = best_real_score, best_real_plan
        if best_pseudo_plan is not None and best_pseudo_score > best_real_score:
            t1 = time.perf_counter()
            validated = evaluator(best_pseudo_plan.apply(X), y)
            timers.evaluation += time.perf_counter() - t1
            n_eval_calls += 1
            if validated > best_score:
                best_score, best_plan = validated, best_pseudo_plan

        return FastFTResult(
            base_score=base_score,
            best_score=best_score,
            plan=best_plan,
            history=history,
            time=timers,
            n_downstream_calls=n_eval_calls,
            config=cfg,
            task=task,
        )

    def _should_trigger(
        self,
        predicted: float,
        nov: float,
        pred_window: deque,
        nov_window: deque,
    ) -> bool:
        """§III-D adaptive strategy: real evaluation for top-α% predicted
        performance or top-β% novelty. α=β=0 disables downstream evaluation
        entirely (the degenerate setting of Fig 12)."""
        cfg = self.config
        if cfg.alpha <= 0 and cfg.beta <= 0:
            return False
        if len(pred_window) < cfg.trigger_warmup:
            return True
        if cfg.alpha > 0:
            threshold = float(np.percentile(pred_window, 100 - cfg.alpha))
            if predicted >= threshold:
                return True
        if cfg.beta > 0 and len(nov_window) >= cfg.trigger_warmup:
            threshold = float(np.percentile(nov_window, 100 - cfg.beta))
            if nov >= threshold:
                return True
        return False

    def fit_transform(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        feature_names: list[str] | None = None,
    ) -> np.ndarray:
        """Fit and return the transformed feature matrix."""
        return self.fit(X, y, task, feature_names).transform(X)
