"""Parallel search orchestration: multi-seed sweeps and process-pool batches.

FastFT's standard reporting protocol (Table I, and the GRFG/CAAFE lineage it
compares against) repeats every seeded search several times and reports
mean ± std — which, run serially, costs N× wall clock on one core. The
:class:`SearchOrchestrator` fans seeded :class:`~repro.core.session.SearchSession`
runs out across a ``ProcessPoolExecutor`` instead:

- :meth:`SearchOrchestrator.sweep` — one session per seed over one dataset,
  returning a :class:`SweepResult` (per-seed results, deterministic
  best-by-score selection, mean/std for Table-I-style rows);
- :meth:`SearchOrchestrator.run_batch` — whole jobs (datasets) scheduled
  across workers, results in input order.

Determinism contract
--------------------
Each worker result is **bit-identical to the same seed run serially**: the
worker executes exactly the serial code path (same config, same seeded RNG
streams, same oracle), and numpy arithmetic does not depend on the process
it runs in. The pool prefers the ``fork`` start method (workers inherit the
job arrays; nothing is re-pickled per job) and falls back to ``spawn`` on
platforms without ``fork`` (arrays ship inside the payload — same math,
same results, more copying). Payloads that cannot be pickled at all demote
the run to the serial path with a ``RuntimeWarning`` — the same discipline
as ``cross_val_score(n_jobs=...)``.

Workers share one oracle cache (:class:`repro.ml.cache.SharedEvaluationCache`,
a manager-backed dict using the same content-signature keys as the local
:class:`~repro.ml.cache.EvaluationCache`): scores are exact, so sharing can
only reduce how many real CV runs a sweep pays for, never change its
trajectory. ``n_downstream_calls`` consequently reports *actual* CV runs,
which may be fewer than a cache-less serial run — every other field of the
result is bit-identical.

Observability crosses the process boundary over a queue: pass
``callbacks_factory`` and each worker relays its lifecycle events
(:meth:`on_step`, :meth:`on_episode_end`, ...) to parent-side callbacks —
a :class:`~repro.core.callbacks.HistoryCollector` or
:class:`~repro.core.callbacks.VerboseLogger` works unchanged, receiving a
lightweight :class:`SessionView` in place of the live session.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import threading
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.core.callbacks import Callback, CallbackList, TimeBudget
from repro.core.config import FastFTConfig
from repro.core.result import FastFTResult
from repro.core.session import SearchSession, make_default_evaluator
from repro.ml.cache import EvaluationCache, SharedEvaluationCache

__all__ = [
    "SearchOrchestrator",
    "SweepResult",
    "SessionView",
    "job_fields",
    "resolve_config",
]


def resolve_config(config: FastFTConfig | None, overrides: dict) -> FastFTConfig:
    """Materialize a config from an optional base plus keyword overrides."""
    if config is None:
        return FastFTConfig(**overrides)
    return replace(config, **overrides) if overrides else config


def job_fields(job) -> tuple[str, np.ndarray, np.ndarray, str, list[str] | None]:
    """Accept Dataset-like objects, mappings, or (name, X, y, task) tuples."""
    if isinstance(job, Mapping):
        return (
            job.get("name", "job"),
            job["X"],
            job["y"],
            job.get("task", "classification"),
            job.get("feature_names"),
        )
    if hasattr(job, "X") and hasattr(job, "y"):
        return (
            getattr(job, "name", "job"),
            job.X,
            job.y,
            getattr(job, "task", "classification"),
            list(getattr(job, "feature_names", []) or []) or None,
        )
    name, X, y, task = job
    return name, X, y, task, None


# -- cross-process observability ------------------------------------------------


class SessionView:
    """Picklable snapshot of the session attributes observers read.

    Parent-side callbacks attached through ``callbacks_factory`` receive one
    of these instead of the live (worker-resident) session. It carries the
    fields the built-in observers use (``best_score``,
    ``n_downstream_calls``, ``n_features``, counters); control methods are
    stubs — a remote worker cannot be stopped from the parent, so put
    control callbacks (``TimeBudget``) on the worker side via
    ``time_budget`` instead.
    """

    def __init__(
        self,
        label: str,
        task: str,
        episode: int,
        global_step: int,
        total_steps: int,
        n_features: int,
        n_downstream_calls: int,
        base_score: float,
        best_score: float,
    ) -> None:
        self.label = label
        self.task = task
        self.episode = episode
        self.global_step = global_step
        self.total_steps = total_steps
        self.n_features = n_features
        self.n_downstream_calls = n_downstream_calls
        self.base_score = base_score
        self.best_score = best_score

    def request_stop(self, reason: str = "") -> None:
        warnings.warn(
            "request_stop() on a SessionView is a no-op: parent-side "
            "callbacks observe a worker process and cannot stop it. Use "
            "time_budget= (or a worker-side callback) for control.",
            RuntimeWarning,
            stacklevel=2,
        )


class _EventRelay(Callback):
    """Worker-side callback: serializes lifecycle events onto a queue.

    ``on_finish`` is deliberately not relayed — the parent already receives
    the full result through the pool and fires ``on_finish`` itself once
    per job, in submission order, after all events have drained.
    """

    def __init__(self, events, label: str) -> None:
        self._events = events
        self._label = label

    def _view(self, session: SearchSession) -> SessionView:
        return SessionView(
            label=self._label,
            task=session.task,
            episode=session.episode,
            global_step=session.global_step,
            total_steps=session.total_steps,
            n_features=session.n_features,
            n_downstream_calls=session.n_downstream_calls,
            base_score=session.base_score,
            best_score=session.best_score,
        )

    def _emit(self, event: str, session: SearchSession, arg=None) -> None:
        self._events.put((self._label, event, self._view(session), arg))

    def on_search_start(self, session) -> None:
        self._emit("search_start", session)

    def on_episode_start(self, session, episode) -> None:
        self._emit("episode_start", session, episode)

    def on_step(self, session, record) -> None:
        self._emit("step", session, record)

    def on_real_evaluation(self, session, record) -> None:
        self._emit("real_evaluation", session, record)

    def on_reconcile(self, session, landed, degraded) -> None:
        self._emit("reconcile", session, (landed, degraded))

    def on_retrain(self, session, episode, stage) -> None:
        self._emit("retrain", session, (episode, stage))

    def on_episode_end(self, session, episode) -> None:
        self._emit("episode_end", session, episode)


class _EventPump(threading.Thread):
    """Parent-side drain loop: replays queued worker events onto callbacks."""

    def __init__(self, events, sinks: dict[str, CallbackList]) -> None:
        super().__init__(name="fastft-event-pump", daemon=True)
        self._events = events
        self._sinks = sinks
        # NB: not `_stop` — threading.Thread owns a private method by that name.
        self._stop_flag = threading.Event()
        self.errors: list[Exception] = []
        self.last_view: dict[str, SessionView] = {}

    def _dispatch(self, label: str, event: str, view: SessionView, arg) -> None:
        self.last_view[label] = view
        sink = self._sinks.get(label)
        if sink is None:
            return
        if event == "search_start":
            sink.on_search_start(view)
        elif event == "episode_start":
            sink.on_episode_start(view, arg)
        elif event == "step":
            sink.on_step(view, arg)
        elif event == "real_evaluation":
            sink.on_real_evaluation(view, arg)
        elif event == "reconcile":
            sink.on_reconcile(view, arg[0], arg[1])
        elif event == "retrain":
            sink.on_retrain(view, arg[0], arg[1])
        elif event == "episode_end":
            sink.on_episode_end(view, arg)

    def run(self) -> None:
        while True:
            try:
                item = self._events.get(timeout=0.05)
            except queue_mod.Empty:
                if self._stop_flag.is_set():
                    return
                continue
            except (EOFError, OSError) as exc:  # manager went away mid-drain
                self.errors.append(exc)
                return
            try:
                self._dispatch(*item)
            except Exception as exc:  # surface after join, keep draining
                self.errors.append(exc)

    def finish(self) -> None:
        """Drain everything already queued, then stop.

        The join is unbounded on purpose: every worker has already
        returned by the time this runs, so the queue is finite, and
        ``on_finish`` (fired by the caller next) must not race live
        ``on_step`` dispatches. A slow user callback delays completion
        here exactly as it would in a serial run.
        """
        self._stop_flag.set()
        self.join()


# -- the worker ------------------------------------------------------------------

# Job arrays for the orchestration calls in flight, keyed by a per-run
# token plus the job label (the token keeps concurrent orchestrators in
# one process from clobbering each other's entries). Fork-started workers
# inherit this mapping, so payloads carry only the keys; spawn-started
# workers re-import the module and need X/y shipped in the payload (see
# cross_val_score for the same discipline).
_shared_job_data: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]] = {}
_run_token_counter = 0
_run_token_lock = threading.Lock()


def _next_run_token() -> int:
    global _run_token_counter
    with _run_token_lock:
        _run_token_counter += 1
        return _run_token_counter


def _execute_job(payload: dict) -> tuple[str, FastFTResult]:
    """Run one seeded search job; the single code path for serial and
    pooled execution, which is what makes pooled results bit-identical."""
    label = payload["label"]
    if payload["data"] is not None:
        X, y = payload["data"]
    else:
        X, y = _shared_job_data[(payload["token"], label)]
    config: FastFTConfig = payload["config"]
    cache = payload["cache"]
    callbacks: list[Callback] = []
    if payload["time_budget"] is not None:
        callbacks.append(TimeBudget(payload["time_budget"]))
    if payload["events"] is not None:
        callbacks.append(_EventRelay(payload["events"], label))
    callbacks.extend(payload.get("local_callbacks") or [])
    evaluator = (
        cache.wrap(make_default_evaluator(payload["task"], config))
        if cache is not None
        else None
    )
    session = SearchSession(
        X,
        y,
        task=payload["task"],
        config=config,
        feature_names=payload["feature_names"],
        evaluator=evaluator,
        callbacks=callbacks,
    )
    return label, session.run()


def _payload_ok(payload: dict) -> bool:
    """Probe that a job payload crosses the process boundary."""
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        warnings.warn(
            "parallel search needs picklable job payloads (config, "
            "feature names, data); falling back to serial execution",
            RuntimeWarning,
            stacklevel=4,
        )
        return False


# -- results ---------------------------------------------------------------------


@dataclass
class SweepResult:
    """Per-seed outcomes of one multi-seed sweep over a single dataset.

    ``results`` is keyed by seed; ``seeds`` preserves the caller's order,
    which is also the tie-break order of :attr:`best_seed` (the *first*
    seed attaining the maximum best score wins, so selection does not
    depend on scheduling).

    ``failed_seeds`` is empty for in-process sweeps (a worker failure
    raises); a :mod:`repro.jobs` fleet gather with ``allow_partial=True``
    populates it with the seeds that exhausted their retries, so completed
    work is reported instead of discarded. Statistics (:attr:`scores`,
    :attr:`score_mean`, :attr:`best_seed`, ...) cover completed seeds only.
    """

    task: str
    seeds: list[int] = field(default_factory=list)
    results: dict[int, FastFTResult] = field(default_factory=dict)
    failed_seeds: list[int] = field(default_factory=list)

    @property
    def is_partial(self) -> bool:
        return bool(self.failed_seeds)

    def __len__(self) -> int:
        return len(self.seeds)

    def __iter__(self):
        return (self.results[s] for s in self.seeds)

    def __getitem__(self, seed: int) -> FastFTResult:
        return self.results[seed]

    @property
    def scores(self) -> np.ndarray:
        """Best downstream score per seed, in seed order."""
        return np.asarray([self.results[s].best_score for s in self.seeds], dtype=float)

    @property
    def base_scores(self) -> np.ndarray:
        return np.asarray([self.results[s].base_score for s in self.seeds], dtype=float)

    @property
    def score_mean(self) -> float:
        return float(self.scores.mean())

    @property
    def score_std(self) -> float:
        return float(self.scores.std())

    @property
    def best_seed(self) -> int:
        scores = self.scores
        return self.seeds[int(np.argmax(scores))]  # argmax takes the first max

    @property
    def best(self) -> FastFTResult:
        return self.results[self.best_seed]

    @property
    def n_downstream_calls(self) -> int:
        """Total *actual* CV runs across the sweep (cache hits excluded)."""
        return sum(self.results[s].n_downstream_calls for s in self.seeds)

    def summary(self) -> str:
        """Table-I-style report: one row per seed, then mean ± std."""
        lines = [
            f"{'seed':>6s} {'base':>10s} {'best':>10s} {'evals':>6s}",
        ]
        for s in self.seeds:
            r = self.results[s]
            marker = " *" if s == self.best_seed else ""
            lines.append(
                f"{s:6d} {r.base_score:10.4f} {r.best_score:10.4f} "
                f"{r.n_downstream_calls:6d}{marker}"
            )
        lines.append(
            f"{'':6s} mean {self.score_mean:.4f} ± {self.score_std:.4f} "
            f"over {len(self.seeds)} seeds (* = best, seed-order tie-break)"
        )
        if self.failed_seeds:
            lines.append(
                f"{'':6s} PARTIAL: seeds {self.failed_seeds} failed permanently "
                "and are excluded from the statistics above"
            )
        return "\n".join(lines)


# -- the orchestrator ------------------------------------------------------------


class SearchOrchestrator:
    """Fan seeded search sessions out across a process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes (``1`` = serial in-process, ``-1`` = all cores).
        The pool never exceeds the number of jobs.
    cache:
        ``None`` (each run builds its own shared cache),
        an :class:`~repro.ml.cache.EvaluationCache` (its entries seed the
        shared cache and the shared entries merge back on completion), or a
        :class:`~repro.ml.cache.SharedEvaluationCache` to reuse across
        calls.
    callbacks_factory:
        ``factory(label) -> list[Callback]`` building parent-side observers
        per job (label = job name, or ``"seed=<s>"`` in a sweep). Under
        parallelism they receive :class:`SessionView` snapshots relayed
        over a queue; serially they attach directly to the live session.
    time_budget:
        Per-job wall-clock budget in seconds, enforced *inside* each worker
        (a worker-side :class:`~repro.core.callbacks.TimeBudget`).
    """

    def __init__(
        self,
        n_jobs: int = 1,
        *,
        cache: "EvaluationCache | SharedEvaluationCache | None" = None,
        callbacks_factory: Callable[[str], list[Callback]] | None = None,
        time_budget: float | None = None,
    ) -> None:
        if n_jobs < 1 and n_jobs != -1:
            raise ValueError("n_jobs must be >= 1 or -1 (all cores)")
        self.n_jobs = n_jobs
        self.cache = cache
        self.callbacks_factory = callbacks_factory
        self.time_budget = time_budget

    # -- public entry points ---------------------------------------------------

    def sweep(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        *,
        seeds: Iterable[int] = (0, 1, 2),
        config: FastFTConfig | None = None,
        feature_names: list[str] | None = None,
        **config_overrides: Any,
    ) -> SweepResult:
        """Run one seeded search per seed; see :class:`SweepResult`.

        Every per-seed result is bit-identical to
        ``api.search(X, y, task, config=replace(config, seed=s))`` run
        serially (``n_downstream_calls`` aside — the shared cache may save
        real CV runs).
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("seeds must be non-empty")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"seeds must be unique, got {seeds}")
        cfg = resolve_config(config, config_overrides)
        jobs = [
            (f"seed={s}", X, y, task, feature_names, replace(cfg, seed=s))
            for s in seeds
        ]
        by_label = self._run_jobs(jobs)
        return SweepResult(
            task=task,
            seeds=seeds,
            results={s: by_label[f"seed={s}"] for s in seeds},
        )

    def run_batch(
        self,
        jobs: Iterable,
        *,
        config: FastFTConfig | None = None,
        **config_overrides: Any,
    ) -> dict[str, FastFTResult]:
        """Run FastFT over several datasets; ``{name: result}`` in input order.

        ``jobs`` accepts the same shapes as :func:`repro.api.run_batch`
        (Dataset-like objects, mappings, ``(name, X, y, task)`` tuples).
        Duplicate names are rejected up front — before any search runs —
        so the serial and parallel paths fail fast identically.
        """
        cfg = resolve_config(config, config_overrides)
        specs = []
        seen: set[str] = set()
        for job in jobs:
            name, X, y, task, feature_names = job_fields(job)
            if name in seen:
                raise ValueError(f"Duplicate job name {name!r} in batch")
            seen.add(name)
            specs.append((name, X, y, task, feature_names, cfg))
        if not specs:
            return {}
        return self._run_jobs(specs)

    # -- execution -------------------------------------------------------------

    def _resolve_workers(self, n_tasks: int) -> int:
        n = os.cpu_count() or 1 if self.n_jobs == -1 else self.n_jobs
        return max(1, min(n, n_tasks))

    def _run_jobs(self, specs: list[tuple]) -> dict[str, FastFTResult]:
        """specs: (label, X, y, task, feature_names, config) per job."""
        n_workers = self._resolve_workers(len(specs))
        if n_workers > 1:
            results = self._run_pool(specs, n_workers)
            if results is not None:
                return results
        return self._run_serial(specs)

    def _run_serial(self, specs: list[tuple]) -> dict[str, FastFTResult]:
        cache = self.cache if self.cache is not None else EvaluationCache()
        results: dict[str, FastFTResult] = {}
        for label, X, y, task, feature_names, config in specs:
            local_callbacks = (
                list(self.callbacks_factory(label)) if self.callbacks_factory else []
            )
            payload = {
                "label": label,
                "data": (X, y),
                "task": task,
                "feature_names": feature_names,
                "config": config,
                "cache": cache,
                "time_budget": self.time_budget,
                "events": None,
                "local_callbacks": local_callbacks,
            }
            results[label] = _execute_job(payload)[1]
        return results

    def _run_pool(
        self, specs: list[tuple], n_workers: int
    ) -> dict[str, FastFTResult] | None:
        """Pooled execution; returns None to demote to the serial path."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = multiprocessing.get_context("fork")
            ship_data = False  # workers fork below, inheriting _shared_job_data
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context("spawn")
            ship_data = True

        # One manager per run hosts the shared cache and the event queue;
        # it is shut down before returning unless the caller owns the cache.
        manager = None
        if isinstance(self.cache, SharedEvaluationCache):
            shared = self.cache
        else:
            manager = multiprocessing.Manager()
            shared = SharedEvaluationCache(manager=manager)
            if self.cache is not None:
                shared.seed_from(self.cache)

        sinks: dict[str, CallbackList] = {}
        events = None
        if self.callbacks_factory is not None:
            if manager is None:
                manager = multiprocessing.Manager()
            events = manager.Queue()
            for label, *_ in specs:
                sinks[label] = CallbackList(self.callbacks_factory(label))

        token = _next_run_token()
        payloads = []
        for label, X, y, task, feature_names, config in specs:
            payloads.append(
                {
                    "label": label,
                    "token": token,
                    "data": (np.asarray(X), np.asarray(y)) if ship_data else None,
                    "task": task,
                    "feature_names": feature_names,
                    "config": config,
                    "cache": shared,
                    "time_budget": self.time_budget,
                    "events": events,
                    "local_callbacks": None,
                }
            )

        try:
            # The arrays are numpy (always picklable) and identical in kind
            # across payloads, so one probe with the data stripped covers
            # every pickling failure mode at O(1) cost.
            probe = {k: v for k, v in payloads[0].items() if k != "data"}
            if not _payload_ok(probe):
                return None

            for label, X, y, *_ in specs:
                _shared_job_data[(token, label)] = (np.asarray(X), np.asarray(y))
            pump = None
            try:
                with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
                    # map() submits every payload eagerly, so the workers
                    # fork here — before the drain thread starts (a
                    # multi-threaded fork is where deadlocks live).
                    it = pool.map(_execute_job, payloads)
                    if events is not None:
                        pump = _EventPump(events, sinks)
                        pump.start()
                    ordered = list(it)
            finally:
                for label, *_ in specs:
                    _shared_job_data.pop((token, label), None)
                if pump is not None:
                    pump.finish()

            results = dict(ordered)
            if events is not None:
                # on_finish fires once per job, in submission order, after
                # every relayed event has been dispatched.
                for label, *_ in specs:
                    view = pump.last_view.get(label)
                    if view is not None:
                        sinks[label].on_finish(view, results[label])
                if pump.errors:
                    raise pump.errors[0]

            if isinstance(self.cache, EvaluationCache):
                shared.merge_into(self.cache)
            return results
        finally:
            if manager is not None:
                manager.shutdown()
