"""Cascading reinforcement agents (Definition 3, §III-B, Fig 3d).

Three agents act in sequence each exploration step:

1. **Head agent** — picks the head feature cluster from
   ``π_h(Rep(C_i) ⊕ Rep(F̂))``.
2. **Operation agent** — picks o ∈ O from ``π_o(Rep(a_h) ⊕ Rep(F̂))``.
3. **Tail agent** — for binary o, picks the tail cluster from
   ``π_t(Rep(a_h) ⊕ Rep(F̂) ⊕ Rep(o) ⊕ Rep(C_i))``.

Each agent owns a learner (Actor-Critic by default; DQN family for the
Fig 7 ablation) and a replay buffer (TD-prioritized by default; uniform for
the −RCT ablation). All three share the step reward.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import STATE_DIM, rep_operation
from repro.rl.dqn import make_learner
from repro.rl.replay import PrioritizedReplayBuffer, ReplayBuffer, Transition

__all__ = ["CascadingAgents", "StepDecision"]


class StepDecision:
    """The three cascaded choices of one exploration step, with the state
    vectors needed to build replay transitions afterwards."""

    __slots__ = (
        "head_index",
        "op_index",
        "tail_index",
        "head_state",
        "op_state",
        "tail_state",
        "cluster_reps",
        "op_candidates",
    )

    def __init__(self) -> None:
        self.head_index: int | None = None
        self.op_index: int | None = None
        self.tail_index: int | None = None
        self.head_state: np.ndarray | None = None
        self.op_state: np.ndarray | None = None
        self.tail_state: np.ndarray | None = None
        self.cluster_reps: np.ndarray | None = None
        self.op_candidates: np.ndarray | None = None


class CascadingAgents:
    """Bundle of the three learners + buffers with a shared optimize step."""

    def __init__(
        self,
        n_ops: int,
        framework: str = "actor_critic",
        hidden: int = 64,
        lr: float = 1e-3,
        gamma: float = 0.95,
        entropy_coef: float = 0.01,
        memory_size: int = 16,
        replay_batch_size: int = 8,
        prioritized: bool = True,
        per_alpha: float = 0.6,
        per_beta: float = 0.4,
        seed: int | None = 0,
    ) -> None:
        self.n_ops = n_ops
        self.replay_batch_size = replay_batch_size
        base = 0 if seed is None else seed

        def build(role: int, state_dim: int, candidate_dim: int):
            kwargs: dict = {"hidden": hidden, "lr": lr, "gamma": gamma}
            if framework in ("actor_critic", "ac"):
                kwargs["entropy_coef"] = entropy_coef
            return make_learner(
                framework,
                state_dim,
                candidate_dim,
                seed=None if seed is None else base + role,
                **kwargs,
            )

        # State layouts (see module docstring).
        self.head = build(1, STATE_DIM, STATE_DIM)
        self.op = build(2, 2 * STATE_DIM, n_ops)
        self.tail = build(3, 2 * STATE_DIM + n_ops, STATE_DIM)

        def buffer(role: int):
            buffer_seed = None if seed is None else base + 10 + role
            if prioritized:
                return PrioritizedReplayBuffer(
                    memory_size, alpha=per_alpha, beta=per_beta, seed=buffer_seed
                )
            return ReplayBuffer(memory_size, seed=buffer_seed)

        self.buffers = {"head": buffer(1), "op": buffer(2), "tail": buffer(3)}
        self._learners = {"head": self.head, "op": self.op, "tail": self.tail}

    # -- acting -----------------------------------------------------------------

    def decide(
        self,
        overall_rep: np.ndarray,
        cluster_reps: np.ndarray,
        is_binary: "callable",
        greedy: bool = False,
    ) -> StepDecision:
        """Run the cascade: head → operation → (tail if binary).

        ``is_binary(op_index) -> bool`` lets the caller keep the operation
        table; the tail agent only runs for binary operations.
        """
        cluster_reps = np.atleast_2d(cluster_reps)
        decision = StepDecision()
        decision.cluster_reps = cluster_reps

        decision.head_state = overall_rep
        decision.head_index = self.head.select(overall_rep, cluster_reps, greedy=greedy)
        head_rep = cluster_reps[decision.head_index]

        decision.op_state = np.concatenate([overall_rep, head_rep])
        decision.op_candidates = np.eye(self.n_ops)
        decision.op_index = self.op.select(
            decision.op_state, decision.op_candidates, greedy=greedy
        )

        if is_binary(decision.op_index):
            op_onehot = rep_operation(decision.op_index, self.n_ops)
            decision.tail_state = np.concatenate([overall_rep, head_rep, op_onehot])
            decision.tail_index = self.tail.select(
                decision.tail_state, cluster_reps, greedy=greedy
            )
        return decision

    # -- remembering -----------------------------------------------------------------

    def store(
        self,
        decision: StepDecision,
        reward: float,
        next_overall_rep: np.ndarray,
        next_cluster_reps: np.ndarray,
        done: bool,
        payload_extra: dict | None = None,
    ) -> float:
        """Store one transition per participating agent; returns the mean
        |TD error| used as the step's priority (Eq. 10)."""
        next_cluster_reps = np.atleast_2d(next_cluster_reps)
        head_rep = decision.cluster_reps[decision.head_index]
        zeros_like_overall = np.zeros(STATE_DIM)
        extra = payload_extra or {}

        transitions = []
        transitions.append(
            (
                "head",
                Transition(
                    state=decision.head_state,
                    action_vec=head_rep,
                    reward=reward,
                    next_state=next_overall_rep,
                    next_candidates=next_cluster_reps,
                    done=done,
                    payload={
                        "candidates": decision.cluster_reps,
                        "action_index": decision.head_index,
                        **extra,
                    },
                ),
            )
        )
        op_next_state = np.concatenate([next_overall_rep, zeros_like_overall])
        transitions.append(
            (
                "op",
                Transition(
                    state=decision.op_state,
                    action_vec=decision.op_candidates[decision.op_index],
                    reward=reward,
                    next_state=op_next_state,
                    next_candidates=decision.op_candidates,
                    done=done,
                    payload={
                        "candidates": decision.op_candidates,
                        "action_index": decision.op_index,
                        **extra,
                    },
                ),
            )
        )
        if decision.tail_index is not None:
            tail_next_state = np.concatenate(
                [next_overall_rep, zeros_like_overall, np.zeros(self.n_ops)]
            )
            transitions.append(
                (
                    "tail",
                    Transition(
                        state=decision.tail_state,
                        action_vec=decision.cluster_reps[decision.tail_index],
                        reward=reward,
                        next_state=tail_next_state,
                        next_candidates=next_cluster_reps,
                        done=done,
                        payload={
                            "candidates": decision.cluster_reps,
                            "action_index": decision.tail_index,
                            **extra,
                        },
                    ),
                )
            )

        errors = []
        for role, transition in transitions:
            delta = self._learners[role].td_error(transition)
            self.buffers[role].add(transition, priority=abs(delta))
            errors.append(abs(delta))
        return float(np.mean(errors))

    # -- learning -----------------------------------------------------------------

    def optimize(self) -> dict[str, float]:
        """One replay-driven update per agent whose buffer has a batch."""
        losses: dict[str, float] = {}
        for role, learner in self._learners.items():
            buf = self.buffers[role]
            if len(buf) < min(self.replay_batch_size, buf.capacity):
                continue
            batch, indices, weights = buf.sample(self.replay_batch_size)
            out = learner.update(batch, weights)
            buf.update_priorities(indices, out["td_errors"])
            losses[f"{role}_critic"] = out["critic_loss"]
            losses[f"{role}_actor"] = out["actor_loss"]
        return losses
