"""Crash-safe filesystem primitives shared by every durable-state writer.

The repo's crash-only contract — any process may die at any instruction
and a restart converges to the same result — rests on one discipline:
durable files are never written in place. A writer stages the complete
payload in a temporary sibling, flushes it to the device, and publishes
it with ``os.replace`` (atomic on POSIX within one filesystem), so a
reader can only ever observe *no file* or the *complete* file, never a
torn prefix. The directory entry itself is fsynced afterwards so the
rename survives a power loss too.

Used by :meth:`repro.core.session.SearchSession.checkpoint`,
:meth:`repro.core.result.FastFTResult.save`, and throughout
:mod:`repro.jobs` (specs, leases, results, failure markers).
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_dir"]


def fsync_dir(path: str) -> None:
    """fsync a directory so a just-published rename survives power loss.

    Silently skipped where directories cannot be opened for reading
    (some non-POSIX filesystems); the rename itself is still atomic.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *, fsync: bool = True) -> None:
    """Publish ``data`` at ``path`` atomically (tmp + fsync + ``os.replace``).

    The temporary file lives in the destination directory (``os.replace``
    is only atomic within one filesystem) and is removed on any failure,
    so a crashed writer leaves the previous version of ``path`` — or its
    absence — fully intact.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(directory)


def atomic_write_text(path: str, text: str, *, fsync: bool = True) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
