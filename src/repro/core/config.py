"""FastFT configuration: every hyper-parameter of §V plus ablation toggles.

Paper defaults: 200 episodes × 15 steps, cold start ends at episode 10,
components re-train every 5 episodes, α=10 (performance percentile), β=5
(novelty percentile), novelty weight 0.1→0.005 over M=1000 steps, replay
size S=16, LSTM(2 layers, emb 32) predictor with FC(16,1) head, novelty
estimator FC(16,4,1) with orthogonal gain 16.

The defaults below are the paper's; tests and benches pass scaled-down
profiles (fewer episodes/steps, smaller forests) via keyword overrides.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = ["FastFTConfig"]

# Tuple-typed fields that JSON round-trips as lists.
_TUPLE_FIELDS = ("predictor_head_dims", "novelty_head_dims")


@dataclass
class FastFTConfig:
    # -- exploration schedule (§V Hyperparameter 1) --
    episodes: int = 200
    steps_per_episode: int = 15
    cold_start_episodes: int = 10
    retrain_every_episodes: int = 5
    component_epochs: int = 20

    # -- adaptive downstream triggering (§III-D) --
    # α: top-percentile of predicted performance that triggers real evaluation.
    # β: top-percentile of novelty that triggers real evaluation.
    alpha: float = 10.0
    beta: float = 5.0
    trigger_window: int = 256
    trigger_warmup: int = 8  # min window length before percentiles apply

    # -- novelty reward schedule (Eq. 6) --
    novelty_weight_start: float = 0.10
    novelty_weight_end: float = 0.005
    novelty_decay_steps: int = 1000

    # -- prioritized experience replay (§V Hyperparameter 2, Eq. 10) --
    memory_size: int = 16
    replay_batch_size: int = 8
    per_alpha: float = 0.6
    per_beta: float = 0.4

    # -- evaluation components (§V Hyperparameters 3 & 4) --
    seq_model: str = "lstm"  # lstm | rnn | transformer (Fig 8)
    embed_dim: int = 32
    hidden_dim: int = 32
    encoder_layers: int = 2
    predictor_head_dims: tuple[int, ...] = (16, 1)
    novelty_head_dims: tuple[int, ...] = (16, 4, 1)
    orthogonal_gain: float = 16.0
    component_lr: float = 1e-3
    max_seq_len: int = 96
    eval_record_cap: int = 256

    # -- cascading agents --
    rl_framework: str = "actor_critic"  # + dqn / double_dqn / dueling_(double_)dqn (Fig 7)
    agent_hidden: int = 64
    agent_lr: float = 1e-3
    gamma: float = 0.95
    entropy_coef: float = 0.01

    # -- feature space management --
    max_features: int | None = None  # default: max(3 × original, original + 8)
    max_new_per_step: int = 12
    cluster_threshold: float | str = "auto"
    max_clusters: int | None = 8
    mi_bins: int = 8
    mi_max_rows: int = 256
    feature_slots: int = 512

    # -- downstream oracle --
    cv_splits: int = 5
    rf_estimators: int = 10
    rf_max_depth: int | None = 8
    # Split-engine for the oracle's random forest: "presort" (vectorized,
    # bit-identical to the reference) or "naive" (the reference itself).
    oracle_engine: str = "presort"
    # Worker processes for fold-parallel CV (1 = serial, -1 = all cores).
    cv_jobs: int = 1
    # Search inner-loop implementation: "arena" (columnar FeatureSpace
    # arena + incremental state/MI caches + fused estimation passes,
    # bit-identical to the reference) or "naive" (the seed implementation,
    # kept as the reference arm of benchmarks/test_search_throughput.py).
    inner_loop: str = "arena"
    # Oracle scheduling: "serial" runs triggered evaluations inside the
    # step (the paper's timeline and the pinned GOLDEN_DIGESTS arm);
    # "async" defers them to an AsyncOracle pool while the search advances
    # on φ estimates, reconciling every `reconcile_every_k` global steps
    # (a *different* trajectory with its own goldens — see
    # repro.core.async_oracle for the determinism contract).
    oracle_mode: str = "serial"
    reconcile_every_k: int = 4
    # AsyncOracle pool size (0 = inline reference arm, -1 = all cores),
    # per-attempt deadline in seconds (None = none) and how many times a
    # crashed/timed-out evaluation is retried before degrading to the
    # predictor-estimated score.
    oracle_workers: int = 2
    oracle_timeout: float | None = None
    oracle_retries: int = 1

    # -- ablation toggles (Fig 6) --
    use_performance_predictor: bool = True  # False → FastFT−PP
    use_novelty: bool = True  # False → FastFT−NE
    prioritized_replay: bool = True  # False → FastFT−RCT

    # -- misc --
    seed: int | None = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.episodes < 1 or self.steps_per_episode < 1:
            raise ValueError("episodes and steps_per_episode must be >= 1")
        if not 0 <= self.cold_start_episodes <= self.episodes:
            raise ValueError("cold_start_episodes must lie within [0, episodes]")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative percentiles")
        if self.trigger_window < 1:
            raise ValueError("trigger_window must be >= 1")
        # With triggering active, warmup 0 would take a percentile over an
        # empty window on the first exploration step; only the degenerate
        # α=β=0 arm (Fig 12) may skip the warmup entirely.
        if self.alpha > 0 or self.beta > 0:
            if self.trigger_warmup < 1:
                raise ValueError("trigger_warmup must be >= 1 when alpha > 0 or beta > 0")
            # The warmup is measured against window length; a warmup the
            # window can never reach would silently trigger a real
            # evaluation on every step forever.
            if self.trigger_warmup > self.trigger_window:
                raise ValueError(
                    "trigger_warmup must not exceed trigger_window "
                    f"({self.trigger_warmup} > {self.trigger_window})"
                )
        if self.novelty_decay_steps < 1:
            raise ValueError("novelty_decay_steps must be >= 1")
        if self.memory_size < 1:
            raise ValueError("memory_size must be >= 1")
        if self.replay_batch_size < 1:
            raise ValueError("replay_batch_size must be >= 1")
        if self.replay_batch_size > self.memory_size:
            raise ValueError(
                "replay_batch_size must not exceed memory_size "
                f"({self.replay_batch_size} > {self.memory_size})"
            )
        if self.seq_model not in ("lstm", "rnn", "transformer"):
            raise ValueError("seq_model must be lstm, rnn or transformer")
        if self.oracle_engine not in ("naive", "presort"):
            raise ValueError("oracle_engine must be 'naive' or 'presort'")
        if self.inner_loop not in ("arena", "naive"):
            raise ValueError("inner_loop must be 'arena' or 'naive'")
        if self.cv_jobs < 1 and self.cv_jobs != -1:
            raise ValueError("cv_jobs must be >= 1 or -1 (all cores)")
        if self.oracle_mode not in ("serial", "async"):
            raise ValueError("oracle_mode must be 'serial' or 'async'")
        if self.reconcile_every_k < 1:
            raise ValueError("reconcile_every_k must be >= 1")
        if self.oracle_workers < 0 and self.oracle_workers != -1:
            raise ValueError("oracle_workers must be >= 0 or -1 (all cores)")
        if self.oracle_timeout is not None and self.oracle_timeout <= 0:
            raise ValueError("oracle_timeout must be positive or None")
        if self.oracle_retries < 0:
            raise ValueError("oracle_retries must be >= 0")

    def resolved_max_features(self, n_original: int) -> int:
        if self.max_features is not None:
            return max(self.max_features, n_original)
        return max(3 * n_original, n_original + 8)

    # -- JSON round-trip (result files, repro.jobs sweep specs) -----------------

    def to_jsonable(self) -> dict:
        """Plain-JSON representation (tuples become lists)."""
        return {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in asdict(self).items()
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FastFTConfig":
        """Rebuild from :meth:`to_jsonable` output.

        Unknown keys are dropped (a spec written by a newer build still
        loads, minus the fields this build does not know about), and the
        tuple-typed head-dims fields are converted back from lists.
        """
        known = {f.name for f in fields(cls)}
        raw = {k: v for k, v in payload.items() if k in known}
        for key in _TUPLE_FIELDS:
            if key in raw and raw[key] is not None:
                raw[key] = tuple(raw[key])
        return cls(**raw)
