"""Observer protocol for :class:`repro.core.session.SearchSession`.

A callback receives every lifecycle event of a search session:

- ``on_search_start(session)`` — after the base score is measured;
- ``on_episode_start(session, episode)`` — a fresh feature space was built;
- ``on_step(session, record)`` — one exploration step finished;
- ``on_real_evaluation(session, record)`` — the step invoked the downstream
  oracle (cold start, adaptive trigger, or the −PP ablation);
- ``on_reconcile(session, landed, degraded)`` — an async-oracle reconcile
  point drained its pending evaluations: ``landed`` real scores arrived,
  ``degraded`` submissions fell back to their predictor estimates
  (``oracle_mode="async"`` only — deferred steps never fire
  ``on_real_evaluation``);
- ``on_retrain(session, episode, stage)`` — φ/ψ were (re)fitted; ``stage`` is
  ``"cold_start"`` for the Algorithm 1 hand-off and ``"fine_tune"`` after;
- ``on_episode_end(session, episode)`` — the episode's last step finished;
- ``on_finish(session, result)`` — the session produced its final result.

Callbacks may call :meth:`SearchSession.request_stop` from any hook to end
the search early; the session still returns a complete
:class:`~repro.core.result.FastFTResult` for the work done so far.

Built-ins cover the common needs: :class:`VerboseLogger` (the engine's old
``verbose=True`` output), :class:`TimeBudget`, :class:`EarlyStopping`,
:class:`HistoryCollector`, and :class:`Checkpointer` (periodic
``session.checkpoint(path)`` for crash-safe long runs).
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.result import FastFTResult, StepRecord
    from repro.core.session import SearchSession

__all__ = [
    "Callback",
    "CallbackList",
    "VerboseLogger",
    "TimeBudget",
    "EarlyStopping",
    "HistoryCollector",
    "Checkpointer",
]


class Callback:
    """No-op base class; subclass and override the hooks you need."""

    def on_search_start(self, session: "SearchSession") -> None:
        """Called once, after the base feature set has been scored."""

    def on_episode_start(self, session: "SearchSession", episode: int) -> None:
        """Called when an episode's fresh feature space is ready."""

    def on_step(self, session: "SearchSession", record: "StepRecord") -> None:
        """Called after every exploration step."""

    def on_real_evaluation(self, session: "SearchSession", record: "StepRecord") -> None:
        """Called after steps that ran the expensive downstream oracle."""

    def on_reconcile(self, session: "SearchSession", landed: int, degraded: int) -> None:
        """Called after an async reconcile point drained pending evaluations."""

    def on_retrain(self, session: "SearchSession", episode: int, stage: str) -> None:
        """Called after φ/ψ training; ``stage`` is ``cold_start`` or ``fine_tune``."""

    def on_episode_end(self, session: "SearchSession", episode: int) -> None:
        """Called after the episode's final step (and any retraining)."""

    def on_finish(self, session: "SearchSession", result: "FastFTResult") -> None:
        """Called once with the session's final result."""


class CallbackList(Callback):
    """Fans every event out to a list of callbacks (in order)."""

    def __init__(self, callbacks: Iterable[Callback] | None = None) -> None:
        self.callbacks: list[Callback] = list(callbacks or [])

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_search_start(self, session) -> None:
        for cb in self.callbacks:
            cb.on_search_start(session)

    def on_episode_start(self, session, episode) -> None:
        for cb in self.callbacks:
            cb.on_episode_start(session, episode)

    def on_step(self, session, record) -> None:
        for cb in self.callbacks:
            cb.on_step(session, record)

    def on_real_evaluation(self, session, record) -> None:
        for cb in self.callbacks:
            cb.on_real_evaluation(session, record)

    def on_reconcile(self, session, landed, degraded) -> None:
        for cb in self.callbacks:
            cb.on_reconcile(session, landed, degraded)

    def on_retrain(self, session, episode, stage) -> None:
        for cb in self.callbacks:
            cb.on_retrain(session, episode, stage)

    def on_episode_end(self, session, episode) -> None:
        for cb in self.callbacks:
            cb.on_episode_end(session, episode)

    def on_finish(self, session, result) -> None:
        for cb in self.callbacks:
            cb.on_finish(session, result)


class VerboseLogger(Callback):
    """Prints the engine's classic per-episode progress lines."""

    def __init__(self, stream=None) -> None:
        self._stream = stream

    def _print(self, message: str) -> None:
        print(message, file=self._stream if self._stream is not None else sys.stdout)

    def on_reconcile(self, session, landed, degraded) -> None:
        if degraded:
            self._print(
                f"[FastFT] reconcile @ step {session.global_step}: "
                f"{landed} real score(s) landed, {degraded} degraded to estimates"
            )

    def on_retrain(self, session, episode, stage) -> None:
        label = "cold-start training" if stage == "cold_start" else "fine-tuning"
        self._print(f"[FastFT] episode {episode}: component {label} done")

    def on_episode_end(self, session, episode) -> None:
        self._print(
            f"[FastFT] episode {episode}: best={session.best_score:.4f} "
            f"evals={session.n_downstream_calls} features={session.n_features}"
        )

    def on_finish(self, session, result) -> None:
        self._print(
            f"[FastFT] finished: base={result.base_score:.4f} "
            f"best={result.best_score:.4f} evals={result.n_downstream_calls}"
        )


class TimeBudget(Callback):
    """Stops the search once ``seconds`` of wall time have elapsed.

    The budget is checked after every step, so one slow downstream
    evaluation can overshoot it by at most a single step's cost.
    """

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self.seconds = float(seconds)
        self._started: float | None = None

    @property
    def elapsed(self) -> float:
        return 0.0 if self._started is None else time.perf_counter() - self._started

    def on_search_start(self, session) -> None:
        self._started = time.perf_counter()

    def on_step(self, session, record) -> None:
        if self._started is None:  # resumed session: budget restarts here
            self._started = time.perf_counter()
        if self.elapsed >= self.seconds:
            session.request_stop(f"time budget of {self.seconds:.1f}s exhausted")


class EarlyStopping(Callback):
    """Stops after ``patience`` episodes without ``min_delta`` improvement
    of the best real downstream score."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = float(min_delta)
        self._best: float | None = None
        self._stale_episodes = 0

    def on_episode_end(self, session, episode) -> None:
        score = session.best_score
        if self._best is None or score > self._best + self.min_delta:
            self._best = score
            self._stale_episodes = 0
            return
        self._stale_episodes += 1
        if self._stale_episodes >= self.patience:
            session.request_stop(
                f"no improvement > {self.min_delta} for {self.patience} episodes"
            )


class HistoryCollector(Callback):
    """Accumulates step records and per-episode summaries as they happen.

    Useful for live dashboards and for harnesses that want streaming access
    to the history without waiting for the final result object.
    """

    def __init__(self) -> None:
        self.records: list[StepRecord] = []
        self.episodes: list[dict] = []
        self.retrain_events: list[tuple[int, str]] = []
        self.n_real_evaluations = 0
        self._episode_boundary = 0  # records[] index where the episode began

    def on_step(self, session, record) -> None:
        self.records.append(record)

    def on_real_evaluation(self, session, record) -> None:
        self.n_real_evaluations += 1

    def on_retrain(self, session, episode, stage) -> None:
        self.retrain_events.append((episode, stage))

    def on_episode_end(self, session, episode) -> None:
        self.episodes.append(
            {
                "episode": episode,
                "steps": len(self.records) - self._episode_boundary,
                "best_score": session.best_score,
                "n_features": session.n_features,
                "n_downstream_calls": session.n_downstream_calls,
            }
        )
        self._episode_boundary = len(self.records)


class Checkpointer(Callback):
    """Writes ``session.checkpoint(path)`` every ``every_episodes`` episodes
    (and on finish), so long searches survive crashes and preemption."""

    def __init__(self, path: str, every_episodes: int = 1) -> None:
        if every_episodes < 1:
            raise ValueError("every_episodes must be >= 1")
        self.path = path
        self.every_episodes = every_episodes
        self.n_checkpoints = 0

    def on_episode_end(self, session, episode) -> None:
        if (episode + 1) % self.every_episodes == 0:
            session.checkpoint(self.path)
            self.n_checkpoints += 1

    def on_finish(self, session, result) -> None:
        session.checkpoint(self.path)
        self.n_checkpoints += 1
