"""Asynchronous downstream oracle: overlap real evaluation with search.

The paper replaces most downstream evaluations with the predictor φ, but
the evaluations that *do* trigger still block the step loop: a step's
Table II cost is optimization + estimation + evaluation in sequence. The
:class:`AsyncOracle` decouples the oracle from the step machine — triggered
evaluations are submitted to a pool of persistent worker processes while
:class:`~repro.core.session.SearchSession` keeps advancing on φ estimates,
and the real scores land at pinned reconcile points. With enough workers,
s/episode approaches max(buckets) instead of their sum.

Determinism contract
--------------------
Worker timing never touches the trajectory. Submissions are resolved in
submission order, and the session only consumes them at schedule-pinned
reconcile points (every ``reconcile_every_k`` global steps, episode end,
``result()``, ``checkpoint()``). Scores are exact — the workers run the
same :class:`~repro.ml.evaluation.DownstreamEvaluator` — so a pooled run
is bit-identical to the *inline reference arm* (``n_workers=0``), which
evaluates the same deferred queue serially at each reconcile point. That
inline arm is the definition of ``oracle_mode="async"`` semantics and is
what the async golden digests pin.

Failure contract
----------------
A submission that crashes, or exceeds ``timeout`` seconds, is retried at
most ``retries`` times on a fresh worker; past that it *degrades*: the
outcome comes back ``ok=False`` with a :class:`RuntimeWarning`, and the
session keeps the predictor-estimated score for that step. A hung or dead
worker is terminated and respawned — drain never deadlocks on it.

Cache discipline (PR 4)
-----------------------
A :class:`~repro.ml.cache.CachedEvaluator` front is honored on both arms:
the content-signature cache is consulted at submission time and updated
when real scores land, and a :class:`~repro.ml.cache.SharedEvaluationCache`
is shipped to the workers so concurrent submissions share one memo. Cache
hits can shrink ``n_downstream_calls`` — never change scores.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import pickle
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.ml.cache import CachedEvaluator, SharedEvaluationCache

__all__ = ["AsyncOracle", "EvalOutcome"]

# How often the drain loop wakes to check worker health while waiting.
_POLL_SECONDS = 0.05
# Grace period before concluding that an unclaimed task vanished with a
# killed worker (the get()→claim window is microseconds of library code,
# so this is a last-resort liveness backstop, not a normal path).
_STALL_SECONDS = 5.0


@dataclass
class EvalOutcome:
    """One resolved submission, in submission order.

    ``ok=False`` means the evaluation degraded (crash/timeout past the
    retry budget): ``score`` is ``None`` and the caller should keep its
    predictor-estimated score for that step.
    """

    ticket: int
    score: float | None
    ok: bool
    n_calls: int = 0
    attempts: int = 1
    error: str | None = None


def _worker_loop(evaluator_blob, y, shared_cache, tasks, results):
    """Persistent worker: claim a ticket, evaluate, report.

    The claim message lets the parent enforce per-submission deadlines
    (it knows *when* each ticket actually started); evaluator exceptions
    are reported rather than raised so the process survives for the next
    task. ``None`` is the shutdown pill.

    ``results`` is this worker's *own* pipe connection, not a shared
    queue, and that is load-bearing: ``Connection.send`` writes in the
    calling thread (no feeder thread) and our messages are far below the
    atomic-pipe-write size, so a worker hard-killed mid-task (``os._exit``,
    OOM killer) can only ever corrupt its own channel — a shared
    ``multiprocessing.Queue`` writer dying while holding the queue's
    write lock would wedge every other worker's reports forever.
    """
    evaluator = pickle.loads(evaluator_blob)
    if shared_cache is not None:
        evaluator = shared_cache.wrap(evaluator)
    while True:
        item = tasks.get()
        if item is None:
            return
        ticket, X = item
        results.send(("start", ticket, None))
        try:
            before = getattr(evaluator, "n_calls", None)
            score = float(evaluator(X, y))
            n_new = 1 if before is None else max(0, evaluator.n_calls - before)
            results.send(("done", ticket, (score, n_new)))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            results.send(("fail", ticket, repr(exc)))


class AsyncOracle:
    """Submit/drain front over a pool of evaluator worker processes.

    Parameters
    ----------
    evaluator:
        The downstream oracle (optionally a
        :class:`~repro.ml.cache.CachedEvaluator`; the cache front is
        unwrapped and honored on the parent side).
    y:
        The target vector every submission is evaluated against.
    n_workers:
        Pool size. ``0`` selects the inline reference arm (deferred
        submissions evaluated serially at drain — the determinism
        baseline); ``-1`` means all cores. An unpicklable evaluator also
        falls back to inline, with a :class:`RuntimeWarning`.
    timeout:
        Per-attempt deadline in seconds (``None`` = no deadline; crashed
        workers are still detected and retried).
    retries:
        How many times a crashed/timed-out submission is re-queued before
        degrading to ``ok=False``.
    """

    def __init__(
        self,
        evaluator,
        y: np.ndarray,
        n_workers: int = 2,
        timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        self._y = np.asarray(y)
        self._timeout = timeout
        self._retries = int(retries)
        self._pending: dict[int, dict] = {}
        self._next_ticket = 0
        self._workers: dict[int, multiprocessing.Process] = {}
        self._conns: dict[int, mp_connection.Connection] = {}
        self._claims: dict[int, tuple[int, float]] = {}
        self._next_worker_id = 0
        self._ctx = None
        self._tasks = None
        # Observability (repro.obs): a parent-side tracer records queue
        # telemetry — submit/land latencies, queue depth, per-worker
        # utilization, degradations. Never pickled, never shipped to the
        # workers, and every hook is a no-op when no tracer is attached.
        self._tracer = None

        # Unwrap a cache front: the parent consults/updates the cache, the
        # raw evaluator ships to the workers (a shared cache ships too).
        self._cache = None
        self._fingerprint = b""
        inner = evaluator
        if isinstance(evaluator, CachedEvaluator):
            self._cache = evaluator.cache
            self._fingerprint = evaluator.fingerprint
            inner = evaluator.evaluator
        self._inner = inner
        # Workers must not nest process pools: a fold-parallel evaluator
        # is demoted to serial CV inside the pool (scores unchanged).
        worker_eval = inner.for_worker() if hasattr(inner, "for_worker") else inner
        self._shared_cache = self._cache if isinstance(self._cache, SharedEvaluationCache) else None

        n_workers = int(n_workers)
        if n_workers < 0:
            n_workers = multiprocessing.cpu_count()
        self.n_workers = n_workers
        self._inline = n_workers == 0
        if self._inline:
            return
        try:
            self._blob = pickle.dumps(worker_eval)
        except Exception:
            warnings.warn(
                "AsyncOracle: evaluator is not picklable; degrading to the "
                "inline reference arm (deferred, evaluated at reconcile)",
                RuntimeWarning,
                stacklevel=2,
            )
            self._inline = True
            self.n_workers = 0
            return
        # Fork-preferred, spawn-fallback — same discipline as
        # repro.core.parallel: fork inherits the parent's numpy state
        # cheaply; spawn ships the pickled payload through Process args.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context("spawn")
        self._ctx = ctx
        self._tasks = ctx.Queue()
        for _ in range(n_workers):
            self._spawn_worker()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def inline(self) -> bool:
        """True when running the serial reference arm (no worker pool)."""
        return self._inline

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` (``None`` detaches)."""
        self._tracer = tracer

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def _spawn_worker(self) -> None:
        wid = self._next_worker_id
        self._next_worker_id += 1
        # One result pipe per worker: a hard-killed writer cannot wedge or
        # corrupt anyone else's channel (see _worker_loop). The parent
        # closes its copy of the send end so a dead worker reads as EOF.
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(self._blob, self._y, self._shared_cache, self._tasks, send_conn),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        self._workers[wid] = proc
        self._conns[wid] = recv_conn

    def shutdown(self) -> None:
        """Stop the pool (idempotent). Pending submissions are discarded."""
        self._pending.clear()
        if self._inline or not self._workers:
            self._workers = {}
            return
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except Exception:  # pragma: no cover - queue already torn down
                break
        for proc in self._workers.values():
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._workers = {}
        for conn in self._conns.values():
            try:
                conn.close()
            except Exception:  # pragma: no cover
                pass
        self._conns = {}
        try:
            self._tasks.close()
            self._tasks.cancel_join_thread()
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "AsyncOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown varies
        try:
            self.shutdown()
        except Exception:
            pass

    # -- submit / drain ----------------------------------------------------------

    def submit(self, X: np.ndarray) -> int:
        """Queue one evaluation; returns its ticket.

        The attached cache (if any) is consulted here, on both arms, so
        cache behavior does not depend on pool size: a hit resolves the
        ticket immediately with ``n_calls=0``.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        entry: dict = {"X": None, "key": None, "attempts": 0, "resolved": None}
        tracer = self._tracer
        if tracer is not None:
            entry["t_submit"] = time.perf_counter()
            tracer.count("oracle.submitted")
        if self._cache is not None:
            key = self._cache.signature(X, self._y, self._fingerprint)
            entry["key"] = key
            cached = self._cache.get(key)
            if cached is not None:
                entry["resolved"] = EvalOutcome(ticket, float(cached), True, n_calls=0, attempts=0)
                self._pending[ticket] = entry
                if tracer is not None:
                    tracer.count("oracle.submit_cache_hits")
                    tracer.gauge("oracle.queue_depth", len(self._pending))
                return ticket
        entry["X"] = np.array(X, copy=True)
        self._pending[ticket] = entry
        if not self._inline:
            entry["attempts"] = 1
            self._tasks.put((ticket, entry["X"]))
        if tracer is not None:
            tracer.gauge("oracle.queue_depth", len(self._pending))
        return ticket

    def drain(self) -> list[EvalOutcome]:
        """Resolve *all* outstanding submissions, in submission order.

        Blocks until every ticket has either a real score or a degraded
        outcome; never deadlocks on hung/crashed workers (they are
        terminated, the work retried, then degraded past the budget).
        """
        if not self._pending:
            return []
        tracer = self._tracer
        t_drain = time.perf_counter() if tracer is not None else 0.0
        pending, self._pending = self._pending, {}
        outcomes = {t: e["resolved"] for t, e in pending.items() if e["resolved"] is not None}
        if self._inline:
            for ticket, entry in pending.items():
                if ticket in outcomes:
                    continue
                outcomes[ticket] = self._evaluate_inline(ticket, entry)
        else:
            self._drain_pool(pending, outcomes)
        resolved = [outcomes[t] for t in pending]
        if tracer is not None:
            tracer.observe("oracle.drain_seconds", time.perf_counter() - t_drain)
            tracer.gauge("oracle.queue_depth", 0)
            for ticket, entry in pending.items():
                self._trace_landed(entry, outcomes[ticket])
        return resolved

    def _trace_landed(self, entry: dict, outcome: EvalOutcome) -> None:
        """Per-submission telemetry, recorded once the outcome is final."""
        tracer = self._tracer
        t_submit = entry.get("t_submit")
        if t_submit is not None:
            tracer.observe("oracle.submit_to_land_seconds", time.perf_counter() - t_submit)
        tracer.count("oracle.landed" if outcome.ok else "oracle.degraded")
        if outcome.attempts > 1:
            tracer.count("oracle.retries", outcome.attempts - 1)

    def _evaluate_inline(self, ticket: int, entry: dict) -> EvalOutcome:
        try:
            before = getattr(self._inner, "n_calls", None)
            score = float(self._inner(entry["X"], self._y))
        except BaseException as exc:  # noqa: BLE001 - degrade, matching the pool
            self._warn_degraded(ticket, 1, repr(exc))
            return EvalOutcome(ticket, None, False, attempts=1, error=repr(exc))
        n_new = 1 if before is None else max(0, self._inner.n_calls - before)
        if entry["key"] is not None:
            self._cache.put(entry["key"], score)
        return EvalOutcome(ticket, score, True, n_calls=n_new, attempts=1)

    def _drain_pool(self, pending: dict, outcomes: dict) -> None:
        unresolved = {t for t in pending if t not in outcomes}
        last_progress = time.monotonic()
        last_health = last_progress
        while unresolved:
            now = time.monotonic()
            if now - last_health >= _POLL_SECONDS:
                # Run even when messages are flowing, so a hung worker's
                # deadline is enforced while its siblings stay busy.
                last_health = now
                last_progress = self._check_health(pending, outcomes, unresolved, last_progress)
                if not unresolved:
                    return
            ready = mp_connection.wait(list(self._conns.values()), timeout=_POLL_SECONDS)
            for conn in ready:
                wid = next((w for w, c in self._conns.items() if c is conn), None)
                if wid is None:
                    continue
                try:
                    kind, ticket, payload = conn.recv()
                except (EOFError, OSError):
                    # EOF only surfaces once the pipe buffer is drained, so
                    # nothing this worker managed to report is lost.
                    self._reap_worker(wid, pending, outcomes, unresolved, "worker died")
                else:
                    self._handle_message(wid, kind, ticket, payload, pending, outcomes, unresolved)
                last_progress = time.monotonic()

    def _handle_message(self, wid, kind, ticket, payload, pending, outcomes, unresolved) -> None:
        if kind == "start":
            self._claims[wid] = (ticket, time.monotonic())
        elif kind == "done":
            self._trace_worker_done(wid, self._claims.pop(wid, None))
            if ticket in unresolved:
                score, n_new = payload
                outcomes[ticket] = EvalOutcome(
                    ticket, score, True, n_calls=n_new, attempts=pending[ticket]["attempts"]
                )
                if pending[ticket]["key"] is not None:
                    self._cache.put(pending[ticket]["key"], score)
                unresolved.discard(ticket)
        elif kind == "fail":
            self._trace_worker_done(wid, self._claims.pop(wid, None))
            if ticket in unresolved:
                self._retry_or_degrade(pending, outcomes, unresolved, ticket, payload)

    def _trace_worker_done(self, wid: int, claim) -> None:
        """Per-worker utilization: busy seconds and completed tasks."""
        tracer = self._tracer
        if tracer is None or claim is None:
            return
        labels = {"worker": wid}
        tracer.count("oracle.worker_busy_seconds", time.monotonic() - claim[1], labels=labels)
        tracer.count("oracle.worker_tasks", labels=labels)

    def _reap_worker(self, wid, pending, outcomes, unresolved, reason) -> None:
        """Retire one worker: stop it, salvage its reports, replace it.

        Buffered pipe messages are processed before the channel closes (a
        worker that reported ``done`` and then died must not trigger a
        redundant retry); whatever claim remains after that is the ticket
        that actually went down with the worker, and gets retried.
        """
        proc = self._workers.pop(wid, None)
        conn = self._conns.pop(wid, None)
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        if conn is not None:
            try:
                while conn.poll(0):
                    kind, ticket, payload = conn.recv()
                    self._handle_message(wid, kind, ticket, payload, pending, outcomes, unresolved)
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except Exception:  # pragma: no cover
                pass
        claim = self._claims.pop(wid, None)
        self._spawn_worker()
        if self._tracer is not None:
            self._tracer.count("oracle.workers_reaped", labels={"reason": reason})
        if claim is not None and claim[0] in unresolved:
            self._retry_or_degrade(pending, outcomes, unresolved, claim[0], reason)

    def _check_health(self, pending, outcomes, unresolved, last_progress: float) -> float:
        now = time.monotonic()
        for wid, proc in list(self._workers.items()):
            claim = self._claims.get(wid)
            timed_out = (
                claim is not None
                and self._timeout is not None
                and now - claim[1] > self._timeout
            )
            died = not proc.is_alive()
            if not (timed_out or died):
                continue
            reason = "timeout" if timed_out else "worker died"
            self._reap_worker(wid, pending, outcomes, unresolved, reason)
            last_progress = now
        # Liveness backstop: with per-worker pipes and synchronous claim
        # sends this should be unreachable (a dying worker's claim survives
        # in its pipe buffer), but if tickets somehow have no claim, no
        # queue entry, and no movement, re-queue them (bounded) rather
        # than wait forever — drain must never deadlock.
        if unresolved and not self._claims and now - last_progress > self._stall_limit():
            try:
                queue_empty = self._tasks.qsize() == 0
            except NotImplementedError:  # pragma: no cover - macOS qsize
                queue_empty = True
            if queue_empty:
                for ticket in sorted(unresolved):
                    self._retry_or_degrade(pending, outcomes, unresolved, ticket, "task lost")
                last_progress = now
        return last_progress

    def _stall_limit(self) -> float:
        if self._timeout is not None:
            return max(self._timeout, _STALL_SECONDS)
        return _STALL_SECONDS

    def _retry_or_degrade(self, pending, outcomes, unresolved, ticket: int, reason) -> None:
        entry = pending[ticket]
        if entry["attempts"] <= self._retries:
            entry["attempts"] += 1
            self._tasks.put((ticket, entry["X"]))
            return
        self._warn_degraded(ticket, entry["attempts"], reason)
        outcomes[ticket] = EvalOutcome(
            ticket, None, False, attempts=entry["attempts"], error=str(reason)
        )
        unresolved.discard(ticket)

    @staticmethod
    def _warn_degraded(ticket: int, attempts: int, reason) -> None:
        warnings.warn(
            f"AsyncOracle: evaluation (ticket {ticket}) failed after "
            f"{attempts} attempt(s): {reason}; degrading to the "
            "predictor-estimated score",
            RuntimeWarning,
            stacklevel=4,
        )
