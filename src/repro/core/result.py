"""Run artifacts: per-step records, Table II time buckets, and run results.

These types are produced by :class:`repro.core.session.SearchSession` (and
therefore by the back-compat :meth:`repro.core.engine.FastFT.fit` wrapper).
They live in their own module so the session, the engine facade and the
:mod:`repro.api` layer can all share them without import cycles.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.config import FastFTConfig
from repro.core.fsio import atomic_write_text
from repro.core.sequence import TransformationPlan

__all__ = ["StepRecord", "TimeBreakdown", "FastFTResult"]


@dataclass
class StepRecord:
    """Everything the experiment harnesses need about one exploration step."""

    episode: int
    step: int
    global_step: int
    op_name: str
    n_new_features: int
    score: float
    is_real: bool
    predicted_score: float | None
    novelty: float
    novelty_weight: float
    reward: float
    priority: float
    n_features: int
    n_clusters: int
    best_score_so_far: float
    time_optimization: float
    time_estimation: float
    time_evaluation: float
    new_expressions: list[str] = field(default_factory=list)
    novelty_distance: float = 1.0
    unencountered_total: int = 0
    triggered: bool = False
    # Token sequence T_i at this step — lets analyses (Fig 14) compute
    # embedding-based metrics post hoc, independent of the ablation arm.
    sequence_tokens: list[int] = field(default_factory=list)

    # Wall-clock fields vary between otherwise identical runs; everything
    # else is deterministic given the seed.
    TIMING_FIELDS = ("time_optimization", "time_estimation", "time_evaluation")

    def deterministic_dict(self) -> dict:
        """The record minus wall-clock timings — the fields that must be
        bit-identical between a resumed run and an uninterrupted one."""
        payload = asdict(self)
        for key in self.TIMING_FIELDS:
            payload.pop(key)
        return payload


@dataclass
class TimeBreakdown:
    """Table II's per-run time buckets (seconds)."""

    optimization: float = 0.0
    estimation: float = 0.0
    evaluation: float = 0.0

    @property
    def overall(self) -> float:
        return self.optimization + self.estimation + self.evaluation

    def per_episode(self, episodes: int) -> "TimeBreakdown":
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        return TimeBreakdown(
            self.optimization / episodes,
            self.estimation / episodes,
            self.evaluation / episodes,
        )


@dataclass
class FastFTResult:
    """Outcome of one FastFT run: best plan, scores, full step history."""

    base_score: float
    best_score: float
    plan: TransformationPlan
    history: list[StepRecord]
    time: TimeBreakdown
    n_downstream_calls: int
    config: FastFTConfig
    task: str

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the best transformation plan T* to (possibly new) data."""
        return self.plan.apply(X)

    @property
    def improvement(self) -> float:
        return self.best_score - self.base_score

    def expressions(self) -> list[str]:
        """Traceable formulas of the best feature set (Table IV / Fig 15)."""
        return self.plan.expressions()

    def reward_peaks(self, top_k: int = 5) -> list[StepRecord]:
        """Steps with the highest rewards — the Fig 15 case-study view."""
        return sorted(self.history, key=lambda r: r.reward, reverse=True)[:top_k]

    def to_artifact(self, X: np.ndarray, y: np.ndarray, model=None, **extra_manifest):
        """Package this result as a servable :class:`PipelineArtifact`.

        Fits ``model`` (default: the search's own downstream oracle
        template) on the transformed training data and bundles it with the
        compiled plan and a provenance manifest. See :mod:`repro.serve`.
        """
        from repro.serve.artifact import PipelineArtifact  # avoid import cycle

        return PipelineArtifact.from_result(
            self, X, y, model=model, extra_manifest=extra_manifest or None
        )

    def save(self, path: str) -> None:
        """Persist the full run (plan, history, config, timings) as JSON."""
        payload = {
            "base_score": self.base_score,
            "best_score": self.best_score,
            "task": self.task,
            "n_downstream_calls": self.n_downstream_calls,
            "time": {
                "optimization": self.time.optimization,
                "estimation": self.time.estimation,
                "evaluation": self.time.evaluation,
            },
            "plan": json.loads(self.plan.to_json()),
            "config": self.config.to_jsonable(),
            "history": [asdict(record) for record in self.history],
        }
        # Durable-state discipline: results publish atomically so a reader
        # never observes a torn file (see repro.core.fsio).
        atomic_write_text(path, json.dumps(payload))

    @classmethod
    def load(cls, path: str) -> "FastFTResult":
        """Restore a run saved by :meth:`save`."""
        with open(path) as fh:
            payload = json.load(fh)
        time_raw = payload["time"]
        return cls(
            base_score=payload["base_score"],
            best_score=payload["best_score"],
            plan=TransformationPlan.from_json(json.dumps(payload["plan"])),
            history=[StepRecord(**record) for record in payload["history"]],
            time=TimeBreakdown(
                optimization=time_raw["optimization"],
                estimation=time_raw["estimation"],
                evaluation=time_raw["evaluation"],
            ),
            n_downstream_calls=payload["n_downstream_calls"],
            config=FastFTConfig.from_jsonable(payload["config"]),
            task=payload["task"],
        )
