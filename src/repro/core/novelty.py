"""The Novelty Estimator ψ/ψ⊥ (§III-C, Eq. 4) — random network distillation.

A frozen target network ψ⊥ is orthogonally initialized (gain 16, following
the randomized-prior recipe the paper cites) and never trained; the
estimator ψ is trained to match ψ⊥'s outputs on *collected* sequences. On
familiar sequences the distillation error is small; on unencountered
sequences it is large — the error is the novelty score that (a) densifies
the reward (challenge C3) and (b) triggers real downstream evaluation for
genuinely new transformations (§III-D).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import orthogonal_
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.recurrent import pad_token_batch
from repro.core.predictor import SequenceRegressor

__all__ = ["EmbeddingLog", "NoveltyEstimator", "novelty_distance"]


class EmbeddingLog:
    """Append-only store of sequence embeddings with O(1) amortized append.

    The session's Fig 14 bookkeeping used to keep a python list and rebuild
    ``np.array(history)`` on every step — O(steps²) over a run. This keeps
    the embeddings in one preallocated row-major buffer that doubles on
    demand; :meth:`view` hands :func:`novelty_distance` a zero-copy
    ``(count, dim)`` prefix view with the exact bytes the rebuilt array had.
    """

    def __init__(self) -> None:
        self._buffer: np.ndarray | None = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def append(self, embedding: np.ndarray) -> None:
        embedding = np.asarray(embedding, dtype=float).ravel()
        if self._buffer is None:
            self._buffer = np.empty((8, embedding.shape[0]), dtype=float)
        elif self._count == self._buffer.shape[0]:
            grown = np.empty(
                (2 * self._buffer.shape[0], self._buffer.shape[1]), dtype=float
            )
            grown[: self._count] = self._buffer
            self._buffer = grown
        self._buffer[self._count] = embedding
        self._count += 1

    def view(self) -> np.ndarray | None:
        """C-contiguous ``(count, dim)`` view of the collected embeddings
        (``None`` while empty, matching the session's historical call)."""
        if self._count == 0:
            return None
        return self._buffer[: self._count]


def novelty_distance(embedding: np.ndarray, history: np.ndarray | None) -> float:
    """Minimum cosine distance between an embedding and all historical ones.

    This is the paper's Fig 14 metric: "the minimum cosine distance between
    the current and all collected historical feature set embeddings".
    """
    if history is None or len(history) == 0:
        return 1.0
    e = embedding.ravel()
    e_norm = np.linalg.norm(e)
    if e_norm == 0:
        return 1.0
    h_norms = np.linalg.norm(history, axis=1)
    valid = h_norms > 0
    if not valid.any():
        return 1.0
    cosines = (history[valid] @ e) / (h_norms[valid] * e_norm)
    return float(1.0 - cosines.max())


class NoveltyEstimator:
    """RND pair: frozen orthogonal target + trainable estimator."""

    def __init__(
        self,
        vocab_size: int,
        seq_model: str = "lstm",
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        estimator_head_dims: tuple[int, ...] = (16, 4, 1),
        orthogonal_gain: float = 16.0,
        lr: float = 1e-3,
        seed: int | None = 0,
    ) -> None:
        # Target: same encoder family, single FC output layer (paper §V).
        self.target = SequenceRegressor(
            vocab_size, seq_model, embed_dim, hidden_dim, num_layers, (1,), seed=seed
        )
        rng = np.random.default_rng(None if seed is None else seed + 101)
        for _, param in self.target.named_parameters():
            if param.data.ndim == 2:
                orthogonal_(param, gain=orthogonal_gain, rng=rng)
        for param in self.target.parameters():
            param.requires_grad = False

        # Estimator: FC head (16, 4, 1) per the paper's §V configuration.
        self.estimator = SequenceRegressor(
            vocab_size,
            seq_model,
            embed_dim,
            hidden_dim,
            num_layers,
            estimator_head_dims,
            seed=None if seed is None else seed + 202,
        )
        self.optimizer = Adam(list(self.estimator.parameters()), lr=lr)
        self.n_updates = 0

    def raw_error(self, tokens: np.ndarray) -> float:
        """Signed distillation gap ψ(T) − ψ⊥(T) (the Eq. 6 novelty term)."""
        tokens = np.asarray(tokens, dtype=np.int64)
        est = float(self.estimator(tokens).data.ravel()[0])
        tgt = float(self.target(tokens).data.ravel()[0])
        return est - tgt

    def score(self, tokens: np.ndarray) -> float:
        """Non-negative novelty score (ψ(T) − ψ⊥(T))²."""
        return self.raw_error(tokens) ** 2

    def score_batch(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Batched novelty scores, bit-identical per row to :meth:`score`
        (masked exact encode — see :meth:`SequenceRegressor.infer_batch`)."""
        est = self.estimator.infer_batch(sequences)
        tgt = self.target.infer_batch(sequences)
        return (est - tgt) ** 2

    def score_with_embedding(self, tokens: np.ndarray) -> tuple[float, np.ndarray]:
        """Novelty score and frozen-target embedding from one shared pass.

        :meth:`score` and :meth:`embedding` each ran the frozen target's
        encoder, so the per-step trigger loop paid three sequence encodes;
        here the target encoder runs once and feeds both its head (for the
        distillation gap) and the embedding, which is bit-identical to the
        two separate calls because ``target(tokens)`` is exactly
        ``head(encoder(tokens))``.
        """
        tokens = np.asarray(tokens, dtype=np.int64).reshape(1, -1)
        encoded = self.target.encoder(tokens, None)
        tgt = float(self.target.head(encoded).reshape(-1).data.ravel()[0])
        est = float(self.estimator(tokens).data.ravel()[0])
        return (est - tgt) ** 2, encoded.data.ravel()

    def embedding(self, tokens: np.ndarray) -> np.ndarray:
        """Frozen-target sequence embedding (stable across training), used
        for the Fig 14 novelty-distance analysis."""
        return self.target.encode(np.asarray(tokens, dtype=np.int64)).ravel()

    def fit(
        self,
        sequences: list[np.ndarray],
        epochs: int = 20,
        batch_size: int = 16,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Distill ψ toward ψ⊥ on collected sequences (Eq. 4)."""
        if not sequences:
            raise ValueError("No training sequences")
        rng = rng or np.random.default_rng(0)
        last = 0.0
        for _ in range(epochs):
            order = rng.permutation(len(sequences))
            for start in range(0, len(order), batch_size):
                idx = order[start : start + batch_size]
                tokens, mask = pad_token_batch([sequences[i] for i in idx])
                targets = self.target(tokens, mask).data.ravel()
                self.optimizer.zero_grad()
                pred = self.estimator(tokens, mask)
                loss = mse_loss(pred, targets)
                loss.backward()
                self.optimizer.step()
                last = loss.item()
                self.n_updates += 1
        return last
