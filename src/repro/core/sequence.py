"""Traceable feature space: expression trees + executable transformation plans.

Every feature — original or generated — is a node with a provenance record.
This gives FastFT the paper's traceability property (Table IV, Fig 15): each
generated column can be printed as an explicit formula over the original
features, and a fitted plan can be re-applied to unseen data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core.operations import get_operation
from repro.ml.preprocessing import sanitize_features

__all__ = ["FeatureNode", "TransformationPlan", "FeatureSpace"]


@dataclass(frozen=True)
class FeatureNode:
    """Provenance of a single feature.

    ``op`` is ``None`` for original input columns (then ``source_col`` is the
    column index); otherwise ``children`` holds the operand feature ids.
    """

    fid: int
    op: str | None = None
    children: tuple[int, ...] = ()
    source_col: int | None = None


@dataclass
class TransformationPlan:
    """A frozen, re-applicable transformation: nodes + the live feature ids.

    Applying a plan to a matrix with the same column count reproduces the
    transformed feature set on new data (the ``T*(F) -> F*`` of Eq. 1).
    """

    nodes: dict[int, FeatureNode]
    live_ids: list[int]
    n_input_columns: int
    feature_names: list[str]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Evaluate every live feature on ``X`` (memoized recursion)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_input_columns:
            raise ValueError(
                f"Plan was fitted on {self.n_input_columns} columns, got {X.shape}"
            )
        cache: dict[int, np.ndarray] = {}

        def evaluate(fid: int) -> np.ndarray:
            if fid in cache:
                return cache[fid]
            node = self.nodes[fid]
            if node.op is None:
                value = X[:, node.source_col]
            else:
                operands = [evaluate(c) for c in node.children]
                value = get_operation(node.op)(*operands)
            cache[fid] = value
            return value

        return sanitize_features(np.column_stack([evaluate(fid) for fid in self.live_ids]))

    def expression(self, fid: int) -> str:
        """Infix formula of a feature in terms of the original columns."""
        node = self.nodes[fid]
        if node.op is None:
            return self.feature_names[node.source_col]
        operands = [self.expression(c) for c in node.children]
        return get_operation(node.op).format(*operands)

    def expressions(self) -> list[str]:
        return [self.expression(fid) for fid in self.live_ids]

    @property
    def n_features(self) -> int:
        return len(self.live_ids)

    def validate(self) -> None:
        """Check the plan graph is executable; raise ``ValueError`` if not.

        Catches the failure modes that would otherwise surface as bare
        ``KeyError``/``IndexError`` deep inside :meth:`apply`: live ids
        missing from ``nodes``, dangling ``children`` references, source
        columns outside ``[0, n_input_columns)``, unknown operations and
        arity mismatches. Every message names the offending node id.
        """
        missing = [fid for fid in self.live_ids if fid not in self.nodes]
        if missing:
            raise ValueError(f"live_ids reference unknown features: {missing}")
        for fid, node in self.nodes.items():
            if node.op is None:
                if node.source_col is None or not 0 <= node.source_col < self.n_input_columns:
                    raise ValueError(
                        f"node {fid}: source_col {node.source_col} outside the "
                        f"{self.n_input_columns} input columns"
                    )
                continue
            try:
                op = get_operation(node.op)
            except KeyError:
                raise ValueError(f"node {fid}: unknown operation {node.op!r}") from None
            if len(node.children) != op.arity:
                raise ValueError(
                    f"node {fid}: {node.op} expects {op.arity} operand(s), "
                    f"got {len(node.children)}"
                )
            dangling = [c for c in node.children if c not in self.nodes]
            if dangling:
                raise ValueError(f"node {fid}: dangling children ids {dangling}")
        # Cycle check (iterative DFS, 1 = on the current path, 2 = done):
        # a cyclic graph would hang compilation and blow the interpreter's
        # recursion limit instead of failing cleanly here.
        state: dict[int, int] = {}
        for root in self.live_ids:
            if state.get(root) == 2:
                continue
            state[root] = 1
            stack = [(root, iter(self.nodes[root].children))]
            while stack:
                fid, children = stack[-1]
                pushed = False
                for c in children:
                    s = state.get(c)
                    if s == 1:
                        raise ValueError(f"node {c}: plan graph contains a cycle")
                    if s != 2:
                        state[c] = 1
                        stack.append((c, iter(self.nodes[c].children)))
                        pushed = True
                        break
                if not pushed:
                    state[fid] = 2
                    stack.pop()

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the plan (nodes + live set) to a JSON string."""
        payload = {
            "n_input_columns": self.n_input_columns,
            "feature_names": self.feature_names,
            "live_ids": self.live_ids,
            "nodes": [
                {
                    "fid": node.fid,
                    "op": node.op,
                    "children": list(node.children),
                    "source_col": node.source_col,
                }
                for node in self.nodes.values()
            ],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, data: str) -> "TransformationPlan":
        """Rebuild a plan serialized by :meth:`to_json` (validated on load)."""
        payload = json.loads(data)
        nodes = {
            int(raw["fid"]): FeatureNode(
                fid=int(raw["fid"]),
                op=raw["op"],
                children=tuple(int(c) for c in raw["children"]),
                source_col=raw["source_col"],
            )
            for raw in payload["nodes"]
        }
        plan = cls(
            nodes=nodes,
            live_ids=[int(i) for i in payload["live_ids"]],
            n_input_columns=int(payload["n_input_columns"]),
            feature_names=list(payload["feature_names"]),
        )
        plan.validate()
        return plan


class FeatureSpace:
    """The evolving feature set F̂ during one episode.

    Maintains the value matrix, the provenance registry and the live-column
    ordering; supports group-wise crossing (§III-B) and importance pruning.

    Two storage backends share the same semantics (and are proven
    byte-identical by the property tests):

    - ``"arena"`` (default): one contiguous column-major ``(n_samples,
      capacity)`` buffer with amortized-doubling growth. Column ``fid``
      lives at arena slot ``fid``; :meth:`values` is a zero-copy view,
      :meth:`matrix` is a single vectorized gather, and
      :meth:`matrix_view` returns a zero-copy F-contiguous view when the
      requested features are a contiguous id prefix.
    - ``"dict"``: the original one-1-D-array-per-feature store, kept as the
      bit-exact reference for tests and the search-throughput benchmark.

    Either way, duplicate detection is O(1) via a derivation-signature
    count maintained across :meth:`prune` (the seed implementation scanned
    the whole live set per candidate pair).
    """

    def __init__(
        self,
        X: np.ndarray,
        feature_names: list[str] | None = None,
        backend: str = "arena",
    ) -> None:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if backend not in ("arena", "dict"):
            raise ValueError(f"Unknown FeatureSpace backend {backend!r}")
        self.n_input_columns = X.shape[1]
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"f{j + 1}" for j in range(X.shape[1])]
        )
        if len(self.feature_names) != X.shape[1]:
            raise ValueError("feature_names length mismatch")
        self._backend = backend
        self._n_samples = X.shape[0]
        self._nodes: dict[int, FeatureNode] = {}
        self._columns: dict[int, np.ndarray] | None = None
        self._arena: np.ndarray | None = None
        if backend == "arena":
            # 2x headroom over the input width bounds the growth slack at a
            # factor of two of what the dict backend would hold.
            self._arena = np.empty(
                (X.shape[0], max(8, 2 * X.shape[1])), dtype=float, order="F"
            )
        else:
            self._columns = {}
        self._live: list[int] = []
        self._sig_count: dict[tuple[str, tuple[int, ...]], int] = {}
        self._next_fid = 0
        for j in range(X.shape[1]):
            fid = self._allocate(FeatureNode(fid=0, op=None, source_col=j), X[:, j])
            self._live_append(fid)
        self._original_ids = tuple(self._live)

    # -- bookkeeping -----------------------------------------------------------

    def _grow(self, needed: int, n_filled: int) -> None:
        old = self._arena
        new_cap = max(needed, 2 * old.shape[1])
        new = np.empty((old.shape[0], new_cap), dtype=float, order="F")
        new[:, :n_filled] = old[:, :n_filled]
        self._arena = new

    def _allocate(self, node: FeatureNode, values: np.ndarray) -> int:
        fid = self._next_fid
        self._next_fid += 1
        self._nodes[fid] = FeatureNode(
            fid=fid, op=node.op, children=node.children, source_col=node.source_col
        )
        column = sanitize_features(values.reshape(-1, 1)).ravel()
        if self._backend == "arena":
            if fid >= self._arena.shape[1]:
                self._grow(fid + 1, n_filled=fid)
            self._arena[:, fid] = column
        else:
            self._columns[fid] = column
        return fid

    def _live_append(self, fid: int) -> None:
        self._live.append(fid)
        node = self._nodes[fid]
        if node.op is not None:
            key = (node.op, node.children)
            self._sig_count[key] = self._sig_count.get(key, 0) + 1

    def _rebuild_signatures(self) -> None:
        sig: dict[tuple[str, tuple[int, ...]], int] = {}
        for fid in self._live:
            node = self._nodes[fid]
            if node.op is not None:
                key = (node.op, node.children)
                sig[key] = sig.get(key, 0) + 1
        self._sig_count = sig

    def __setstate__(self, state: dict) -> None:
        # Spaces pickled before the arena rewrite carry only the dict store;
        # adopt them as the "dict" backend so old checkpoints keep working.
        self.__dict__.update(state)
        if "_backend" not in state:
            self._backend = "dict"
            self._arena = None
            self._n_samples = (
                len(next(iter(self._columns.values()))) if self._columns else 0
            )
            self._rebuild_signatures()

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def live_ids(self) -> list[int]:
        return list(self._live)

    @property
    def live_ids_view(self) -> list[int]:
        """The internal live-id list without the defensive copy.

        Hot callers (the session's recluster/prune loops) read this instead
        of :attr:`live_ids`; treat it as read-only.
        """
        return self._live

    @property
    def original_ids(self) -> tuple[int, ...]:
        return self._original_ids

    @property
    def n_features(self) -> int:
        return len(self._live)

    @property
    def n_samples(self) -> int:
        return self._n_samples

    def _is_live_prefix(self, fids: list[int]) -> bool:
        """True when ``fids`` is exactly arena slots ``0..k-1`` in order."""
        return (
            self._next_fid >= len(fids)
            and all(f == i for i, f in enumerate(fids))
        )

    def matrix(self, fids: list[int] | None = None) -> np.ndarray:
        """Value matrix of the given (default: live) features.

        Always a fresh C-contiguous array, byte-identical to
        ``np.column_stack`` over the per-feature columns (consumers'
        axis-0 reductions are layout-sensitive at the bit level, so the
        arena gathers into row-major order before handing the matrix out).
        """
        fids = self._live if fids is None else fids
        if self._backend != "arena":
            return np.column_stack([self._columns[f] for f in fids])
        if not fids:
            raise ValueError("matrix() of an empty feature list")
        if self._is_live_prefix(fids):
            return self._arena[:, : len(fids)].copy(order="C")
        # Gather straight into row-major storage: advanced indexing on an
        # F-order buffer would hand back an F-order result, and consumers'
        # axis-0 reductions are layout-sensitive at the bit level.
        out = np.empty((self._n_samples, len(fids)), dtype=float)
        for j, f in enumerate(fids):
            if f not in self._nodes:
                # Match the dict backend: an unallocated fid is a KeyError,
                # never a silent read of uninitialized arena slots.
                raise KeyError(f)
            out[:, j] = self._arena[:, f]
        return out

    def matrix_view(self, fids: list[int] | None = None) -> np.ndarray:
        """Read-only value matrix that avoids the row-major copy.

        When ``fids`` is a contiguous id prefix of the arena (the common
        case before the first prune), this is a zero-copy F-contiguous
        view of the buffer. Falls back to :meth:`matrix` otherwise.
        Intended for layout-insensitive consumers (per-column statistics,
        content hashing) — never mutate it.
        """
        fids = self._live if fids is None else fids
        if self._backend == "arena" and fids and self._is_live_prefix(fids):
            view = self._arena[:, : len(fids)]
            view.flags.writeable = False
            return view
        return self.matrix(fids)

    def values(self, fid: int) -> np.ndarray:
        if self._backend == "arena":
            if fid not in self._nodes:
                raise KeyError(fid)
            view = self._arena[:, fid]
            view.flags.writeable = False
            return view
        return self._columns[fid]

    # -- transformation ----------------------------------------------------------

    def _is_duplicate(self, op_name: str, children: tuple[int, ...]) -> bool:
        """True when a live feature already carries this exact derivation."""
        return self._sig_count.get((op_name, children), 0) > 0

    def apply_unary(self, op_name: str, head_ids: list[int]) -> list[int]:
        """Apply a unary op to each head feature; returns new feature ids.

        Exact re-derivations of live features are skipped (the paper's
        'replacing useless features' behaviour starts with not duplicating)."""
        op = get_operation(op_name)
        if op.arity != 1:
            raise ValueError(f"{op_name} is not unary")
        new_ids = []
        for h in head_ids:
            if self._is_duplicate(op_name, (h,)):
                continue
            values = op(self.values(h))
            fid = self._allocate(FeatureNode(fid=0, op=op_name, children=(h,)), values)
            self._live_append(fid)
            new_ids.append(fid)
        return new_ids

    def apply_binary(
        self,
        op_name: str,
        head_ids: list[int],
        tail_ids: list[int],
        max_new: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[int]:
        """Group-wise crossing: op(h, t) for the |a_h|×|a_t| product.

        ``max_new`` caps the fan-out by sampling pairs (the sequence and the
        feature set would otherwise grow quadratically in cluster size); the
        sampling requires an explicit ``rng`` — an implicit unseeded
        fallback would silently make seeded searches nondeterministic.
        """
        op = get_operation(op_name)
        if op.arity != 2:
            raise ValueError(f"{op_name} is not binary")
        if max_new is not None and rng is None:
            raise ValueError(
                "apply_binary(max_new=...) samples pairs and requires an explicit "
                "rng (np.random.Generator); an unseeded fallback would make "
                "seeded searches silently nondeterministic"
            )
        commutative = op_name in ("add", "multiply")
        pairs = [(h, t) for h in head_ids for t in tail_ids if h != t]
        if not pairs:
            pairs = [(h, t) for h in head_ids for t in tail_ids]
        if commutative:
            # (a+b) and (b+a) are the same feature; canonicalize and dedup.
            pairs = list(dict.fromkeys((min(h, t), max(h, t)) for h, t in pairs))
        if max_new is not None and len(pairs) > max_new:
            chosen = rng.choice(len(pairs), size=max_new, replace=False)
            pairs = [pairs[i] for i in chosen]
        new_ids = []
        for h, t in pairs:
            if self._is_duplicate(op_name, (h, t)):
                continue
            values = op(self.values(h), self.values(t))
            fid = self._allocate(FeatureNode(fid=0, op=op_name, children=(h, t)), values)
            self._live_append(fid)
            new_ids.append(fid)
        return new_ids

    def prune(self, keep_ids: list[int]) -> None:
        """Restrict the live set (original features may also be dropped,
        matching the paper's 'replacing useless features' behaviour); the
        provenance registry keeps every ancestor so plans stay executable.
        The duplicate-signature counts are rebuilt over the surviving set,
        so :meth:`apply_unary`/:meth:`apply_binary` keep their exact
        live-only dedup semantics after a prune."""
        keep = [f for f in keep_ids if f in self._nodes]
        if not keep:
            raise ValueError("Cannot prune to an empty feature set")
        self._live = keep
        self._rebuild_signatures()

    # -- traceability --------------------------------------------------------------

    def expression(self, fid: int) -> str:
        node = self._nodes[fid]
        if node.op is None:
            return self.feature_names[node.source_col]
        operands = [self.expression(c) for c in node.children]
        return get_operation(node.op).format(*operands)

    def snapshot(self) -> TransformationPlan:
        """Freeze the current live set into a re-applicable plan."""
        needed: dict[int, FeatureNode] = {}

        def collect(fid: int) -> None:
            if fid in needed:
                return
            node = self._nodes[fid]
            needed[fid] = node
            for c in node.children:
                collect(c)

        for fid in self._live:
            collect(fid)
        return TransformationPlan(
            nodes=dict(needed),
            live_ids=list(self._live),
            n_input_columns=self.n_input_columns,
            feature_names=list(self.feature_names),
        )
