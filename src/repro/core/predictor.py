"""The Performance Predictor φ(T) (§III-C, Eq. 3).

An LSTM (or RNN/Transformer, Fig 8) encoder over the transformation-token
sequence followed by a small feed-forward head predicting the downstream
score. Trained on ⟨sequence, measured score⟩ pairs with MSE, it replaces the
cross-validated downstream evaluation with a single forward pass — the
paper's answer to challenge C1 (runtime bottleneck).
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import TransformerEncoder
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import mse_loss
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.recurrent import LSTMEncoder, RNNEncoder, _rowwise_matmul, pad_token_batch
from repro.nn.tensor import Tensor

__all__ = ["SequenceRegressor", "PerformancePredictor", "make_encoder"]


def make_encoder(
    seq_model: str,
    vocab_size: int,
    embed_dim: int,
    hidden_dim: int,
    num_layers: int,
    seed: int | None,
) -> Module:
    """Encoder factory over the Fig 8 ablation arms."""
    if seq_model == "lstm":
        return LSTMEncoder(vocab_size, embed_dim, hidden_dim, num_layers, seed=seed)
    if seq_model == "rnn":
        return RNNEncoder(vocab_size, embed_dim, hidden_dim, num_layers, seed=seed)
    if seq_model == "transformer":
        return TransformerEncoder(vocab_size, embed_dim, hidden_dim, num_layers, seed=seed)
    raise ValueError(f"Unknown seq_model {seq_model!r}")


class SequenceRegressor(Module):
    """Encoder + feed-forward head mapping token sequences to scalars."""

    def __init__(
        self,
        vocab_size: int,
        seq_model: str = "lstm",
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        head_dims: tuple[int, ...] = (16, 1),
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if not head_dims or head_dims[-1] != 1:
            raise ValueError("head_dims must end with output dimension 1")
        rng = np.random.default_rng(seed)
        self.encoder = make_encoder(seq_model, vocab_size, embed_dim, hidden_dim, num_layers, seed)
        layers: list[Module] = []
        in_dim = hidden_dim
        for i, out_dim in enumerate(head_dims):
            layers.append(Linear(in_dim, out_dim, rng=rng))
            if i < len(head_dims) - 1:
                layers.append(ReLU())
            in_dim = out_dim
        self.head = Sequential(*layers)

    def forward(self, tokens: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        return self.head(self.encoder(tokens, mask)).reshape(-1)

    def encode(self, tokens: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Detached sequence embedding (used for novelty distance, Fig 14)."""
        return self.encoder(tokens, mask).data

    def encode_batch_exact(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Detached ``(B, hidden)`` encodings, bit-identical per row to
        ``encode(seq)`` — recurrent encoders run one masked exact pass,
        the Transformer (no exact batch kernel) falls back to the loop."""
        sequences = [np.asarray(s, dtype=np.int64) for s in sequences]
        if hasattr(self.encoder, "encode_batch"):
            return self.encoder.encode_batch(sequences)
        return np.vstack([self.encoder(s).data for s in sequences])

    def infer_batch(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Batched inference scores ``(B,)``, bit-identical per row to
        ``float(forward(seq).data.ravel()[0])``.

        The head replays each Linear as stacked per-row products (see
        :func:`repro.nn.recurrent._rowwise_matmul`) so the whole batch
        matches the per-sequence forward bitwise — no autograd tape.
        """
        x = self.encode_batch_exact(sequences)
        for layer in self.head.layers:
            if isinstance(layer, Linear):
                x = _rowwise_matmul(x, layer.weight.data)
                if layer.bias is not None:
                    x = x + layer.bias.data
            elif isinstance(layer, ReLU):
                x = np.maximum(x, 0.0)
            else:  # pragma: no cover - heads are Linear/ReLU by construction
                x = layer(Tensor(x)).data
        return x.ravel()

    def activation_bytes(self, seq_len: int, batch: int = 1) -> int:
        """Analytic activation memory for one forward pass (Fig 11 stand-in
        for the paper's GPU-allocation measurements).

        A recurrent encoder stores per-timestep gate activations; with hidden
        size H and L layers that is ≈ seq_len · L · 6H floats (4 gates + cell
        + hidden). The Transformer's attention matrices add seq_len² terms —
        exactly why its footprint grows faster in Fig 8/11.
        """
        H = getattr(self.encoder, "hidden_dim", 32)
        L = getattr(self.encoder, "num_layers", 1)
        E = getattr(self.encoder, "embed_dim", H)
        floats = batch * seq_len * E  # embeddings
        if isinstance(self.encoder, TransformerEncoder):
            n_blocks = len(self.encoder.blocks)
            floats += batch * n_blocks * (seq_len * seq_len + 6 * seq_len * E)
        else:
            per_step = 6 * H if isinstance(self.encoder, LSTMEncoder) else 2 * H
            floats += batch * seq_len * L * per_step
        return int(floats * 8)  # float64


class PerformancePredictor:
    """φ: T → R̂ with online fitting on the replay memory's records."""

    def __init__(
        self,
        vocab_size: int,
        seq_model: str = "lstm",
        embed_dim: int = 32,
        hidden_dim: int = 32,
        num_layers: int = 2,
        head_dims: tuple[int, ...] = (16, 1),
        lr: float = 1e-3,
        seed: int | None = 0,
    ) -> None:
        self.model = SequenceRegressor(
            vocab_size, seq_model, embed_dim, hidden_dim, num_layers, head_dims, seed
        )
        self.optimizer = Adam(list(self.model.parameters()), lr=lr)
        self.n_updates = 0

    def predict(self, tokens: np.ndarray) -> float:
        """One forward pass — the fast replacement for downstream evaluation."""
        return float(self.model(np.asarray(tokens, dtype=np.int64)).data.ravel()[0])

    def predict_batch(self, sequences: list[np.ndarray]) -> np.ndarray:
        """φ for several candidate sequences in one masked exact pass.

        The session's trigger loop scores candidates through this entry
        point. Batching is *exact*: every row is bit-identical to the
        corresponding :meth:`predict` call, for any mix of ragged
        lengths (see :meth:`SequenceRegressor.infer_batch`). The padded
        ULP-drifty multi-sequence forward survives only inside
        :meth:`fit`, where its arithmetic is part of the pinned training
        goldens.
        """
        return self.model.infer_batch(sequences)

    def fit(
        self,
        sequences: list[np.ndarray],
        scores: np.ndarray,
        epochs: int = 20,
        batch_size: int = 16,
        rng: np.random.Generator | None = None,
    ) -> float:
        """MSE training on ⟨T_i, A(T_i(F))⟩ pairs (Eq. 3); returns last loss."""
        if len(sequences) != len(scores):
            raise ValueError("sequences and scores must align")
        if not sequences:
            raise ValueError("No training records")
        rng = rng or np.random.default_rng(0)
        scores = np.asarray(scores, dtype=float)
        last = 0.0
        for _ in range(epochs):
            order = rng.permutation(len(sequences))
            for start in range(0, len(order), batch_size):
                idx = order[start : start + batch_size]
                tokens, mask = pad_token_batch([sequences[i] for i in idx])
                self.optimizer.zero_grad()
                pred = self.model(tokens, mask)
                loss = mse_loss(pred, scores[idx])
                loss.backward()
                self.optimizer.step()
                last = loss.item()
                self.n_updates += 1
        return last

    def memory_footprint(self, seq_len: int) -> dict[str, int]:
        """Parameter + activation byte counts (Fig 11)."""
        params = self.model.memory_bytes()
        activations = self.model.activation_bytes(seq_len)
        return {
            "parameter_bytes": params,
            "activation_bytes": activations,
            "total_bytes": params + activations,
        }
