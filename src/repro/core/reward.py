"""Reward construction (Equations 5 and 6).

Cold start:      r_i = A(T_i(F), y) − A(T_{i−1}(F), y)
Exploration:     r_i = (φ(T_i) − φ(T_{i−1})) + ε_i · (ψ(T_i) − ψ⊥(T_i))²
with the novelty weight decaying exponentially from ε_s to ε_e over M steps:

    ε_i = ε_e + (ε_s − ε_e) · e^{−i/M}

so the agent explores novel sequences first and high-quality ones later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoveltyWeightSchedule", "downstream_reward", "pseudo_reward"]


@dataclass(frozen=True)
class NoveltyWeightSchedule:
    """ε_i schedule of Eq. 6 (paper defaults: 0.1 → 0.005 over M=1000)."""

    start: float = 0.10
    end: float = 0.005
    decay_steps: int = 1000

    def __post_init__(self) -> None:
        if self.decay_steps < 1:
            raise ValueError("decay_steps must be >= 1")
        if self.start < 0 or self.end < 0:
            raise ValueError("weights must be non-negative")

    def weight(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        return self.end + (self.start - self.end) * float(np.exp(-step / self.decay_steps))


def downstream_reward(current_score: float, previous_score: float) -> float:
    """Eq. 5: improvement of the real downstream metric."""
    return current_score - previous_score


def pseudo_reward(
    predicted_current: float,
    predicted_previous: float,
    novelty: float,
    novelty_weight: float,
) -> float:
    """Eq. 6: estimated performance delta plus weighted novelty."""
    if novelty < 0:
        raise ValueError("novelty score must be non-negative")
    return (predicted_current - predicted_previous) + novelty_weight * novelty
