"""Incremental MI-based feature clustering (Equation 2).

Features start as singleton clusters; the two closest clusters merge
repeatedly until the closest distance exceeds a threshold. The distance is

    dis_ij = (1/|Ci||Cj|) Σ_{Fi∈Ci} Σ_{Fj∈Cj} |MI(Fi,y) − MI(Fj,y)| / (MI(Fi,Fj) + ς)

— features with similar label-relevance and high mutual redundancy are close.
The cluster-level distance is the average of base pairwise distances, so we
precompute the pairwise matrix once and merge with average linkage.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mutual_info import (
    _discretize_continuous,
    discrete_mutual_info,
    mutual_info_matrix,
    mutual_info_with_target,
)
from repro.ml.preprocessing import KBinsDiscretizer

__all__ = [
    "pairwise_cluster_distance",
    "cluster_features",
    "IncrementalClusterer",
    "RelevanceCache",
]


def pairwise_cluster_distance(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    varsigma: float = 1e-3,
    n_bins: int = 8,
    max_rows: int = 256,
    seed: int | None = 0,
) -> np.ndarray:
    """Base distance matrix over individual features (the Eq. 2 summand)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[0] > max_rows:
        rng = np.random.default_rng(seed)
        rows = rng.choice(X.shape[0], size=max_rows, replace=False)
        X, y = X[rows], y[rows]
    relevance = mutual_info_with_target(X, y, task=task, n_bins=n_bins)
    redundancy = mutual_info_matrix(X, n_bins=n_bins)
    rel_diff = np.abs(relevance[:, None] - relevance[None, :])
    return rel_diff / (redundancy + varsigma)


def cluster_features(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    distance_threshold: float | str = "auto",
    min_clusters: int = 2,
    max_clusters: int | None = None,
    varsigma: float = 1e-3,
    n_bins: int = 8,
    max_rows: int = 256,
    seed: int | None = 0,
) -> list[list[int]]:
    """Agglomerate feature columns into clusters of column indices.

    ``distance_threshold="auto"`` stops merging at the median of the initial
    pairwise distances — a scale-free choice that adapts as generated
    features change the MI landscape each step.
    """
    X = np.asarray(X, dtype=float)
    d = X.shape[1]
    if d == 0:
        raise ValueError("No features to cluster")
    if d == 1:
        return [[0]]

    base = pairwise_cluster_distance(
        X, y, task=task, varsigma=varsigma, n_bins=n_bins, max_rows=max_rows, seed=seed
    )
    if distance_threshold == "auto":
        off_diag = base[~np.eye(d, dtype=bool)]
        threshold = float(np.median(off_diag))
    else:
        threshold = float(distance_threshold)

    clusters: list[list[int]] = [[j] for j in range(d)]
    # sums[a][b] = total cross-pair base distance between clusters a and b;
    # average linkage = sums / (|a|·|b|). Merging is additive in sums.
    sums = base.copy()
    active = list(range(d))

    def avg_distance(a: int, b: int) -> float:
        return sums[a, b] / (len(clusters[a]) * len(clusters[b]))

    while len(active) > max(min_clusters, 1):
        best_pair, best_dist = None, np.inf
        for ii in range(len(active)):
            for jj in range(ii + 1, len(active)):
                a, b = active[ii], active[jj]
                dist = avg_distance(a, b)
                if dist < best_dist:
                    best_dist, best_pair = dist, (a, b)
        over_budget = max_clusters is not None and len(active) > max_clusters
        if best_pair is None or (best_dist > threshold and not over_budget):
            break
        a, b = best_pair
        clusters[a] = clusters[a] + clusters[b]
        sums[a, :] += sums[b, :]
        sums[:, a] += sums[:, b]
        active.remove(b)

    return [sorted(clusters[a]) for a in active]


def _merge_average_linkage(
    base: np.ndarray,
    threshold: float,
    min_clusters: int,
    max_clusters: int | None,
) -> list[list[int]]:
    """Vectorized version of the merge loop in :func:`cluster_features`.

    Bit-identical pair selection: the python loop scans active pairs in
    row-major upper-triangle order keeping the first strict minimum, which
    is exactly ``np.argmin`` over ``triu_indices`` of the distance matrix
    built in active-list order; the per-pair division and the additive
    ``sums`` updates are the same arithmetic the reference performs.
    """
    d = base.shape[0]
    clusters: list[list[int]] = [[j] for j in range(d)]
    sums = base.copy()
    active = list(range(d))

    while len(active) > max(min_clusters, 1):
        act = np.asarray(active)
        sizes = np.array([len(clusters[a]) for a in active], dtype=float)
        dist = sums[np.ix_(act, act)] / np.outer(sizes, sizes)
        iu, ju = np.triu_indices(len(act), k=1)
        flat = dist[iu, ju]
        pos = int(np.argmin(flat))
        best_dist = float(flat[pos])
        over_budget = max_clusters is not None and len(active) > max_clusters
        if best_dist > threshold and not over_budget:
            break
        a, b = int(act[iu[pos]]), int(act[ju[pos]])
        clusters[a] = clusters[a] + clusters[b]
        sums[a, :] += sums[b, :]
        sums[:, a] += sums[:, b]
        active.remove(b)

    return [sorted(clusters[a]) for a in active]


class RelevanceCache:
    """Per-feature-id memo of full-row MI(F_j, y) for importance pruning.

    ``mutual_info_with_target`` discretizes and scores every column
    independently, so a feature's relevance never changes while its column
    is immutable — the session's prune step only pays for newly created
    features instead of re-estimating the whole live set every step.
    Values are bit-identical to the batch function (same discretizer, same
    estimator, per column).
    """

    def __init__(self, task: str, n_bins: int) -> None:
        self.task = task
        self.n_bins = n_bins
        self._y_codes: np.ndarray | None = None
        self._rel: dict[int, float] = {}

    def _target_codes(self, y: np.ndarray) -> np.ndarray:
        if self._y_codes is None:
            y = np.asarray(y).ravel()
            if self.task == "regression":
                self._y_codes = _discretize_continuous(y.astype(float), self.n_bins)
            else:
                self._y_codes = np.unique(y, return_inverse=True)[1]
        return self._y_codes

    def relevance(self, space, y: np.ndarray, fids: list[int]) -> np.ndarray:
        """MI(F_j, y) per feature, in ``fids`` order."""
        y_codes = self._target_codes(y)
        rel = self._rel
        for f in fids:
            if f not in rel:
                column = np.asarray(space.values(f), dtype=float).reshape(-1, 1)
                codes = KBinsDiscretizer(n_bins=self.n_bins).fit_transform(column)
                rel[f] = discrete_mutual_info(codes.ravel(), y_codes)
        return np.array([rel[f] for f in fids], dtype=float)


class IncrementalClusterer:
    """Feature clustering with cross-step MI caching over a ``FeatureSpace``.

    The Eq. 2 distance needs MI(F_j, y) per feature and MI(F_i, F_j) per
    pair, all computed on one fixed row subsample (the subsample depends
    only on the seed and the row count, so it is identical on every call
    of a session). Feature columns are immutable, so discretized codes,
    relevances and pairwise MIs are memoized by feature id — a step that
    adds ``m`` features to a ``k``-feature set estimates ``O(m·k)`` new
    pairs instead of ``O(k²)``. Pair MIs are keyed by *ordered* id pair:
    ``discrete_mutual_info`` is only value-symmetric up to summation
    order, and the seed computes position-ordered pairs, so both
    orientations may be cached when prunes reorder the live set.

    Output is bit-identical to
    ``cluster_features(sanitize_features(space.matrix()), y, ...)``
    (proven in ``tests/core/test_incremental_search.py``); requires a
    non-``None`` seed whenever subsampling applies, because the reference
    would draw fresh rows per call from an unseeded generator.
    """

    def __init__(
        self,
        task: str = "classification",
        distance_threshold: float | str = "auto",
        min_clusters: int = 2,
        max_clusters: int | None = None,
        varsigma: float = 1e-3,
        n_bins: int = 8,
        max_rows: int = 256,
        seed: int | None = 0,
    ) -> None:
        self.task = task
        self.distance_threshold = distance_threshold
        self.min_clusters = min_clusters
        self.max_clusters = max_clusters
        self.varsigma = varsigma
        self.n_bins = n_bins
        self.max_rows = max_rows
        self.seed = seed
        self._rows: np.ndarray | slice | None = None
        self._y_codes: np.ndarray | None = None
        self._codes: dict[int, np.ndarray] = {}
        self._rel: dict[int, float] = {}
        self._pair_mi: dict[tuple[int, int], float] = {}

    def _prepare_rows(self, n_rows: int, y: np.ndarray) -> None:
        if self._rows is not None:
            return
        if n_rows > self.max_rows:
            if self.seed is None:
                raise ValueError(
                    "IncrementalClusterer needs a fixed seed when subsampling "
                    "rows; an unseeded reference draws fresh rows per call"
                )
            rng = np.random.default_rng(self.seed)
            self._rows = rng.choice(n_rows, size=self.max_rows, replace=False)
        else:
            self._rows = slice(None)
        y_sub = np.asarray(y)[self._rows]
        if self.task == "regression":
            self._y_codes = _discretize_continuous(
                np.asarray(y_sub).ravel().astype(float), self.n_bins
            )
        else:
            self._y_codes = np.unique(np.asarray(y_sub).ravel(), return_inverse=True)[1]

    def _feature_codes(self, space, fid: int) -> np.ndarray:
        codes = self._codes.get(fid)
        if codes is None:
            column = np.asarray(space.values(fid), dtype=float)[self._rows]
            codes = (
                KBinsDiscretizer(n_bins=self.n_bins)
                .fit_transform(column.reshape(-1, 1))
                .ravel()
            )
            self._codes[fid] = codes
            self._rel[fid] = discrete_mutual_info(codes, self._y_codes)
        return codes

    def _pair(self, fa: int, fb: int) -> float:
        key = (fa, fb)
        mi = self._pair_mi.get(key)
        if mi is None:
            mi = discrete_mutual_info(self._codes[fa], self._codes[fb])
            self._pair_mi[key] = mi
        return mi

    def base_distance(self, space, y: np.ndarray, fids: list[int]) -> np.ndarray:
        """The Eq. 2 summand matrix over ``fids`` (cached per id / pair)."""
        self._prepare_rows(space.n_samples, y)
        for f in fids:
            self._feature_codes(space, f)
        d = len(fids)
        relevance = np.array([self._rel[f] for f in fids], dtype=float)
        redundancy = np.empty((d, d), dtype=float)
        for i in range(d):
            for j in range(i, d):
                redundancy[i, j] = redundancy[j, i] = self._pair(fids[i], fids[j])
        rel_diff = np.abs(relevance[:, None] - relevance[None, :])
        return rel_diff / (redundancy + self.varsigma)

    def cluster(self, space, y: np.ndarray, fids: list[int]) -> list[list[int]]:
        """Cluster the features into groups of *positions* within ``fids``
        (the same column-index convention as :func:`cluster_features`)."""
        d = len(fids)
        if d == 0:
            raise ValueError("No features to cluster")
        if d == 1:
            return [[0]]
        base = self.base_distance(space, y, fids)
        if self.distance_threshold == "auto":
            off_diag = base[~np.eye(d, dtype=bool)]
            threshold = float(np.median(off_diag))
        else:
            threshold = float(self.distance_threshold)
        return _merge_average_linkage(
            base, threshold, self.min_clusters, self.max_clusters
        )
