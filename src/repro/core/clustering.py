"""Incremental MI-based feature clustering (Equation 2).

Features start as singleton clusters; the two closest clusters merge
repeatedly until the closest distance exceeds a threshold. The distance is

    dis_ij = (1/|Ci||Cj|) Σ_{Fi∈Ci} Σ_{Fj∈Cj} |MI(Fi,y) − MI(Fj,y)| / (MI(Fi,Fj) + ς)

— features with similar label-relevance and high mutual redundancy are close.
The cluster-level distance is the average of base pairwise distances, so we
precompute the pairwise matrix once and merge with average linkage.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mutual_info import mutual_info_matrix, mutual_info_with_target

__all__ = ["pairwise_cluster_distance", "cluster_features"]


def pairwise_cluster_distance(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    varsigma: float = 1e-3,
    n_bins: int = 8,
    max_rows: int = 256,
    seed: int | None = 0,
) -> np.ndarray:
    """Base distance matrix over individual features (the Eq. 2 summand)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[0] > max_rows:
        rng = np.random.default_rng(seed)
        rows = rng.choice(X.shape[0], size=max_rows, replace=False)
        X, y = X[rows], y[rows]
    relevance = mutual_info_with_target(X, y, task=task, n_bins=n_bins)
    redundancy = mutual_info_matrix(X, n_bins=n_bins)
    rel_diff = np.abs(relevance[:, None] - relevance[None, :])
    return rel_diff / (redundancy + varsigma)


def cluster_features(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classification",
    distance_threshold: float | str = "auto",
    min_clusters: int = 2,
    max_clusters: int | None = None,
    varsigma: float = 1e-3,
    n_bins: int = 8,
    max_rows: int = 256,
    seed: int | None = 0,
) -> list[list[int]]:
    """Agglomerate feature columns into clusters of column indices.

    ``distance_threshold="auto"`` stops merging at the median of the initial
    pairwise distances — a scale-free choice that adapts as generated
    features change the MI landscape each step.
    """
    X = np.asarray(X, dtype=float)
    d = X.shape[1]
    if d == 0:
        raise ValueError("No features to cluster")
    if d == 1:
        return [[0]]

    base = pairwise_cluster_distance(
        X, y, task=task, varsigma=varsigma, n_bins=n_bins, max_rows=max_rows, seed=seed
    )
    if distance_threshold == "auto":
        off_diag = base[~np.eye(d, dtype=bool)]
        threshold = float(np.median(off_diag))
    else:
        threshold = float(distance_threshold)

    clusters: list[list[int]] = [[j] for j in range(d)]
    # sums[a][b] = total cross-pair base distance between clusters a and b;
    # average linkage = sums / (|a|·|b|). Merging is additive in sums.
    sums = base.copy()
    active = list(range(d))

    def avg_distance(a: int, b: int) -> float:
        return sums[a, b] / (len(clusters[a]) * len(clusters[b]))

    while len(active) > max(min_clusters, 1):
        best_pair, best_dist = None, np.inf
        for ii in range(len(active)):
            for jj in range(ii + 1, len(active)):
                a, b = active[ii], active[jj]
                dist = avg_distance(a, b)
                if dist < best_dist:
                    best_dist, best_pair = dist, (a, b)
        over_budget = max_clusters is not None and len(active) > max_clusters
        if best_pair is None or (best_dist > threshold and not over_budget):
            break
        a, b = best_pair
        clusters[a] = clusters[a] + clusters[b]
        sums[a, :] += sums[b, :]
        sums[:, a] += sums[:, b]
        active.remove(b)

    return [sorted(clusters[a]) for a in active]
