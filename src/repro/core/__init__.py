"""FastFT core: the paper's primary contribution.

The search is a resumable, observable session; the classic blocking call
is a thin wrapper over it. Quickstart::

    from repro.core import SearchSession, FastFTConfig
    from repro.core.callbacks import TimeBudget, EarlyStopping

    session = SearchSession(
        X, y, task="classification",
        config=FastFTConfig(episodes=20, steps_per_episode=8),
        callbacks=[TimeBudget(60), EarlyStopping(patience=5)],
    )
    for record in session:                 # one StepRecord per step
        ...                                # observe / break / checkpoint
    session.checkpoint("search.ckpt")      # resumable at any point
    session = SearchSession.resume("search.ckpt")
    result = session.run()                 # -> FastFTResult

    X_star = result.transform(X)           # T*(F) -> F*
    result.expressions()                   # traceable formulas
    result.time                            # Table II buckets

Blocking one-liner (unchanged public API)::

    result = FastFT(FastFTConfig(episodes=20)).fit(X, y, task)

See :mod:`repro.api` for the highest-level facade (``search``,
``fit_transform``, ``run_batch``, cached evaluation).
"""

from repro.core.agents import CascadingAgents, StepDecision
from repro.core.callbacks import (
    Callback,
    CallbackList,
    Checkpointer,
    EarlyStopping,
    HistoryCollector,
    TimeBudget,
    VerboseLogger,
)
from repro.core.clustering import cluster_features, pairwise_cluster_distance
from repro.core.config import FastFTConfig
from repro.core.engine import FastFT
from repro.core.novelty import NoveltyEstimator, novelty_distance
from repro.core.parallel import SearchOrchestrator, SessionView, SweepResult
from repro.core.operations import (
    BINARY_OPERATIONS,
    OPERATION_NAMES,
    OPERATIONS,
    UNARY_OPERATIONS,
    Operation,
    get_operation,
)
from repro.core.predictor import PerformancePredictor, SequenceRegressor
from repro.core.result import FastFTResult, StepRecord, TimeBreakdown
from repro.core.reward import NoveltyWeightSchedule, downstream_reward, pseudo_reward
from repro.core.sequence import FeatureNode, FeatureSpace, TransformationPlan
from repro.core.session import CheckpointCorruptError, SearchSession
from repro.core.state import STATE_DIM, describe_matrix, rep_operation
from repro.core.tokens import TokenVocabulary
from repro.core.tracing import feature_importance_table, reward_peak_features

__all__ = [
    "FastFT",
    "FastFTConfig",
    "FastFTResult",
    "SearchSession",
    "CheckpointCorruptError",
    "SearchOrchestrator",
    "SweepResult",
    "SessionView",
    "StepRecord",
    "TimeBreakdown",
    "Callback",
    "CallbackList",
    "VerboseLogger",
    "TimeBudget",
    "EarlyStopping",
    "HistoryCollector",
    "Checkpointer",
    "CascadingAgents",
    "StepDecision",
    "FeatureSpace",
    "FeatureNode",
    "TransformationPlan",
    "TokenVocabulary",
    "Operation",
    "OPERATIONS",
    "OPERATION_NAMES",
    "UNARY_OPERATIONS",
    "BINARY_OPERATIONS",
    "get_operation",
    "PerformancePredictor",
    "SequenceRegressor",
    "NoveltyEstimator",
    "novelty_distance",
    "NoveltyWeightSchedule",
    "downstream_reward",
    "pseudo_reward",
    "cluster_features",
    "pairwise_cluster_distance",
    "describe_matrix",
    "rep_operation",
    "STATE_DIM",
    "feature_importance_table",
    "reward_peak_features",
]
