"""FastFT core: the paper's primary contribution.

Public API::

    from repro.core import FastFT, FastFTConfig

    result = FastFT(FastFTConfig(episodes=20, steps_per_episode=8)).fit(X, y, task)
    X_star = result.transform(X)          # T*(F) -> F*
    result.expressions()                   # traceable formulas
    result.time                            # Table II buckets
"""

from repro.core.agents import CascadingAgents, StepDecision
from repro.core.clustering import cluster_features, pairwise_cluster_distance
from repro.core.config import FastFTConfig
from repro.core.engine import FastFT, FastFTResult, StepRecord, TimeBreakdown
from repro.core.novelty import NoveltyEstimator, novelty_distance
from repro.core.operations import (
    BINARY_OPERATIONS,
    OPERATION_NAMES,
    OPERATIONS,
    UNARY_OPERATIONS,
    Operation,
    get_operation,
)
from repro.core.predictor import PerformancePredictor, SequenceRegressor
from repro.core.reward import NoveltyWeightSchedule, downstream_reward, pseudo_reward
from repro.core.sequence import FeatureNode, FeatureSpace, TransformationPlan
from repro.core.state import STATE_DIM, describe_matrix, rep_operation
from repro.core.tokens import TokenVocabulary
from repro.core.tracing import feature_importance_table, reward_peak_features

__all__ = [
    "FastFT",
    "FastFTConfig",
    "FastFTResult",
    "StepRecord",
    "TimeBreakdown",
    "CascadingAgents",
    "StepDecision",
    "FeatureSpace",
    "FeatureNode",
    "TransformationPlan",
    "TokenVocabulary",
    "Operation",
    "OPERATIONS",
    "OPERATION_NAMES",
    "UNARY_OPERATIONS",
    "BINARY_OPERATIONS",
    "get_operation",
    "PerformancePredictor",
    "SequenceRegressor",
    "NoveltyEstimator",
    "novelty_distance",
    "NoveltyWeightSchedule",
    "downstream_reward",
    "pseudo_reward",
    "cluster_features",
    "pairwise_cluster_distance",
    "describe_matrix",
    "rep_operation",
    "STATE_DIM",
    "feature_importance_table",
    "reward_peak_features",
]
