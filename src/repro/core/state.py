"""State representations Rep(C), Rep(F̂), Rep(o) (Fig 4 of the paper).

Following the GRFG-lineage convention the paper cites, a feature cluster (or
the whole feature set) is summarized by *descriptive statistics of
descriptive statistics*: seven column statistics are computed per feature,
then the same seven statistics are computed across features for each of the
seven rows, yielding a fixed 49-dimensional vector regardless of the number
of features or samples. Operations are one-hot encoded.
"""

from __future__ import annotations

import numpy as np

__all__ = ["STATE_DIM", "describe_matrix", "rep_operation"]

STATE_DIM = 49


def _seven_stats(values: np.ndarray, axis: int) -> np.ndarray:
    """[mean, std, min, 25%, 50%, 75%, max] along ``axis``."""
    return np.stack(
        [
            np.mean(values, axis=axis),
            np.std(values, axis=axis),
            np.min(values, axis=axis),
            np.percentile(values, 25, axis=axis),
            np.percentile(values, 50, axis=axis),
            np.percentile(values, 75, axis=axis),
            np.max(values, axis=axis),
        ]
    )


def describe_matrix(X: np.ndarray) -> np.ndarray:
    """49-dim describe-of-describe state vector, signed-log compressed.

    The signed log keeps the vector bounded no matter how explosive the
    generated features are (e.g. after ``exp`` chains), which the policy
    networks need for stable training.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.size == 0:
        raise ValueError("Empty matrix has no state representation")
    X = np.nan_to_num(X, nan=0.0, posinf=1e12, neginf=-1e12)
    per_column = _seven_stats(X, axis=0)  # (7, n_features)
    summary = _seven_stats(per_column, axis=1)  # (7, 7)
    flat = summary.ravel()
    return np.sign(flat) * np.log1p(np.abs(flat))


def rep_operation(op_index: int, n_ops: int) -> np.ndarray:
    """One-hot Rep(o) over the fixed-size operation set."""
    if not 0 <= op_index < n_ops:
        raise ValueError(f"op_index {op_index} out of range [0, {n_ops})")
    onehot = np.zeros(n_ops)
    onehot[op_index] = 1.0
    return onehot
