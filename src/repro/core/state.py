"""State representations Rep(C), Rep(F̂), Rep(o) (Fig 4 of the paper).

Following the GRFG-lineage convention the paper cites, a feature cluster (or
the whole feature set) is summarized by *descriptive statistics of
descriptive statistics*: seven column statistics are computed per feature,
then the same seven statistics are computed across features for each of the
seven rows, yielding a fixed 49-dimensional vector regardless of the number
of features or samples. Operations are one-hot encoded.
"""

from __future__ import annotations

import numpy as np

__all__ = ["STATE_DIM", "StateCache", "describe_matrix", "rep_operation"]

STATE_DIM = 49


def _seven_stats(values: np.ndarray, axis: int) -> np.ndarray:
    """[mean, std, min, 25%, 50%, 75%, max] along ``axis``."""
    return np.stack(
        [
            np.mean(values, axis=axis),
            np.std(values, axis=axis),
            np.min(values, axis=axis),
            np.percentile(values, 25, axis=axis),
            np.percentile(values, 50, axis=axis),
            np.percentile(values, 75, axis=axis),
            np.max(values, axis=axis),
        ]
    )


def describe_matrix(X: np.ndarray) -> np.ndarray:
    """49-dim describe-of-describe state vector, signed-log compressed.

    The signed log keeps the vector bounded no matter how explosive the
    generated features are (e.g. after ``exp`` chains), which the policy
    networks need for stable training.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.size == 0:
        raise ValueError("Empty matrix has no state representation")
    X = np.nan_to_num(X, nan=0.0, posinf=1e12, neginf=-1e12)
    per_column = _seven_stats(X, axis=0)  # (7, n_features)
    summary = _seven_stats(per_column, axis=1)  # (7, 7)
    flat = summary.ravel()
    return np.sign(flat) * np.log1p(np.abs(flat))


class StateCache:
    """Incremental :func:`describe_matrix` over a ``FeatureSpace``.

    Feature columns are immutable once allocated, so their seven per-column
    statistics never change; this cache computes them once per feature id
    and reduces the cached ``(7, k)`` block for every subsequent Rep(C) /
    Rep(F̂) request — per-step state representation drops from
    O(n_samples x n_features) to O(n_features) after each feature's first
    appearance.

    Bit-identity notes (pinned by ``tests/test_determinism_golden.py``):

    - numpy's axis-0 reductions take a *sequential* per-column accumulation
      for C-order matrices with >= 2 columns, so per-column mean/std are
      independent of which other columns share the matrix — cached values
      computed from a 2-column batch equal those the seed computed inside
      the full live matrix.
    - a 1-column matrix instead reduces along a contiguous axis with
      numpy's *pairwise* summation, which differs in the last bits; the
      cache therefore keeps a separate single-column variant for
      singleton clusters, exactly reproducing ``describe_matrix`` on an
      ``(n, 1)`` input.
    - the second-stage reduction runs over the assembled C-order ``(7, k)``
      block, identical in values and layout to the seed's.
    """

    def __init__(self, space) -> None:
        self._space = space
        self._wide: dict[int, np.ndarray] = {}
        self._single: dict[int, np.ndarray] = {}

    @staticmethod
    def _clean(column: np.ndarray) -> np.ndarray:
        return np.nan_to_num(column, nan=0.0, posinf=1e12, neginf=-1e12)

    def _compute_wide(self, fids: list[int]) -> None:
        cols = [self._clean(self._space.values(f)) for f in fids]
        if len(cols) == 1:
            # Pad to width 2 so the reduction takes the same sequential
            # per-column path as inside any wider matrix (see class note).
            batch = np.column_stack([cols[0], cols[0]])
            self._wide[fids[0]] = np.ascontiguousarray(
                _seven_stats(batch, axis=0)[:, 0]
            )
            return
        stats = _seven_stats(np.column_stack(cols), axis=0)
        for i, f in enumerate(fids):
            self._wide[f] = np.ascontiguousarray(stats[:, i])

    def _single_stats(self, fid: int) -> np.ndarray:
        cached = self._single.get(fid)
        if cached is None:
            column = self._clean(self._space.values(fid)).reshape(-1, 1)
            cached = self._single[fid] = _seven_stats(column, axis=0)
        return cached

    def describe(self, fids: list[int]) -> np.ndarray:
        """49-dim state vector of the features, bit-identical to
        ``describe_matrix(space.matrix(fids))`` on sanitized columns."""
        if not fids:
            raise ValueError("Empty matrix has no state representation")
        if len(fids) == 1:
            per_column = self._single_stats(fids[0])
        else:
            missing = [f for f in fids if f not in self._wide]
            if missing:
                self._compute_wide(missing)
            per_column = np.stack([self._wide[f] for f in fids], axis=1)
        summary = _seven_stats(per_column, axis=1)
        flat = summary.ravel()
        return np.sign(flat) * np.log1p(np.abs(flat))


def rep_operation(op_index: int, n_ops: int) -> np.ndarray:
    """One-hot Rep(o) over the fixed-size operation set."""
    if not 0 <= op_index < n_ops:
        raise ValueError(f"op_index {op_index} out of range [0, {n_ops})")
    onehot = np.zeros(n_ops)
    onehot[op_index] = 1.0
    return onehot
