"""The operation set O (Definition 1): unary and binary feature transforms.

Every operation is numerically guarded — ``log``, ``divide``, ``sqrt`` and
friends never emit NaN/inf — because the RL agents will compose them blindly
and the downstream oracle requires finite inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Operation",
    "UNARY_OPERATIONS",
    "BINARY_OPERATIONS",
    "OPERATIONS",
    "OPERATION_NAMES",
    "get_operation",
]

_CLIP = 1e12


def _safe(values: np.ndarray) -> np.ndarray:
    values = np.nan_to_num(values, nan=0.0, posinf=_CLIP, neginf=-_CLIP)
    return np.clip(values, -_CLIP, _CLIP)


@dataclass(frozen=True)
class Operation:
    """A named transform with arity 1 or 2 and an infix template.

    ``template`` uses ``{0}`` / ``{1}`` placeholders, e.g. ``"({0}+{1})"`` or
    ``"sqrt({0})"`` — this is what makes generated features traceable
    (Table IV / Fig 15).
    """

    name: str
    arity: int
    fn: Callable[..., np.ndarray]
    template: str

    def __call__(self, *args: np.ndarray) -> np.ndarray:
        if len(args) != self.arity:
            raise ValueError(f"{self.name} expects {self.arity} operand(s), got {len(args)}")
        with np.errstate(all="ignore"):
            return _safe(self.fn(*[np.asarray(a, dtype=float) for a in args]))

    def format(self, *operands: str) -> str:
        return self.template.format(*operands)


UNARY_OPERATIONS: list[Operation] = [
    Operation("square", 1, lambda a: a * a, "({0})^2"),
    Operation("sqrt", 1, lambda a: np.sqrt(np.abs(a)), "sqrt(|{0}|)"),
    Operation("log", 1, lambda a: np.log(np.abs(a) + 1.0), "log(|{0}|+1)"),
    Operation("exp", 1, lambda a: np.exp(np.clip(a, -25.0, 25.0)), "exp({0})"),
    Operation("reciprocal", 1, lambda a: 1.0 / (a + np.where(a >= 0, 1e-6, -1e-6)), "1/({0})"),
    Operation("sin", 1, np.sin, "sin({0})"),
    Operation("cos", 1, np.cos, "cos({0})"),
    Operation("tanh", 1, np.tanh, "tanh({0})"),
    Operation("cube", 1, lambda a: a * a * a, "({0})^3"),
    Operation(
        "sigmoid", 1, lambda a: 1.0 / (1.0 + np.exp(-np.clip(a, -25.0, 25.0))), "sigmoid({0})"
    ),
]

BINARY_OPERATIONS: list[Operation] = [
    Operation("add", 2, lambda a, b: a + b, "({0}+{1})"),
    Operation("subtract", 2, lambda a, b: a - b, "({0}-{1})"),
    Operation("multiply", 2, lambda a, b: a * b, "({0}*{1})"),
    Operation(
        "divide", 2, lambda a, b: a / (b + np.where(b >= 0, 1e-6, -1e-6)), "({0}/{1})"
    ),
]

OPERATIONS: list[Operation] = UNARY_OPERATIONS + BINARY_OPERATIONS
OPERATION_NAMES: list[str] = [op.name for op in OPERATIONS]
_BY_NAME = {op.name: op for op in OPERATIONS}


def get_operation(name: str) -> Operation:
    """Look up an operation by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"Unknown operation {name!r}. Available: {OPERATION_NAMES}") from None
