"""Traceability analyses: feature importance tables and reward-peak reports.

Backs Table IV (top-10 importances on original vs transformed Wine Quality
Red, with explicit formulas) and Fig 15 (distinct features generated at
reward-function peaks on Cardiovascular).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import FastFTResult, StepRecord
from repro.ml.evaluation import default_model_for_task
from repro.ml.preprocessing import sanitize_features

__all__ = ["ImportanceRow", "feature_importance_table", "reward_peak_features"]


@dataclass(frozen=True)
class ImportanceRow:
    """One row of a Table IV-style importance listing."""

    expression: str
    importance: float


def feature_importance_table(
    X: np.ndarray,
    y: np.ndarray,
    task: str,
    expressions: list[str],
    top_k: int = 10,
    seed: int | None = 0,
) -> list[ImportanceRow]:
    """Fit the task's default forest and rank features by impurity importance.

    ``expressions`` are the traceable formulas aligned with X's columns; the
    returned rows pair each top-k formula with its importance score.
    """
    X = sanitize_features(np.asarray(X, dtype=float))
    if X.shape[1] != len(expressions):
        raise ValueError("expressions must align with X's columns")
    model = default_model_for_task(task, n_estimators=20, seed=seed)
    model.fit(X, y)
    importances = model.feature_importances_
    order = np.argsort(-importances)[:top_k]
    return [ImportanceRow(expressions[i], float(importances[i])) for i in order]


def reward_peak_features(
    result: FastFTResult, top_k: int = 5, max_expressions_per_peak: int = 3
) -> list[dict]:
    """Fig 15: the distinct features generated at the highest-reward steps.

    Returns one record per peak with the step coordinates, the reward, and
    up to ``max_expressions_per_peak`` formulas created at that step.
    """
    peaks: list[StepRecord] = result.reward_peaks(top_k)
    out = []
    for record in peaks:
        out.append(
            {
                "episode": record.episode,
                "step": record.step,
                "global_step": record.global_step,
                "reward": record.reward,
                "score": record.score,
                "novelty": record.novelty,
                "expressions": record.new_expressions[:max_expressions_per_peak],
            }
        )
    return out
