"""Token vocabulary for feature-transformation sequences (Definition 4).

A sequence token is a feature, an operation, or a special token (start, end,
separator) — see Fig 2 of the paper. The vocabulary is fixed-size so the
LSTM encoders can embed it: feature tokens occupy a budget of slots and
generated features map onto slots modulo the budget (feature identity churn
is bounded by the engine's pruning cap, so collisions are rare in practice).
"""

from __future__ import annotations

import numpy as np

__all__ = ["TokenVocabulary"]


class TokenVocabulary:
    """Bidirectional token mapping: specials + operations + feature slots."""

    PAD = 0
    SOS = 1
    EOS = 2
    SEP = 3
    _N_SPECIAL = 4

    def __init__(self, operation_names: list[str], n_feature_slots: int = 256) -> None:
        if n_feature_slots < 1:
            raise ValueError("n_feature_slots must be >= 1")
        if len(set(operation_names)) != len(operation_names):
            raise ValueError("Duplicate operation names")
        self.operation_names = list(operation_names)
        self.n_feature_slots = n_feature_slots
        self._op_index = {name: i for i, name in enumerate(self.operation_names)}
        self._feat_offset = self._N_SPECIAL + len(self.operation_names)

    def __len__(self) -> int:
        return self._feat_offset + self.n_feature_slots

    def op_token(self, name: str) -> int:
        try:
            return self._N_SPECIAL + self._op_index[name]
        except KeyError:
            raise KeyError(f"Unknown operation {name!r}") from None

    def feature_token(self, feature_id: int) -> int:
        if feature_id < 0:
            raise ValueError("feature_id must be non-negative")
        return self._feat_offset + (feature_id % self.n_feature_slots)

    def describe(self, token: int) -> str:
        """Human-readable token name (debugging / tests)."""
        if token == self.PAD:
            return "<pad>"
        if token == self.SOS:
            return "<sos>"
        if token == self.EOS:
            return "<eos>"
        if token == self.SEP:
            return "<sep>"
        if self._N_SPECIAL <= token < self._feat_offset:
            return self.operation_names[token - self._N_SPECIAL]
        if self._feat_offset <= token < len(self):
            return f"f[{token - self._feat_offset}]"
        raise ValueError(f"Token {token} outside vocabulary of size {len(self)}")

    def step_tokens(
        self, op_name: str, head_ids: list[int], tail_ids: list[int] | None = None
    ) -> list[int]:
        """Tokens appended for one group-wise crossing step.

        Encoded as ``head... op tail... SEP`` which compresses the
        per-feature segments of Fig 2 into one group-wise segment (the
        sequence would otherwise grow with |a_h|×|a_t|).
        """
        tokens = [self.feature_token(h) for h in head_ids]
        tokens.append(self.op_token(op_name))
        if tail_ids:
            tokens.extend(self.feature_token(t) for t in tail_ids)
        tokens.append(self.SEP)
        return tokens

    def finalize(self, body: list[int], max_len: int | None = None) -> np.ndarray:
        """Wrap a token body with SOS/EOS, truncating the *oldest* steps
        when the sequence exceeds ``max_len``."""
        tokens = [self.SOS, *body, self.EOS]
        if max_len is not None and len(tokens) > max_len:
            tokens = [self.SOS, *tokens[len(tokens) - max_len + 1 : -1], self.EOS]
        return np.asarray(tokens, dtype=np.int64)
