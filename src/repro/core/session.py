"""The incremental FastFT search session.

:class:`SearchSession` is the step-structured heart of the system: it owns
every piece of mutable search state (feature space, cascading agents, φ/ψ
components, replay memory, trigger windows, RNG) and exposes the paper's
four stages — cold start, component training, efficient exploration,
fine-tuning — one exploration step at a time:

    session = SearchSession(X, y, task="classification", config=cfg)
    for record in session:            # iterator protocol == session.step()
        ...                           # observe each StepRecord live
    result = session.result()

or, equivalently, ``session.run()`` which also drives
:mod:`repro.core.callbacks` observers. Sessions are resumable:

    session.checkpoint("search.ckpt")            # anywhere, even mid-episode
    session = SearchSession.resume("search.ckpt")
    result = session.run()

Checkpoints capture the complete state — including the
``numpy.random.Generator`` streams of the session, the agents' learners and
the replay buffers — so a resumed run reproduces the uninterrupted run's
decisions, scores and history bit-for-bit (wall-clock timing fields aside).

:meth:`repro.core.engine.FastFT.fit` is a thin blocking wrapper around this
class, and :mod:`repro.api` builds the high-level facade on top of it.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from contextlib import nullcontext

import numpy as np

from repro.core.agents import CascadingAgents
from repro.core.async_oracle import AsyncOracle
from repro.core.callbacks import Callback, CallbackList, VerboseLogger
from repro.core.clustering import IncrementalClusterer, RelevanceCache, cluster_features
from repro.core.config import FastFTConfig
from repro.core.fsio import atomic_write_bytes
from repro.core.novelty import EmbeddingLog, NoveltyEstimator, novelty_distance
from repro.core.operations import OPERATION_NAMES, OPERATIONS
from repro.core.predictor import PerformancePredictor
from repro.core.result import FastFTResult, StepRecord, TimeBreakdown
from repro.core.reward import NoveltyWeightSchedule, downstream_reward, pseudo_reward
from repro.core.sequence import FeatureSpace, TransformationPlan
from repro.core.state import StateCache, describe_matrix
from repro.core.tokens import TokenVocabulary
from repro.ml.evaluation import TASKS, DownstreamEvaluator, default_model_for_task
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features
from repro.nn.tensor import no_grad

__all__ = [
    "SearchSession",
    "make_default_evaluator",
    "CheckpointCorruptError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
]

CHECKPOINT_FORMAT = "fastft-session"
CHECKPOINT_VERSION = 1


class CheckpointCorruptError(ValueError):
    """A checkpoint file exists but cannot be deserialized.

    Raised by :meth:`SearchSession.resume` when the pickle stream is
    truncated or corrupted — distinct from ``OSError`` (missing file) and
    from the plain ``ValueError`` of a well-formed file in an unknown
    format/version. Checkpoints are published atomically (tmp +
    ``os.replace`` + fsync), so this error indicates external damage
    (disk fault, manual truncation, fault injection), never an
    interrupted writer.
    """


def make_default_evaluator(task: str, config: FastFTConfig) -> DownstreamEvaluator:
    """The paper-default downstream oracle a session builds when none is
    supplied — the single source of truth shared with :mod:`repro.api`.

    ``config.oracle_engine`` selects the forest's split engine (the
    presorted engine is bit-identical to the naive reference, so scores
    and search trajectories do not depend on the choice) and
    ``config.cv_jobs`` turns on fold-parallel cross-validation.
    """
    return DownstreamEvaluator(
        task,
        model=default_model_for_task(
            task,
            n_estimators=config.rf_estimators,
            max_depth=config.rf_max_depth,
            seed=config.seed,
            split_engine=config.oracle_engine,
        ),
        n_splits=config.cv_splits,
        seed=config.seed,
        engine=config.oracle_engine,
        cv_jobs=config.cv_jobs,
    )


class SearchSession:
    """A pausable, observable, checkpointable FastFT search.

    Parameters
    ----------
    X, y:
        The input feature matrix and target.
    task:
        ``"classification"``, ``"regression"`` or ``"detection"``.
    config:
        Search hyper-parameters; defaults to :class:`FastFTConfig`.
    feature_names:
        Optional column names used in traceable expressions.
    evaluator:
        Downstream oracle; any callable object with the
        :class:`~repro.ml.evaluation.DownstreamEvaluator` interface
        (``__call__(X, y) -> float`` plus ``n_calls``/``reset_counters``),
        e.g. a cache-wrapped evaluator from :mod:`repro.api`.
    callbacks:
        Iterable of :class:`~repro.core.callbacks.Callback` observers.
        ``config.verbose=True`` implicitly adds a
        :class:`~repro.core.callbacks.VerboseLogger`.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task: str = "classification",
        config: FastFTConfig | None = None,
        feature_names: list[str] | None = None,
        evaluator: DownstreamEvaluator | None = None,
        callbacks: list[Callback] | None = None,
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"Unknown task {task!r}; expected one of {TASKS}")
        self.config = config or FastFTConfig()
        self.task = task
        self._X = sanitize_features(np.asarray(X, dtype=float))
        self._y = np.asarray(y)
        self._feature_names = list(feature_names) if feature_names is not None else None
        self._evaluator = evaluator
        self._callbacks = CallbackList(callbacks)
        if self.config.verbose and not any(
            isinstance(cb, VerboseLogger) for cb in self._callbacks.callbacks
        ):
            self._callbacks.append(VerboseLogger())

        self._started = False
        self._finished = False
        self._stop_requested = False
        self._stop_reason: str | None = None
        self._finish_notified_at: int | None = None

        # Observability (repro.obs): the tracer is attached by a
        # TracingCallback and only *reads* timings the session measures
        # anyway — nothing here feeds back into the trajectory. The
        # last_*_seconds attributes expose phase durations the per-step
        # records cannot carry, for callbacks that fire right after them.
        self._tracer = None
        self.base_eval_seconds = 0.0
        self.last_episode_setup_seconds = 0.0
        self.last_reconcile_seconds = 0.0
        self.last_retrain_seconds = 0.0

    # -- lifecycle observability ------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def finished(self) -> bool:
        """All configured episodes ran to completion."""
        return self._finished

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    @property
    def stop_reason(self) -> str | None:
        return self._stop_reason

    @property
    def done(self) -> bool:
        """No more steps will run (exhausted or stopped by a callback)."""
        return self._finished or self._stop_requested

    @property
    def episode(self) -> int:
        """Index of the episode the next step belongs to."""
        return self._episode if self._started else 0

    @property
    def global_step(self) -> int:
        return self._global_step if self._started else 0

    @property
    def total_steps(self) -> int:
        return self.config.episodes * self.config.steps_per_episode

    @property
    def base_score(self) -> float:
        self._require_started()
        return self._base_score

    @property
    def best_score(self) -> float:
        """Best *real* downstream score seen so far (≥ base score)."""
        self._require_started()
        return max(self._best_real_score, self._base_score)

    @property
    def n_features(self) -> int:
        if self._started and self._space is not None:
            return self._space.n_features
        return self._X.shape[1]

    @property
    def n_downstream_calls(self) -> int:
        return self._n_eval_calls if self._started else 0

    @property
    def history(self) -> list[StepRecord]:
        return list(self._history) if self._started else []

    @property
    def callbacks(self) -> CallbackList:
        return self._callbacks

    def add_callback(self, callback: Callback) -> None:
        self._callbacks.append(callback)

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` (or ``None`` to detach).

        Forwards to the downstream evaluator (per-fold timings, engine
        label) and the async oracle pool (queue telemetry) when present.
        Tracers are process-local: they never survive pickling.
        """
        self._tracer = tracer
        evaluator = self._evaluator
        # A cache wrapper (repro.api.CachedEvaluator) holds the real
        # evaluator on `.evaluator`; instrument the innermost one.
        inner = getattr(evaluator, "evaluator", evaluator)
        if hasattr(inner, "set_tracer"):
            inner.set_tracer(tracer)
        if getattr(self, "_async_oracle", None) is not None:
            self._async_oracle.set_tracer(tracer)

    def request_stop(self, reason: str = "") -> None:
        """Ask the session to end after the current step (callback-safe)."""
        self._stop_requested = True
        if reason and self._stop_reason is None:
            self._stop_reason = reason

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("Session not started; call start() or step() first")

    # -- construction of the search machinery ----------------------------------

    def _make_components(
        self, vocab_size: int
    ) -> tuple[PerformancePredictor | None, NoveltyEstimator | None]:
        cfg = self.config
        predictor = None
        novelty = None
        if cfg.use_performance_predictor:
            predictor = PerformancePredictor(
                vocab_size,
                seq_model=cfg.seq_model,
                embed_dim=cfg.embed_dim,
                hidden_dim=cfg.hidden_dim,
                num_layers=cfg.encoder_layers,
                head_dims=cfg.predictor_head_dims,
                lr=cfg.component_lr,
                seed=cfg.seed,
            )
        if cfg.use_novelty:
            novelty = NoveltyEstimator(
                vocab_size,
                seq_model=cfg.seq_model,
                embed_dim=cfg.embed_dim,
                hidden_dim=cfg.hidden_dim,
                num_layers=cfg.encoder_layers,
                estimator_head_dims=cfg.novelty_head_dims,
                orthogonal_gain=cfg.orthogonal_gain,
                lr=cfg.component_lr,
                seed=cfg.seed,
            )
        return predictor, novelty

    def start(self) -> "SearchSession":
        """Measure the base score and build all search state; idempotent."""
        if self._started:
            return self
        cfg = self.config

        if self._evaluator is None:
            self._evaluator = make_default_evaluator(self.task, cfg)
        self._rng = np.random.default_rng(cfg.seed)
        self._vocab = TokenVocabulary(OPERATION_NAMES, n_feature_slots=cfg.feature_slots)
        self._predictor, self._novelty = self._make_components(len(self._vocab))
        self._agents = CascadingAgents(
            n_ops=len(OPERATIONS),
            framework=cfg.rl_framework,
            hidden=cfg.agent_hidden,
            lr=cfg.agent_lr,
            gamma=cfg.gamma,
            entropy_coef=cfg.entropy_coef,
            memory_size=cfg.memory_size,
            replay_batch_size=cfg.replay_batch_size,
            prioritized=cfg.prioritized_replay,
            per_alpha=cfg.per_alpha,
            per_beta=cfg.per_beta,
            seed=cfg.seed,
        )
        self._schedule = NoveltyWeightSchedule(
            cfg.novelty_weight_start, cfg.novelty_weight_end, cfg.novelty_decay_steps
        )

        self._timers = TimeBreakdown()
        self._history: list[StepRecord] = []
        self._feature_cap = cfg.resolved_max_features(self._X.shape[1])

        self._n_eval_calls = 0
        t0 = time.perf_counter()
        self._base_score = self._evaluate_matrix(self._X)
        self.base_eval_seconds = time.perf_counter() - t0
        self._timers.evaluation += self.base_eval_seconds

        self._best_real_score = self._base_score
        self._best_real_plan = FeatureSpace(self._X, self._feature_names).snapshot()
        self._best_pseudo_score = -np.inf
        self._best_pseudo_plan: TransformationPlan | None = None
        self._pseudo_validation: tuple[TransformationPlan, float] | None = None

        # Training records for the evaluation components.
        self._eval_sequences: deque[np.ndarray] = deque(maxlen=cfg.eval_record_cap)
        self._eval_scores: deque[float] = deque(maxlen=cfg.eval_record_cap)
        self._seen_sequences: deque[np.ndarray] = deque(maxlen=2 * cfg.eval_record_cap)

        # Adaptive-trigger percentile windows (§III-D).
        self._pred_window: deque[float] = deque(maxlen=cfg.trigger_window)
        self._nov_window: deque[float] = deque(maxlen=cfg.trigger_window)

        # Fig 14 bookkeeping (preallocated growing buffer; the former
        # python list cost an O(steps) np.array rebuild per step).
        self._embedding_history = EmbeddingLog()
        self._seen_expressions: set[str] = set()
        self._unencountered_total = 0

        # Columnar-arena inner loop (cfg.inner_loop == "arena"): per-episode
        # incremental caches, all bit-identical to the naive reference path.
        # Subsampled MI clustering can only be cached when the row subsample
        # is pinned by a seed; an unseeded session falls back to the
        # reference clustering (the rest of the arena path still applies).
        self._use_arena = cfg.inner_loop == "arena"
        self._incremental_clustering = self._use_arena and not (
            cfg.seed is None and self._X.shape[0] > cfg.mi_max_rows
        )
        self._state_cache: StateCache | None = None
        self._clusterer: IncrementalClusterer | None = None
        self._relevance_cache: RelevanceCache | None = None

        self._global_step = 0
        self._components_trained = False

        # Async oracle state (cfg.oracle_mode == "async"): triggered
        # evaluations are deferred onto the pool and reconciled at pinned
        # points; the pool itself is built lazily on first submission.
        self._async_mode = cfg.oracle_mode == "async"
        self._async_oracle: AsyncOracle | None = None
        self._pending_evals: list[tuple[int, np.ndarray, TransformationPlan]] = []

        # Per-episode state (populated by _begin_episode).
        self._episode = 0
        self._step_in_episode = 0
        self._space: FeatureSpace | None = None
        self._body_tokens: list[int] = []
        self._prev_seq: np.ndarray | None = None
        self._clusters: list[list[int]] = []
        self._overall_rep: np.ndarray | None = None
        self._cluster_reps: np.ndarray | None = None
        self._prev_score_used = self._base_score
        self._prev_phi: float | None = None

        self._started = True
        self._callbacks.on_search_start(self)
        return self

    # -- evaluation plumbing -----------------------------------------------------

    def _evaluate_matrix(self, matrix: np.ndarray) -> float:
        """Run the downstream oracle, counting only *actual* CV runs.

        A cache-wrapped evaluator (see :class:`repro.api.EvaluationCache`)
        only bumps its ``n_calls`` on cache misses, so
        ``result.n_downstream_calls`` honestly reports oracle cost.
        """
        before = getattr(self._evaluator, "n_calls", None)
        score = self._evaluator(matrix, self._y)
        if before is None:
            self._n_eval_calls += 1
        else:
            self._n_eval_calls += max(0, self._evaluator.n_calls - before)
        return float(score)

    def _ensure_oracle(self) -> AsyncOracle:
        if self._async_oracle is None:
            cfg = self.config
            self._async_oracle = AsyncOracle(
                self._evaluator,
                self._y,
                n_workers=cfg.oracle_workers,
                timeout=cfg.oracle_timeout,
                retries=cfg.oracle_retries,
            )
            if self._tracer is not None:
                self._async_oracle.set_tracer(self._tracer)
        return self._async_oracle

    def _reconcile(self) -> None:
        """Drain every pending async evaluation, in submission order.

        This is the only place deferred real scores touch search state,
        and it runs at schedule-pinned points (every ``reconcile_every_k``
        global steps, episode end, ``result()``, ``checkpoint()``) — so
        the trajectory depends on the reconcile schedule, never on worker
        timing. Degraded submissions (crash/timeout past the retry
        budget) keep their predictor-estimated step scores.
        """
        if not self._pending_evals:
            return
        t0 = time.perf_counter()
        outcomes = self._async_oracle.drain()
        landed = degraded = 0
        for (ticket, seq, plan), outcome in zip(self._pending_evals, outcomes):
            assert outcome.ticket == ticket
            if not outcome.ok:
                degraded += 1
                continue
            landed += 1
            score = float(outcome.score)
            self._n_eval_calls += outcome.n_calls
            self._eval_sequences.append(seq)
            self._eval_scores.append(score)
            if score > self._best_real_score:
                self._best_real_score = score
                self._best_real_plan = plan
        self._pending_evals = []
        self.last_reconcile_seconds = time.perf_counter() - t0
        self._timers.evaluation += self.last_reconcile_seconds
        self._callbacks.on_reconcile(self, landed, degraded)

    def close(self) -> None:
        """Release the async oracle pool (no-op in serial mode).

        Pending evaluations are reconciled first, so closing never drops
        submitted work. ``run()`` calls this when the session is done.
        """
        if getattr(self, "_async_oracle", None) is not None:
            self._reconcile()
            self._async_oracle.shutdown()
            self._async_oracle = None

    # -- feature-space helpers ----------------------------------------------------

    @staticmethod
    def _cluster_fids(space: FeatureSpace, column_clusters: list[list[int]]) -> list[list[int]]:
        live = space.live_ids_view  # read-only; fresh lists are built below
        return [[live[c] for c in cols] for cols in column_clusters]

    def _recluster(
        self, space: FeatureSpace
    ) -> tuple[list[list[int]], np.ndarray, np.ndarray]:
        if self._state_cache is not None:
            # Arena path: per-column stats and MI estimates are cached by
            # feature id (columns are immutable), so only newly created
            # features cost O(n_samples) work — bit-identical to the
            # reference branch below, which is pinned by the determinism
            # goldens and tests/core/test_incremental_search.py.
            live = space.live_ids_view
            if self._clusterer is not None:
                column_clusters = self._clusterer.cluster(space, self._y, live)
            else:  # unseeded row subsampling: reference clustering per call
                column_clusters = self._reference_clusters(sanitize_features(space.matrix()))
            fid_clusters = self._cluster_fids(space, column_clusters)
            overall_rep = self._state_cache.describe(live)
            cluster_reps = np.stack(
                [self._state_cache.describe(fids) for fids in fid_clusters]
            )
            return fid_clusters, overall_rep, cluster_reps
        matrix = sanitize_features(space.matrix())
        column_clusters = self._reference_clusters(matrix)
        fid_clusters = self._cluster_fids(space, column_clusters)
        overall_rep = describe_matrix(matrix)
        cluster_reps = np.stack(
            [describe_matrix(space.matrix(fids)) for fids in fid_clusters]
        )
        return fid_clusters, overall_rep, cluster_reps

    def _reference_clusters(self, matrix: np.ndarray) -> list[list[int]]:
        cfg = self.config
        return cluster_features(
            matrix,
            self._y,
            task=self.task,
            distance_threshold=cfg.cluster_threshold,
            max_clusters=cfg.max_clusters,
            n_bins=cfg.mi_bins,
            max_rows=cfg.mi_max_rows,
            seed=cfg.seed,
        )

    def _prune(self, space: FeatureSpace) -> None:
        if space.n_features <= self._feature_cap:
            return
        if self._relevance_cache is not None:
            live = space.live_ids_view
            relevance = self._relevance_cache.relevance(space, self._y, live)
        else:
            matrix = sanitize_features(space.matrix())
            relevance = mutual_info_with_target(
                matrix, self._y, task=self.task, n_bins=self.config.mi_bins
            )
            live = space.live_ids
        order = np.argsort(-relevance)
        keep = [live[i] for i in order[: self._feature_cap]]
        space.prune(keep)

    def _should_trigger(self, predicted: float, nov: float) -> bool:
        """§III-D adaptive strategy: real evaluation for top-α% predicted
        performance or top-β% novelty. α=β=0 disables downstream evaluation
        entirely (the degenerate setting of Fig 12)."""
        cfg = self.config
        if cfg.alpha <= 0 and cfg.beta <= 0:
            return False
        if len(self._pred_window) < cfg.trigger_warmup:
            return True
        if cfg.alpha > 0:
            threshold = float(np.percentile(self._pred_window, 100 - cfg.alpha))
            if predicted >= threshold:
                return True
        if cfg.beta > 0 and len(self._nov_window) >= cfg.trigger_warmup:
            threshold = float(np.percentile(self._nov_window, 100 - cfg.beta))
            if nov >= threshold:
                return True
        return False

    # -- the step machine ---------------------------------------------------------

    def _begin_episode(self) -> None:
        cfg = self.config
        self._space = FeatureSpace(
            self._X,
            self._feature_names,
            backend="arena" if self._use_arena else "dict",
        )
        if self._use_arena:
            # Feature ids restart every episode, so the incremental caches
            # are rebuilt alongside the space they describe.
            self._state_cache = StateCache(self._space)
            self._relevance_cache = RelevanceCache(self.task, cfg.mi_bins)
            self._clusterer = (
                IncrementalClusterer(
                    task=self.task,
                    distance_threshold=cfg.cluster_threshold,
                    max_clusters=cfg.max_clusters,
                    n_bins=cfg.mi_bins,
                    max_rows=cfg.mi_max_rows,
                    seed=cfg.seed,
                )
                if self._incremental_clustering
                else None
            )
        else:
            self._state_cache = None
            self._relevance_cache = None
            self._clusterer = None
        self._body_tokens = []
        self._prev_seq = self._vocab.finalize(self._body_tokens, self.config.max_seq_len)

        t0 = time.perf_counter()
        self._clusters, self._overall_rep, self._cluster_reps = self._recluster(self._space)
        self.last_episode_setup_seconds = time.perf_counter() - t0
        self._timers.optimization += self.last_episode_setup_seconds

        self._prev_score_used = self._base_score
        self._prev_phi = None
        self._callbacks.on_episode_start(self, self._episode)

    def _explore_step(self) -> StepRecord:
        cfg = self.config
        space = self._space
        episode, step = self._episode, self._step_in_episode

        # ---- decide & transform (optimization bucket) ----
        t0 = time.perf_counter()
        decision = self._agents.decide(
            self._overall_rep,
            self._cluster_reps,
            is_binary=lambda op_idx: OPERATIONS[op_idx].arity == 2,
        )
        op = OPERATIONS[decision.op_index]
        head_fids = self._clusters[decision.head_index]
        if op.arity == 2:
            tail_fids = self._clusters[decision.tail_index]
            new_fids = space.apply_binary(
                op.name, head_fids, tail_fids, max_new=cfg.max_new_per_step, rng=self._rng
            )
            self._body_tokens.extend(self._vocab.step_tokens(op.name, head_fids, tail_fids))
        else:
            new_fids = space.apply_unary(op.name, head_fids[: cfg.max_new_per_step])
            self._body_tokens.extend(self._vocab.step_tokens(op.name, head_fids))
        seq = self._vocab.finalize(self._body_tokens, cfg.max_seq_len)
        self._prune(space)
        time_optimization = time.perf_counter() - t0
        self._timers.optimization += time_optimization

        new_expressions = [space.expression(f) for f in new_fids]
        fresh = [e for e in new_expressions if e not in self._seen_expressions]
        self._unencountered_total += len(fresh)
        self._seen_expressions.update(fresh)

        # ---- score the new feature set ----
        in_cold_start = episode < cfg.cold_start_episodes or not self._components_trained
        use_components = (
            cfg.use_performance_predictor and self._components_trained and not in_cold_start
        )

        phi_i: float | None = None
        nov = 0.0
        nov_raw = 0.0
        nov_dist = 1.0
        triggered = False
        time_estimation = 0.0
        time_evaluation = 0.0

        # Inference-only forwards skip autograd bookkeeping on the arena
        # path — same numpy expressions, so outputs are bit-identical; the
        # naive arm keeps recording graphs, as the seed implementation did.
        inference = no_grad if self._use_arena else nullcontext

        if self._novelty is not None and self._components_trained:
            t1 = time.perf_counter()
            if self._use_arena:
                # Fused pass: the frozen target encodes the sequence once
                # for both the distillation gap and the Fig 14 embedding
                # (bit-identical; the naive arm keeps the two passes).
                with no_grad():
                    nov_raw, emb = self._novelty.score_with_embedding(seq)
            else:
                nov_raw = self._novelty.score(seq)
                emb = None
            # Running-std normalization keeps the intrinsic term on the same
            # scale as the performance delta regardless of the orthogonal
            # target's gain (standard RND practice); the raw value feeds the
            # trigger percentile window.
            if len(self._nov_window) >= 2:
                scale = float(np.std(self._nov_window)) + 1e-8
                nov = float(np.tanh(nov_raw / scale))
            else:
                nov = 1.0 if nov_raw > 0 else 0.0
            if emb is None:
                emb = self._novelty.embedding(seq)
            nov_dist = novelty_distance(emb, self._embedding_history.view())
            self._embedding_history.append(emb)
            time_estimation += time.perf_counter() - t1

        deferred = False
        if use_components:
            t1 = time.perf_counter()
            # Candidate scoring goes through the batch entry point. The
            # masked exact batch encode makes batching bit-identical to
            # per-sequence forwards, so the previous sequence — needed
            # once per episode for the first reward delta — shares the
            # current sequence's pass.
            with inference():
                if self._prev_phi is None:
                    phis = self._predictor.predict_batch([seq, self._prev_seq])
                    phi_i = float(phis[0])
                    self._prev_phi = float(phis[1])
                else:
                    phi_i = float(self._predictor.predict_batch([seq])[0])
            time_estimation += time.perf_counter() - t1

            triggered = self._should_trigger(phi_i, nov_raw)
            self._pred_window.append(phi_i)

            if triggered and self._async_mode:
                # Defer the real evaluation to the pool and keep stepping
                # on φ; the score lands (against this step's snapshot) at
                # the next reconcile point. The step itself records the
                # estimate: triggered=True + is_real=False marks it.
                t1 = time.perf_counter()
                ticket = self._ensure_oracle().submit(space.matrix())
                self._pending_evals.append((ticket, seq, space.snapshot()))
                time_evaluation += time.perf_counter() - t1
                score = phi_i
                is_real = False
                deferred = True
            elif triggered:
                t1 = time.perf_counter()
                score = self._evaluate_matrix(space.matrix())
                time_evaluation += time.perf_counter() - t1
                is_real = True
            else:
                score = phi_i
                is_real = False
            eps_i = self._schedule.weight(self._global_step) if self._novelty is not None else 0.0
            reward = pseudo_reward(
                score if is_real else phi_i,
                self._prev_phi if self._prev_phi is not None else 0.0,
                nov,
                eps_i,
            )
            self._prev_phi = phi_i
        else:
            # Cold start (Algorithm 1) or the −PP ablation: real feedback.
            t1 = time.perf_counter()
            score = self._evaluate_matrix(space.matrix())
            time_evaluation += time.perf_counter() - t1
            is_real = True
            eps_i = (
                self._schedule.weight(self._global_step)
                if (self._novelty is not None and self._components_trained)
                else 0.0
            )
            reward = downstream_reward(score, self._prev_score_used) + eps_i * nov

        if self._novelty is not None and self._components_trained:
            self._nov_window.append(nov_raw)
        self._timers.estimation += time_estimation
        self._timers.evaluation += time_evaluation
        self._prev_score_used = score
        self._prev_seq = seq

        # ---- best tracking ----
        if is_real:
            self._eval_sequences.append(seq)
            self._eval_scores.append(score)
            if score > self._best_real_score:
                self._best_real_score = score
                self._best_real_plan = space.snapshot()
        elif not deferred and score > self._best_pseudo_score:
            # Deferred-triggered steps skip pseudo tracking: their real
            # score covers the same plan at the next reconcile point.
            self._best_pseudo_score = score
            self._best_pseudo_plan = space.snapshot()
        self._seen_sequences.append(seq)

        # ---- remember & learn (optimization bucket) ----
        t0 = time.perf_counter()
        self._clusters, overall_rep_next, cluster_reps_next = self._recluster(space)
        done = step == cfg.steps_per_episode - 1
        priority = self._agents.store(
            decision, reward, overall_rep_next, cluster_reps_next, done
        )
        self._agents.optimize()
        self._overall_rep, self._cluster_reps = overall_rep_next, cluster_reps_next
        dt = time.perf_counter() - t0
        time_optimization += dt
        self._timers.optimization += dt

        best_so_far = max(self._best_real_score, self._base_score)
        return StepRecord(
            episode=episode,
            step=step,
            global_step=self._global_step,
            op_name=op.name,
            n_new_features=len(new_fids),
            score=score,
            is_real=is_real,
            predicted_score=phi_i,
            novelty=nov,
            novelty_weight=self._schedule.weight(self._global_step),
            reward=reward,
            priority=priority,
            n_features=space.n_features,
            n_clusters=len(self._clusters),
            best_score_so_far=best_so_far,
            time_optimization=time_optimization,
            time_estimation=time_estimation,
            time_evaluation=time_evaluation,
            new_expressions=new_expressions,
            novelty_distance=nov_dist,
            unencountered_total=self._unencountered_total,
            triggered=triggered,
            sequence_tokens=[int(t) for t in seq],
        )

    def _end_episode(self) -> None:
        """Stage transitions: component training / fine-tuning (§III-C/D)."""
        cfg = self.config
        episode = self._episode
        # Episode-end reconcile point: the retrain below must see every
        # real score collected during the episode.
        self._reconcile()
        finished_cold_start = episode == cfg.cold_start_episodes - 1
        due_finetune = (
            self._components_trained
            and cfg.retrain_every_episodes > 0
            and (episode - cfg.cold_start_episodes + 1) % cfg.retrain_every_episodes == 0
        )
        if (finished_cold_start or due_finetune) and self._eval_sequences:
            t1 = time.perf_counter()
            if self._predictor is not None:
                self._predictor.fit(
                    list(self._eval_sequences),
                    np.array(self._eval_scores),
                    epochs=cfg.component_epochs,
                    rng=self._rng,
                )
            if self._novelty is not None:
                self._novelty.fit(
                    list(self._seen_sequences), epochs=cfg.component_epochs, rng=self._rng
                )
            self.last_retrain_seconds = time.perf_counter() - t1
            self._timers.estimation += self.last_retrain_seconds
            self._components_trained = True
            stage = "cold_start" if finished_cold_start else "fine_tune"
            self._callbacks.on_retrain(self, episode, stage)

        # Advance the episode cursor *before* notifying observers, so a
        # checkpoint taken inside on_episode_end captures a state that
        # resumes at the top of the next episode (not a phantom extra step).
        self._episode += 1
        self._step_in_episode = 0
        if self._episode >= cfg.episodes:
            self._finished = True
        self._callbacks.on_episode_end(self, episode)

    def step(self) -> StepRecord:
        """Run one exploration step; starts the session on first call."""
        if not self._started:
            self.start()
        if self._finished:
            raise RuntimeError("Session already finished; no steps remain")
        if self._step_in_episode == 0:
            self._begin_episode()
        record = self._explore_step()
        self._history.append(record)
        self._global_step += 1
        self._step_in_episode += 1
        self._callbacks.on_step(self, record)
        if record.is_real:
            self._callbacks.on_real_evaluation(self, record)
        # Pinned mid-episode reconcile point (async mode): the schedule
        # depends only on the global step counter, never on worker timing.
        if self._pending_evals and self._global_step % self.config.reconcile_every_k == 0:
            self._reconcile()
        if self._step_in_episode >= self.config.steps_per_episode:
            self._end_episode()
        return record

    def __iter__(self) -> "SearchSession":
        return self

    def __next__(self) -> StepRecord:
        if self.done:
            raise StopIteration
        return self.step()

    def run(self, until=None) -> FastFTResult:
        """Step until exhaustion, a callback stop, or the ``until`` limit.

        ``until`` is either a global-step count (int) or a predicate
        ``until(session) -> bool`` checked before each step. Always returns
        the result of the work done so far; ``on_finish`` fires only when
        the session is genuinely done.
        """
        if not self._started:
            self.start()
        while not self.done:
            if until is not None:
                if callable(until):
                    if until(self):
                        break
                elif self._global_step >= int(until):
                    break
            self.step()
        result = self.result()
        if self.done:
            self.close()
        # on_finish fires once per final state: calling run() again on an
        # already-done session (e.g. resuming a finished checkpoint) must
        # not repeat finish-time side effects.
        if self.done and self._finish_notified_at != self._global_step:
            self._finish_notified_at = self._global_step
            self._callbacks.on_finish(self, result)
        return result

    # -- results ------------------------------------------------------------------

    def result(self) -> FastFTResult:
        """Build the result for the search so far.

        The pseudo-best candidate (a plan whose score came from φ, never
        measured for real) is validated with one downstream call, exactly as
        the blocking engine did; the validation is memoized so repeated
        ``result()`` calls do not re-evaluate.
        """
        self._require_started()
        self._reconcile()
        best_score, best_plan = self._best_real_score, self._best_real_plan
        if self._best_pseudo_plan is not None and self._best_pseudo_score > self._best_real_score:
            if (
                self._pseudo_validation is not None
                and self._pseudo_validation[0] is self._best_pseudo_plan
            ):
                validated = self._pseudo_validation[1]
            else:
                t1 = time.perf_counter()
                validated = self._evaluate_matrix(self._best_pseudo_plan.apply(self._X))
                self._timers.evaluation += time.perf_counter() - t1
                self._pseudo_validation = (self._best_pseudo_plan, validated)
            if validated > best_score:
                best_score, best_plan = validated, self._best_pseudo_plan
        return FastFTResult(
            base_score=self._base_score,
            best_score=best_score,
            plan=best_plan,
            history=list(self._history),
            time=TimeBreakdown(
                self._timers.optimization, self._timers.estimation, self._timers.evaluation
            ),
            n_downstream_calls=self._n_eval_calls,
            config=self.config,
            task=self.task,
        )

    # -- checkpointing --------------------------------------------------------------

    def __getstate__(self) -> dict:
        if getattr(self, "_pending_evals", None):
            raise RuntimeError(
                "Cannot pickle a session with in-flight async evaluations; "
                "use checkpoint() (which reconciles first)"
            )
        state = dict(self.__dict__)
        # Callbacks can hold streams / open files; they are re-attached on
        # resume rather than serialized. The async oracle pool is a
        # per-process resource: a resumed session rebuilds it lazily, and
        # the tracer (open file handle + locks) likewise stays behind.
        state["_callbacks"] = None
        state["_async_oracle"] = None
        state["_tracer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._callbacks = CallbackList()
        if self.config.verbose:
            self._callbacks.append(VerboseLogger())
        # Checkpoints written before the arena inner loop: adopt their list
        # of embeddings, default the config field, and resume the current
        # episode on the reference path (its FeatureSpace is a dict-backend
        # space without caches); the next episode re-enters the arena path.
        if not hasattr(self.config, "inner_loop"):
            self.config.inner_loop = "arena"
        if isinstance(getattr(self, "_embedding_history", None), list):
            log = EmbeddingLog()
            for emb in self._embedding_history:
                log.append(emb)
            self._embedding_history = log
        if "_use_arena" not in state:
            cfg = self.config
            self._use_arena = cfg.inner_loop == "arena"
            self._incremental_clustering = self._use_arena and not (
                cfg.seed is None and self._X.shape[0] > cfg.mi_max_rows
            )
            self._state_cache = None
            self._relevance_cache = None
            self._clusterer = None
        # Checkpoints written before the async oracle: default the config
        # knobs and the (empty) deferred-evaluation state.
        for name, default in (
            ("oracle_mode", "serial"),
            ("reconcile_every_k", 4),
            ("oracle_workers", 2),
            ("oracle_timeout", None),
            ("oracle_retries", 1),
        ):
            if not hasattr(self.config, name):
                setattr(self.config, name, default)
        if "_async_mode" not in state:
            self._async_mode = self.config.oracle_mode == "async"
        if "_pending_evals" not in state:
            self._pending_evals = []
        self._async_oracle = None
        # Checkpoints written before repro.obs: default the tracer slot and
        # the phase-duration attributes the TracingCallback reads.
        if "_tracer" not in state:
            self._tracer = None
        for name in (
            "base_eval_seconds",
            "last_episode_setup_seconds",
            "last_reconcile_seconds",
            "last_retrain_seconds",
        ):
            if name not in state:
                setattr(self, name, 0.0)
        # A stop request (time budget, early stopping, user interrupt) is a
        # transient signal to *this* process; resuming a stopped checkpoint
        # means "continue the search", so the flag does not survive. The
        # finish notification marker is likewise per-process: freshly
        # attached callbacks deserve one on_finish of their own.
        self._stop_requested = False
        self._stop_reason = None
        self._finish_notified_at = None

    def checkpoint(self, path: str) -> None:
        """Serialize the complete session state (callbacks excluded).

        Valid at any point — before :meth:`start`, mid-episode, or when
        done. The checkpoint embeds the training data, every model/agent
        parameter, replay memories and all RNG streams, so
        :meth:`resume` continues the search deterministically. In async
        mode, checkpointing is itself a reconcile point: pending real
        scores land before the state is frozen (the oracle pool is a
        per-process resource and never serializes).
        """
        if self._started:
            self._reconcile()
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "session": self,
        }
        # Atomic publish: a reader (or a resumed run after a crash at any
        # instruction of this method) sees either the previous checkpoint
        # or the complete new one, never a torn prefix.
        atomic_write_bytes(path, pickle.dumps(payload))

    @classmethod
    def resume(
        cls, path: str, callbacks: list[Callback] | None = None
    ) -> "SearchSession":
        """Restore a session saved by :meth:`checkpoint`.

        ``callbacks`` are attached fresh (checkpoints never carry them); a
        ``verbose`` config re-adds the standard :class:`VerboseLogger`.
        """
        with open(path, "rb") as fh:
            try:
                payload = pickle.load(fh)
            except Exception as exc:
                # A torn/corrupted pickle stream surfaces as any of
                # EOFError, UnpicklingError, ValueError, ImportError, ...
                # depending on where the damage lands; name the real
                # problem instead of leaking an opaque pickle traceback.
                raise CheckpointCorruptError(
                    f"{path!r} is not a readable FastFT checkpoint: the file "
                    f"is truncated or corrupt ({type(exc).__name__}: {exc}). "
                    "Checkpoints are written atomically, so this indicates "
                    "external damage — re-run from an earlier checkpoint or "
                    "start the search fresh."
                ) from exc
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(f"{path!r} is not a FastFT session checkpoint")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"Unsupported checkpoint version {payload.get('version')!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        session: SearchSession = payload["session"]
        for cb in callbacks or []:
            session.add_callback(cb)
        return session
