"""FastFT reproduction: reinforced feature transformation with advanced exploration.

This package is a from-scratch, laptop-scale reproduction of

    "FastFT: Accelerating Reinforced Feature Transformation via Advanced
    Exploration Strategies" (ICDE 2025)

including every substrate the paper depends on:

- :mod:`repro.ml`   — downstream tabular models and metrics (sklearn stand-in)
- :mod:`repro.nn`   — reverse-mode autodiff, LSTM/RNN/Transformer (torch stand-in)
- :mod:`repro.rl`   — actor-critic and DQN-family agents, prioritized replay
- :mod:`repro.data` — seeded synthetic versions of the paper's 23 datasets
- :mod:`repro.core` — the FastFT framework itself
- :mod:`repro.baselines` — the 10 comparison methods of Table I
- :mod:`repro.experiments` — harnesses regenerating every table and figure

Quickstart::

    from repro.core import FastFT, FastFTConfig
    from repro.data import load_dataset

    ds = load_dataset("wine_quality_red", scale=0.5, seed=0)
    ft = FastFT(FastFTConfig(episodes=12, steps_per_episode=6, seed=0))
    result = ft.fit(ds.X, ds.y, task=ds.task)
    X_new = result.transform(ds.X)
"""

from repro._version import __version__

__all__ = ["__version__"]
