"""FastFT reproduction: reinforced feature transformation with advanced exploration.

This package is a from-scratch, laptop-scale reproduction of

    "FastFT: Accelerating Reinforced Feature Transformation via Advanced
    Exploration Strategies" (ICDE 2025)

including every substrate the paper depends on:

- :mod:`repro.api`  — the high-level facade: ``search``, ``fit_transform``,
  ``run_batch``, cached downstream evaluation
- :mod:`repro.core` — the FastFT framework: :class:`~repro.core.SearchSession`
  (resumable step-wise search), callbacks, the blocking ``FastFT`` wrapper
- :mod:`repro.serve` — the serving layer: compiled transformation pipelines,
  a versioned artifact registry, and a micro-batching inference server
- :mod:`repro.ml`   — downstream tabular models and metrics (sklearn stand-in)
- :mod:`repro.nn`   — reverse-mode autodiff, LSTM/RNN/Transformer (torch stand-in)
- :mod:`repro.rl`   — actor-critic and DQN-family agents, prioritized replay
- :mod:`repro.data` — seeded synthetic versions of the paper's 23 datasets
- :mod:`repro.baselines` — the 10 comparison methods of Table I
- :mod:`repro.experiments` — harnesses regenerating every table and figure

Quickstart — one call::

    from repro import api
    from repro.data import load_dataset

    ds = load_dataset("wine_quality_red", scale=0.5, seed=0)
    result = api.search(ds.X, ds.y, task=ds.task, episodes=12, seed=0)
    X_new = result.transform(ds.X)

Quickstart — a pausable, observable session::

    from repro.core import SearchSession, FastFTConfig, TimeBudget

    session = SearchSession(
        ds.X, ds.y, task=ds.task,
        config=FastFTConfig(episodes=12, seed=0),
        callbacks=[TimeBudget(60)],
    )
    for record in session:              # one StepRecord per exploration step
        session.checkpoint("run.ckpt")  # resumable at any point
    result = session.result()

    # later / elsewhere:
    result = SearchSession.resume("run.ckpt").run()

The classic blocking interface is unchanged:
``FastFT(config).fit(X, y, task)`` from :mod:`repro.core`.
"""

from repro._version import __version__

__all__ = ["__version__"]
