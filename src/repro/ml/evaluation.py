"""The downstream-task oracle A(F, y) (Equation 1 of the paper).

FastFT's whole premise is that this oracle is *expensive*: it runs K-fold
cross-validation of a real model over the full generated dataset. The
:class:`DownstreamEvaluator` packages the paper's task-type conventions —

- classification → random forest, weighted F1,
- regression     → random forest, 1 − RAE,
- detection      → random forest, AUC over positive-class probability,

— and tracks cumulative invocation count and wall time, which the Table II
time-breakdown harness reads directly.
"""

from __future__ import annotations

import copy
import time
from typing import Callable

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import f1_score, one_minus_rae, roc_auc_score
from repro.ml.model_selection import cross_val_score
from repro.ml.preprocessing import sanitize_features

__all__ = ["DownstreamEvaluator", "default_model_for_task", "default_metric_for_task", "TASKS"]

TASKS = ("classification", "regression", "detection")


def default_model_for_task(
    task: str,
    n_estimators: int = 10,
    max_depth: int | None = 8,
    seed: int | None = 0,
    split_engine: str = "presort",
) -> BaseEstimator:
    """The paper-lineage default downstream model (random forest) per task.

    The oracle defaults to the presorted split engine — it produces trees
    and predictions bit-identical to the naive reference
    (:mod:`repro.ml.split_engine`), only faster.
    """
    if task == "regression":
        return RandomForestRegressor(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed,
            split_engine=split_engine,
        )
    if task in ("classification", "detection"):
        return RandomForestClassifier(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed,
            split_engine=split_engine,
        )
    raise ValueError(f"Unknown task {task!r}; expected one of {TASKS}")


def default_metric_for_task(task: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Headline metric per task type (Table I's reported columns)."""
    if task == "classification":
        return f1_score
    if task == "regression":
        return one_minus_rae
    if task == "detection":
        return roc_auc_score
    raise ValueError(f"Unknown task {task!r}; expected one of {TASKS}")


class DownstreamEvaluator:
    """Cross-validated downstream evaluation with cost accounting.

    Parameters
    ----------
    task:
        ``"classification"``, ``"regression"`` or ``"detection"``.
    model:
        Unfitted estimator template; cloned per fold. Defaults to the
        task-appropriate random forest.
    metric:
        ``metric(y_true, y_pred_or_score) -> float``, higher is better.
    n_splits:
        CV folds (the paper uses 5; tests shrink this for speed).
    engine:
        Split engine for the default random forest (``"presort"`` or
        ``"naive"``); ignored when an explicit ``model`` is given.
    cv_jobs:
        Worker processes for fold-parallel CV (``1`` = serial, ``-1`` =
        all cores). Scores are identical to serial; under parallelism
        ``total_time`` reports *summed per-fold* fit+score seconds (not
        pool wall time), so the Table II time breakdown stays meaningful.
    """

    # Class-level backstops so evaluators pickled before these knobs
    # existed (old session checkpoints) resume with serial behavior.
    engine = "presort"
    cv_jobs = 1
    # Observability (repro.obs): attached by SearchSession.set_tracer;
    # process-local, dropped on pickling (the class attr is the fallback
    # every unpickled or worker copy sees).
    tracer = None

    def __init__(
        self,
        task: str,
        model: BaseEstimator | None = None,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        n_splits: int = 5,
        seed: int | None = 0,
        engine: str = "presort",
        cv_jobs: int = 1,
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"Unknown task {task!r}; expected one of {TASKS}")
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        if cv_jobs < 1 and cv_jobs != -1:
            raise ValueError("cv_jobs must be >= 1 or -1 (all cores)")
        self.task = task
        self.model = (
            model
            if model is not None
            else default_model_for_task(task, seed=seed, split_engine=engine)
        )
        self.metric = metric if metric is not None else default_metric_for_task(task)
        self.n_splits = n_splits
        self.seed = seed
        self.engine = engine
        self.cv_jobs = cv_jobs
        self.n_calls = 0
        self.total_time = 0.0

    def _cross_val(self, model: BaseEstimator, X: np.ndarray, y: np.ndarray):
        use_proba = self.task == "detection"
        stratified = self.task in ("classification", "detection")
        # The template goes in as-is: cross_val_score clones per fold and
        # never fits it, and a stable template object lets the fold-parallel
        # pickle probe memoize per evaluator instead of per call.
        return cross_val_score(
            model,
            X,
            y,
            scorer=self.metric,
            n_splits=self.n_splits,
            seed=self.seed,
            stratified=stratified,
            use_proba=use_proba,
            n_jobs=self.cv_jobs,
            return_fold_times=True,
        )

    def __call__(self, X: np.ndarray, y: np.ndarray) -> float:
        """Evaluate a feature matrix; returns the mean CV score."""
        start = time.perf_counter()
        X = sanitize_features(X)
        scores, fold_times = self._cross_val(self.model, X, y)
        self.n_calls += 1
        elapsed = time.perf_counter() - start
        if self.cv_jobs != 1:
            # Pool wall time under-reports the oracle's actual compute;
            # the paper's cost accounting wants summed fit+score time.
            self.total_time += float(sum(fold_times))
        else:
            self.total_time += elapsed
        tracer = self.tracer
        if tracer is not None:
            labels = {"engine": self.engine, "task": self.task}
            tracer.count("eval.calls", labels=labels)
            tracer.observe("eval.call_seconds", elapsed, labels=labels)
            for fold_time in fold_times:
                tracer.observe("eval.fold_seconds", float(fold_time), labels=labels)
        return float(np.mean(scores))

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> float:
        """Alias of :meth:`__call__` — the oracle A(F, y) of Equation 1."""
        return self(X, y)

    def evaluate_with_model(self, X: np.ndarray, y: np.ndarray, model: BaseEstimator) -> float:
        """Evaluate the same features under a different downstream model
        (Table III robustness study)."""
        X = sanitize_features(X)
        scores, _ = self._cross_val(model, X, y)
        return float(np.mean(scores))

    def for_worker(self) -> "DownstreamEvaluator":
        """A copy suitable for running *inside* a worker process.

        Fold-parallel CV is demoted to serial (a nested pool inside an
        :class:`~repro.core.async_oracle.AsyncOracle` worker would
        oversubscribe the cores the outer pool already owns) and the
        cost counters start fresh, so per-worker deltas are honest.
        Scores are unchanged — ``cv_jobs`` never affects them.
        """
        clone = copy.copy(self)
        clone.cv_jobs = 1
        clone.__dict__.pop("tracer", None)  # tracers are process-local
        clone.reset_counters()
        return clone

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` (``None`` detaches)."""
        self.tracer = tracer

    def __getstate__(self) -> dict:
        # A tracer holds an open file handle and locks — never serialized
        # (session checkpoints, async-oracle worker blobs, CV payloads).
        state = dict(self.__dict__)
        state.pop("tracer", None)
        return state

    def reset_counters(self) -> None:
        self.n_calls = 0
        self.total_time = 0.0
