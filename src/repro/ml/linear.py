"""Linear models: logistic regression, ridge/linear regression, ridge classifier.

Used by the Table III robustness study (LR, Ridge-C) and by fast baselines
that need a cheap downstream oracle. Logistic regression is trained with
L-BFGS (scipy) on the L2-regularized multinomial log-likelihood; ridge has a
closed form.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y
from repro.ml.preprocessing import StandardScaler

__all__ = ["LogisticRegression", "LinearRegression", "RidgeRegression", "RidgeClassifier"]


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression with L2 penalty, trained by L-BFGS.

    Features are standardized internally so the optimizer is well conditioned
    regardless of the scale of generated features.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        self.classes_, codes = np.unique(y, return_inverse=True)
        n, d = Xs.shape
        k = len(self.classes_)
        if k < 2:
            raise ValueError("Need at least two classes")
        onehot = np.zeros((n, k))
        onehot[np.arange(n), codes] = 1.0
        lam = 1.0 / (self.C * n)

        def objective(w_flat: np.ndarray) -> tuple[float, np.ndarray]:
            W = w_flat[: d * k].reshape(d, k)
            b = w_flat[d * k :]
            logits = Xs @ W + b
            proba = _softmax(logits)
            eps = 1e-12
            loss = -np.mean(np.sum(onehot * np.log(proba + eps), axis=1))
            loss += 0.5 * lam * np.sum(W * W)
            grad_logits = (proba - onehot) / n
            grad_W = Xs.T @ grad_logits + lam * W
            grad_b = grad_logits.sum(axis=0)
            return loss, np.concatenate([grad_W.ravel(), grad_b])

        w0 = np.zeros(d * k + k)
        result = optimize.minimize(
            objective, w0, jac=True, method="L-BFGS-B", options={"maxiter": self.max_iter}
        )
        self.coef_ = result.x[: d * k].reshape(d, k)
        self.intercept_ = result.x[d * k :]
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Model is not fitted")
        Xs = self._scaler.transform(check_array(X))
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via the numpy lstsq solver."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = check_X_y(X, y)
        y = y.astype(float)
        Xb = np.column_stack([X, np.ones(X.shape[0])])
        sol, *_ = np.linalg.lstsq(Xb, y, rcond=None)
        self.coef_, self.intercept_ = sol[:-1], float(sol[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Model is not fitted")
        return check_array(X) @ self.coef_ + self.intercept_


class RidgeRegression(BaseEstimator, RegressorMixin):
    """L2-regularized least squares with closed-form normal equations."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X, y = check_X_y(X, y)
        y = y.astype(float)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        y_mean = float(np.mean(y))
        yc = y - y_mean
        d = Xs.shape[1]
        A = Xs.T @ Xs + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(A, Xs.T @ yc)
        self.intercept_ = y_mean
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Model is not fitted")
        return self._scaler.transform(check_array(X)) @ self.coef_ + self.intercept_


class RidgeClassifier(BaseEstimator, ClassifierMixin):
    """Classification by ridge regression on ±1 (binary) or one-hot targets."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.classes_: np.ndarray | None = None
        self._models: list[RidgeRegression] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeClassifier":
        X, y = check_X_y(X, y)
        self.classes_, codes = np.unique(y, return_inverse=True)
        self._models = []
        for k in range(len(self.classes_)):
            target = np.where(codes == k, 1.0, -1.0)
            model = RidgeRegression(alpha=self.alpha)
            model.fit(X, target)
            self._models.append(model)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self._models:
            raise RuntimeError("Model is not fitted")
        return np.column_stack([m.predict(X) for m in self._models])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return _softmax(scores)
