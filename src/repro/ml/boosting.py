"""Gradient boosting machines (XGBoost stand-in for the robustness study).

Table III evaluates FastFT-generated features under an "XGBoost classifier";
this module provides a functionally equivalent gradient-boosted-tree model:
stage-wise additive regression trees fit to the gradient of the loss
(squared error for regression, log-loss for classification) with shrinkage.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor", "GradientBoostingClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Least-squares boosting: trees fit to residuals with learning-rate shrinkage."""

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.init_: float = 0.0
        self.estimators_: list[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(float)
        rng = np.random.default_rng(self.seed)
        self.init_ = float(np.mean(y))
        current = np.full(len(y), self.init_)
        self.estimators_ = []
        importances = np.zeros(X.shape[1])
        n = len(y)
        for i in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], residual[idx])
            current += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Log-loss boosting; binary uses a single score column, multiclass softmax."""

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        seed: int | None = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.init_: np.ndarray | None = None
        self.estimators_: list[list[DecisionTreeRegressor]] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        self.classes_, codes = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("Need at least two classes")
        rng = np.random.default_rng(self.seed)
        n = len(y)
        importances = np.zeros(X.shape[1])

        if n_classes == 2:
            p = np.clip(np.mean(codes), 1e-6, 1 - 1e-6)
            self.init_ = np.array([np.log(p / (1 - p))])
            scores = np.full(n, self.init_[0])
            self.estimators_ = []
            for _ in range(self.n_estimators):
                gradient = codes - _sigmoid(scores)
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
                tree.fit(X, gradient)
                scores += self.learning_rate * tree.predict(X)
                self.estimators_.append([tree])
                importances += tree.feature_importances_
        else:
            onehot = np.zeros((n, n_classes))
            onehot[np.arange(n), codes] = 1.0
            prior = np.clip(onehot.mean(axis=0), 1e-6, None)
            self.init_ = np.log(prior)
            scores = np.tile(self.init_, (n, 1))
            self.estimators_ = []
            for _ in range(self.n_estimators):
                gradient = onehot - _softmax(scores)
                round_trees: list[DecisionTreeRegressor] = []
                for k in range(n_classes):
                    tree = DecisionTreeRegressor(
                        max_depth=self.max_depth,
                        min_samples_leaf=self.min_samples_leaf,
                        seed=int(rng.integers(0, 2**31 - 1)),
                    )
                    tree.fit(X, gradient[:, k])
                    scores[:, k] += self.learning_rate * tree.predict(X)
                    round_trees.append(tree)
                    importances += tree.feature_importances_
                self.estimators_.append(round_trees)

        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def _decision_scores(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X)
        n_classes = len(self.classes_)
        if n_classes == 2:
            scores = np.full(X.shape[0], self.init_[0])
            for (tree,) in self.estimators_:
                scores += self.learning_rate * tree.predict(X)
            return scores
        scores = np.tile(self.init_, (X.shape[0], 1))
        for round_trees in self.estimators_:
            for k, tree in enumerate(round_trees):
                scores[:, k] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("Model is not fitted")
        scores = self._decision_scores(X)
        if scores.ndim == 1:
            p = _sigmoid(scores)
            return np.column_stack([1.0 - p, p])
        return _softmax(scores)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
