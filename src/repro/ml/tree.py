"""CART decision trees (classifier and regressor), vectorized on numpy.

These trees are the workhorse of the downstream oracle: the paper's lineage
(GRFG, FastFT) evaluates generated feature sets with a random forest, which
is built on top of this module. The split search is an exact, sort-based scan
(the classic CART algorithm) delegated to a pluggable
:class:`~repro.ml.split_engine.SplitEngine` — ``"naive"`` re-sorts each
feature per node (the reference), ``"presort"`` sorts once per fit and scans
all candidate features vectorized; both produce bit-identical trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y
from repro.ml.split_engine import SplitEngine, resolve_engine

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


@dataclass
class _Tree:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)

    def add_node(self, value: np.ndarray) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(value)
        return len(self.feature) - 1

    def finalize(self) -> None:
        self.feature = np.asarray(self.feature, dtype=np.int64)
        self.threshold = np.asarray(self.threshold, dtype=float)
        self.left = np.asarray(self.left, dtype=np.int64)
        self.right = np.asarray(self.right, dtype=np.int64)
        self.value = np.asarray(self.value, dtype=float)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf value row for every sample (vectorized descent)."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            active = self.feature[node] != _LEAF
            if not active.any():
                break
            idx = np.where(active)[0]
            cur = node[idx]
            go_left = X[idx, self.feature[cur]] <= self.threshold[cur]
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
        return self.value[node]


class _BaseDecisionTree(BaseEstimator):
    """Shared CART builder; subclasses define impurity and leaf values."""

    # Split criterion the engine applies; set by subclasses.
    _criterion = "gini"
    # Class-level backstop so estimators pickled before the engine layer
    # existed (old session checkpoints) unpickle straight onto the
    # reference behavior they were fitted with.
    split_engine: "str | SplitEngine" = "naive"

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        seed: int | None = None,
        split_engine: "str | SplitEngine" = "naive",
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.split_engine = split_engine
        self.tree_: _Tree | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    # -- subclass hooks -----------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _node_stats(self, y: np.ndarray) -> tuple[np.ndarray, float]:
        """(leaf value, impurity) — overridable to share intermediate work."""
        return self._leaf_value(y), self._node_impurity(y)

    # -- fitting ------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        if isinstance(mf, float):
            return max(1, int(mf * n_features))
        return max(1, min(int(mf), n_features))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseDecisionTree":
        X, y = check_X_y(X, y)
        y = self._encode_target(y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.seed)
        self._importance = np.zeros(self.n_features_, dtype=float)
        self._n_total = X.shape[0]
        self.tree_ = _Tree()
        engine = resolve_engine(self.split_engine)
        engine.begin_fit(
            X,
            y,
            criterion=self._criterion,
            n_classes=getattr(self, "n_classes_", 0),
            min_samples_leaf=self.min_samples_leaf,
        )
        self._engine = engine
        try:
            self._build(X, y, np.arange(X.shape[0]), depth=0)
        finally:
            engine.end_fit()
            del self._engine
        self.tree_.finalize()
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else np.zeros_like(self._importance)
        )
        return self

    def _encode_target(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=float)

    def _build(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node_y = y[idx]
        leaf_value, impurity = self._node_stats(node_y)
        node_id = self.tree_.add_node(leaf_value)

        n = len(idx)
        if (
            n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or (self.max_depth is not None and depth >= self.max_depth)
            or impurity <= 1e-12
        ):
            return node_id

        k = self._resolve_max_features(self.n_features_)
        if k >= self.n_features_:
            candidates = np.arange(self.n_features_)
        else:
            candidates = self._rng.choice(self.n_features_, size=k, replace=False)

        best_gain, best_feature, best_threshold = self._engine.best_split(
            idx, candidates, node_y
        )

        if best_feature < 0:
            return node_id

        go_left = X[idx, best_feature] <= best_threshold
        left_idx, right_idx = idx[go_left], idx[~go_left]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return node_id

        self._importance[best_feature] += best_gain * n / self._n_total
        left_id = self._build(X, y, left_idx, depth + 1)
        right_id = self._build(X, y, right_idx, depth + 1)
        self.tree_.feature[node_id] = best_feature
        self.tree_.threshold[node_id] = best_threshold
        self.tree_.left[node_id] = left_id
        self.tree_.right[node_id] = right_id
        return node_id


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """Gini-impurity CART classifier with probability leaves."""

    _criterion = "gini"

    def _encode_target(self, y: np.ndarray) -> np.ndarray:
        self.classes_, codes = np.unique(y, return_inverse=True)
        self.n_classes_ = len(self.classes_)
        return codes.astype(np.int64)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        return counts / counts.sum()

    def _node_impurity(self, y: np.ndarray) -> float:
        p = np.bincount(y, minlength=self.n_classes_) / len(y)
        return float(1.0 - np.sum(p * p))

    def _node_stats(self, y: np.ndarray) -> tuple[np.ndarray, float]:
        # One bincount serves both: counts/sum equals the leaf probability
        # vector, and the same proportions feed the Gini impurity.
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        p = counts / counts.sum()
        return p, float(1.0 - np.sum(p * p))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            raise RuntimeError("Tree is not fitted")
        return self.tree_.apply(check_array(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """Variance-reduction CART regressor with mean leaves."""

    _criterion = "variance"

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([np.mean(y)])

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            raise RuntimeError("Tree is not fitted")
        return self.tree_.apply(check_array(X)).ravel()
