"""CART decision trees (classifier and regressor), vectorized on numpy.

These trees are the workhorse of the downstream oracle: the paper's lineage
(GRFG, FastFT) evaluates generated feature sets with a random forest, which
is built on top of this module. The split search is an exact, sort-based scan
(the classic CART algorithm), vectorized per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


@dataclass
class _Tree:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)

    def add_node(self, value: np.ndarray) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(value)
        return len(self.feature) - 1

    def finalize(self) -> None:
        self.feature = np.asarray(self.feature, dtype=np.int64)
        self.threshold = np.asarray(self.threshold, dtype=float)
        self.left = np.asarray(self.left, dtype=np.int64)
        self.right = np.asarray(self.right, dtype=np.int64)
        self.value = np.asarray(self.value, dtype=float)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf value row for every sample (vectorized descent)."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            active = self.feature[node] != _LEAF
            if not active.any():
                break
            idx = np.where(active)[0]
            cur = node[idx]
            go_left = X[idx, self.feature[cur]] <= self.threshold[cur]
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
        return self.value[node]


class _BaseDecisionTree(BaseEstimator):
    """Shared CART builder; subclasses define impurity and leaf values."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        seed: int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.tree_: _Tree | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    # -- subclass hooks -----------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split_of_feature(
        self, x_sorted: np.ndarray, y_sorted: np.ndarray
    ) -> tuple[float, float]:
        """Return (impurity_decrease_per_sample, threshold) or (-inf, nan)."""
        raise NotImplementedError

    # -- fitting ------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        if isinstance(mf, float):
            return max(1, int(mf * n_features))
        return max(1, min(int(mf), n_features))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseDecisionTree":
        X, y = check_X_y(X, y)
        y = self._encode_target(y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.seed)
        self._importance = np.zeros(self.n_features_, dtype=float)
        self._n_total = X.shape[0]
        self.tree_ = _Tree()
        self._build(X, y, np.arange(X.shape[0]), depth=0)
        self.tree_.finalize()
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else np.zeros_like(self._importance)
        )
        return self

    def _encode_target(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=float)

    def _build(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node_y = y[idx]
        node_id = self.tree_.add_node(self._leaf_value(node_y))

        n = len(idx)
        if (
            n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or (self.max_depth is not None and depth >= self.max_depth)
            or self._node_impurity(node_y) <= 1e-12
        ):
            return node_id

        k = self._resolve_max_features(self.n_features_)
        if k >= self.n_features_:
            candidates = np.arange(self.n_features_)
        else:
            candidates = self._rng.choice(self.n_features_, size=k, replace=False)

        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for f in candidates:
            x = X[idx, f]
            order = np.argsort(x, kind="stable")
            gain, threshold = self._best_split_of_feature(x[order], node_y[order])
            if gain > best_gain + 1e-15:
                best_gain, best_feature, best_threshold = gain, int(f), float(threshold)

        if best_feature < 0:
            return node_id

        go_left = X[idx, best_feature] <= best_threshold
        left_idx, right_idx = idx[go_left], idx[~go_left]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return node_id

        self._importance[best_feature] += best_gain * n / self._n_total
        left_id = self._build(X, y, left_idx, depth + 1)
        right_id = self._build(X, y, right_idx, depth + 1)
        self.tree_.feature[node_id] = best_feature
        self.tree_.threshold[node_id] = best_threshold
        self.tree_.left[node_id] = left_id
        self.tree_.right[node_id] = right_id
        return node_id

    def _split_positions(self, x_sorted: np.ndarray) -> np.ndarray:
        """Valid split indices i (split between i and i+1), honoring leaf size."""
        n = len(x_sorted)
        lo, hi = self.min_samples_leaf, n - self.min_samples_leaf
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        positions = np.arange(lo, hi)
        distinct = x_sorted[positions - 1] < x_sorted[positions]
        return positions[distinct]


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """Gini-impurity CART classifier with probability leaves."""

    def _encode_target(self, y: np.ndarray) -> np.ndarray:
        self.classes_, codes = np.unique(y, return_inverse=True)
        self.n_classes_ = len(self.classes_)
        return codes.astype(np.int64)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        return counts / counts.sum()

    def _node_impurity(self, y: np.ndarray) -> float:
        p = np.bincount(y, minlength=self.n_classes_) / len(y)
        return float(1.0 - np.sum(p * p))

    def _best_split_of_feature(
        self, x_sorted: np.ndarray, y_sorted: np.ndarray
    ) -> tuple[float, float]:
        positions = self._split_positions(x_sorted)
        if len(positions) == 0:
            return -np.inf, np.nan
        n = len(y_sorted)
        onehot = np.zeros((n, self.n_classes_), dtype=float)
        onehot[np.arange(n), y_sorted] = 1.0
        cum = np.cumsum(onehot, axis=0)

        left_counts = cum[positions - 1]
        total = cum[-1]
        right_counts = total - left_counts
        n_left = positions.astype(float)
        n_right = n - n_left

        gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
        parent = 1.0 - np.sum((total / n) ** 2)
        gain = parent - (n_left * gini_left + n_right * gini_right) / n

        best = int(np.argmax(gain))
        i = positions[best]
        return float(gain[best]), float(0.5 * (x_sorted[i - 1] + x_sorted[i]))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            raise RuntimeError("Tree is not fitted")
        return self.tree_.apply(check_array(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """Variance-reduction CART regressor with mean leaves."""

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([np.mean(y)])

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def _best_split_of_feature(
        self, x_sorted: np.ndarray, y_sorted: np.ndarray
    ) -> tuple[float, float]:
        positions = self._split_positions(x_sorted)
        if len(positions) == 0:
            return -np.inf, np.nan
        n = len(y_sorted)
        cum = np.cumsum(y_sorted)
        cum2 = np.cumsum(y_sorted**2)

        n_left = positions.astype(float)
        n_right = n - n_left
        sum_left = cum[positions - 1]
        sum_right = cum[-1] - sum_left
        sq_left = cum2[positions - 1]
        sq_right = cum2[-1] - sq_left

        var_left = sq_left / n_left - (sum_left / n_left) ** 2
        var_right = sq_right / n_right - (sum_right / n_right) ** 2
        parent = cum2[-1] / n - (cum[-1] / n) ** 2
        gain = parent - (n_left * var_left + n_right * var_right) / n

        best = int(np.argmax(gain))
        i = positions[best]
        return float(gain[best]), float(0.5 * (x_sorted[i - 1] + x_sorted[i]))

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            raise RuntimeError("Tree is not fitted")
        return self.tree_.apply(check_array(X)).ravel()
