"""Random forests (bagged CART trees with feature subsampling).

The random-forest classifier is the paper's default downstream model for
classification and detection tasks; the regressor serves regression tasks.
``feature_importances_`` (mean impurity decrease) powers Table IV and the
importance-based pruning inside the FastFT engine.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y
from repro.ml.split_engine import SplitEngine, resolve_engine
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest(BaseEstimator):
    # Backstop for forests pickled before the split-engine layer existed.
    split_engine: "str | SplitEngine" = "naive"

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int | None = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        seed: int | None = 0,
        split_engine: "str | SplitEngine" = "naive",
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.split_engine = split_engine
        self.estimators_: list = []
        self.feature_importances_: np.ndarray | None = None

    def _make_tree(self, seed: int, engine: SplitEngine):
        raise NotImplementedError

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseForest":
        X, y = check_X_y(X, y)
        self._pre_fit(y)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.estimators_ = []
        importances = np.zeros(X.shape[1], dtype=float)
        # One engine instance serves every tree: each fit presorts its own
        # bootstrap sample at most once, scratch buffers are allocated once
        # per forest, and the forest-level hooks let the presort engine
        # derive per-sample orders from a single presort of X.
        engine = resolve_engine(self.split_engine)
        engine.begin_forest(X, y)
        try:
            for _ in range(self.n_estimators):
                tree = self._make_tree(int(rng.integers(0, 2**31 - 1)), engine)
                if self.bootstrap:
                    idx = rng.integers(0, n, size=n)
                    engine.set_bootstrap(idx)
                    tree.fit(X[idx], y[idx])
                else:
                    engine.set_bootstrap(None)
                    tree.fit(X, y)
                self.estimators_.append(tree)
                importances += tree.feature_importances_
        finally:
            engine.end_forest()
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else np.zeros_like(importances)
        )
        return self

    def _pre_fit(self, y: np.ndarray) -> None:
        pass


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Majority-probability-vote forest of Gini CART trees."""

    def _pre_fit(self, y: np.ndarray) -> None:
        self.classes_ = np.unique(y)

    def _make_tree(self, seed: int, engine: SplitEngine) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
            split_engine=engine,
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("Forest is not fitted")
        X = check_array(X)
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes), dtype=float)
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Bootstrap samples may miss rare classes; align columns by label.
            cols = np.searchsorted(self.classes_, tree.classes_)
            proba[:, cols] += tree_proba
        proba /= len(self.estimators_)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Mean-aggregated forest of variance-reduction CART trees."""

    def _make_tree(self, seed: int, engine: SplitEngine) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
            split_engine=engine,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("Forest is not fitted")
        X = check_array(X)
        preds = np.stack([tree.predict(X) for tree in self.estimators_], axis=0)
        return preds.mean(axis=0)
