"""Mutual-information estimators.

Equation 2 of the paper clusters features by the distance

    dis_ij = (1/|Ci||Cj|) · Σ Σ |MI(Fi,y) − MI(Fj,y)| / (MI(Fi,Fj) + ς)

which needs MI(feature, label) for relevance and MI(feature, feature) for
redundancy. We estimate both with quantile-histogram plug-in estimators,
which are fast, deterministic and adequate for ranking (the only property the
clustering and the ERG/AFT baselines rely on).
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import KBinsDiscretizer

__all__ = [
    "discrete_mutual_info",
    "mutual_info_with_target",
    "mutual_info_features",
    "mutual_info_matrix",
]


def discrete_mutual_info(a: np.ndarray, b: np.ndarray) -> float:
    """MI between two discrete code vectors via the plug-in estimator (nats)."""
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape[0] != b.shape[0]:
        raise ValueError("a and b must have the same length")
    n = a.shape[0]
    if n == 0:
        raise ValueError("Empty input")

    _, a_codes = np.unique(a, return_inverse=True)
    _, b_codes = np.unique(b, return_inverse=True)
    n_a = int(a_codes.max()) + 1
    n_b = int(b_codes.max()) + 1

    joint = np.zeros((n_a, n_b), dtype=float)
    np.add.at(joint, (a_codes, b_codes), 1.0)
    joint /= n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (pa @ pb)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(max(terms.sum(), 0.0))


def _discretize_continuous(x: np.ndarray, n_bins: int) -> np.ndarray:
    return KBinsDiscretizer(n_bins=n_bins).fit_transform(x.reshape(-1, 1)).ravel()


def mutual_info_with_target(
    X: np.ndarray, y: np.ndarray, task: str = "classification", n_bins: int = 16
) -> np.ndarray:
    """MI(F_j, y) for every column of X.

    Classification/detection targets are used as-is; regression targets are
    quantile-binned first.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    y = np.asarray(y).ravel()
    if task == "regression":
        y_codes = _discretize_continuous(y.astype(float), n_bins)
    else:
        _, y_codes = np.unique(y, return_inverse=True)
    codes = KBinsDiscretizer(n_bins=n_bins).fit_transform(X)
    return np.array(
        [discrete_mutual_info(codes[:, j], y_codes) for j in range(X.shape[1])], dtype=float
    )


def mutual_info_features(a: np.ndarray, b: np.ndarray, n_bins: int = 16) -> float:
    """MI between two continuous feature columns (histogram estimator)."""
    return discrete_mutual_info(
        _discretize_continuous(np.asarray(a, dtype=float), n_bins),
        _discretize_continuous(np.asarray(b, dtype=float), n_bins),
    )


def mutual_info_matrix(X: np.ndarray, n_bins: int = 16) -> np.ndarray:
    """Symmetric pairwise MI matrix over the columns of X."""
    X = np.asarray(X, dtype=float)
    codes = KBinsDiscretizer(n_bins=n_bins).fit_transform(X)
    d = X.shape[1]
    out = np.zeros((d, d), dtype=float)
    for i in range(d):
        for j in range(i, d):
            mi = discrete_mutual_info(codes[:, i], codes[:, j])
            out[i, j] = out[j, i] = mi
    return out
