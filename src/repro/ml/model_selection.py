"""Cross-validation utilities: K-fold splitters, train/test split, CV scoring.

The paper evaluates every generated feature set with five-fold cross
validation (train:test = 4:1); :func:`cross_val_score` is the exact routine
the downstream oracle calls. Folds are independent fits, so
``cross_val_score`` can optionally farm them out to a process pool
(``n_jobs``) with deterministic result order — fold *i*'s score is the same
value serial or parallel, because each fold's work is a pure function of
the estimator template and the (seeded) splitter.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
import weakref
from typing import Callable, Iterator

import numpy as np

from repro.ml.base import BaseEstimator, clone

__all__ = ["KFold", "StratifiedKFold", "train_test_split", "cross_val_score"]


class KFold:
    """Split indices into ``n_splits`` contiguous (optionally shuffled) folds."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(f"Cannot split {n_samples} samples into {self.n_splits} folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold preserving per-class proportions; falls back gracefully for rare classes."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y).ravel()
        n_samples = len(y)
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(n_samples, dtype=int)
        for cls in np.unique(y):
            members = np.where(y == cls)[0]
            if self.shuffle:
                rng.shuffle(members)
            # Round-robin assignment keeps each fold's class ratio balanced
            # even when a class has fewer members than folds.
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for k in range(self.n_splits):
            test = np.where(fold_of == k)[0]
            train = np.where(fold_of != k)[0]
            if len(test) == 0 or len(train) == 0:
                raise ValueError("Empty fold; reduce n_splits")
            yield train, test


def train_test_split(
    *arrays: np.ndarray,
    test_size: float = 0.2,
    seed: int | None = 0,
    stratify: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Shuffle-split arrays into train/test partitions.

    Returns ``[a_train, a_test, b_train, b_test, ...]`` matching sklearn's
    ordering. When ``stratify`` is given, class proportions are preserved.
    """
    if not arrays:
        raise ValueError("At least one array required")
    n = len(arrays[0])
    for a in arrays:
        if len(a) != n:
            raise ValueError("All arrays must share the first dimension")
    rng = np.random.default_rng(seed)
    n_test = max(1, int(round(n * test_size)))

    if stratify is not None:
        stratify = np.asarray(stratify).ravel()
        test_idx_parts = []
        for cls in np.unique(stratify):
            members = np.where(stratify == cls)[0]
            rng.shuffle(members)
            k = max(1, int(round(len(members) * test_size)))
            test_idx_parts.append(members[:k])
        test_idx = np.concatenate(test_idx_parts)
        mask = np.zeros(n, dtype=bool)
        mask[test_idx] = True
        train_idx, test_idx = np.where(~mask)[0], np.where(mask)[0]
    else:
        perm = rng.permutation(n)
        test_idx, train_idx = perm[:n_test], perm[n_test:]

    out: list[np.ndarray] = []
    for a in arrays:
        a = np.asarray(a)
        out.extend([a[train_idx], a[test_idx]])
    return out


# The dataset for the cross_val_score call in flight. Fold payloads carry
# only index arrays: serial folds and fork-started workers read X/y from
# here (workers inherit the parent's memory), instead of re-pickling the
# full matrix once per fold per oracle call.
_shared_data: tuple[np.ndarray, np.ndarray] | None = None

# Pickle-probe results memoized per estimator template (scorer identity
# checked), so a search making thousands of oracle calls probes — and, on
# an unpicklable payload, warns — once per evaluator, not once per call.
_probe_cache: "weakref.WeakKeyDictionary[BaseEstimator, tuple]" = weakref.WeakKeyDictionary()


def _parallel_payload_ok(estimator: BaseEstimator, scorer: Callable) -> bool:
    try:
        ref, ok = _probe_cache[estimator]
        if ref() is scorer:
            return ok
    except (KeyError, TypeError):
        pass
    try:
        pickle.dumps((estimator, scorer))
        ok = True
    except Exception:
        ok = False
        warnings.warn(
            "cross_val_score(n_jobs>1) needs a picklable estimator and "
            "scorer; falling back to serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
    try:
        _probe_cache[estimator] = (weakref.ref(scorer), ok)
    except TypeError:
        pass  # non-weakrefable scorer: probe again next call
    return ok


def _fit_score_fold(payload: tuple) -> tuple[float, float]:
    """Fit and score one fold; returns (score, fit+score seconds).

    Module-level so a process pool can pickle it; also the single code
    path the serial loop uses, which is what makes fold-parallel results
    deterministic and identical to serial ones. ``data`` is ``None``
    whenever the arrays are reachable via ``_shared_data`` (serial calls,
    fork workers); spawn-started workers re-import this module and need
    X/y shipped in the payload.
    """
    estimator, data, train, test, scorer, use_proba = payload
    X, y = _shared_data if data is None else data
    start = time.perf_counter()
    model = clone(estimator)
    model.fit(X[train], y[train])
    if use_proba:
        proba = model.predict_proba(X[test])
        pred = proba[:, -1] if proba.ndim == 2 else proba
    else:
        pred = model.predict(X[test])
    score = scorer(y[test], pred)
    return float(score), time.perf_counter() - start


def _resolve_n_jobs(n_jobs: int, n_folds: int) -> int:
    if n_jobs == -1:
        return min(os.cpu_count() or 1, n_folds)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return min(n_jobs, n_folds)


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    scorer: Callable[[np.ndarray, np.ndarray], float],
    n_splits: int = 5,
    seed: int | None = 0,
    stratified: bool = False,
    use_proba: bool = False,
    n_jobs: int = 1,
    return_fold_times: bool = False,
) -> "np.ndarray | tuple[np.ndarray, list[float]]":
    """Fit a clone per fold and score on the held-out fold.

    Parameters
    ----------
    scorer:
        ``scorer(y_true, y_pred_or_score) -> float`` (higher is better).
    use_proba:
        Score with the positive-class probability instead of hard labels
        (needed for AUC on detection tasks).
    n_jobs:
        Number of worker processes for fold-parallel execution (``-1`` =
        all cores). Scores come back in fold order and are identical to a
        serial run; estimators/scorers that cannot be pickled fall back
        to the serial path with a warning.
    return_fold_times:
        Also return each fold's fit+score wall seconds (measured inside
        the worker), so callers can account oracle cost as summed compute
        rather than pool wall time.
    """
    global _shared_data
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    folds = list(
        StratifiedKFold(n_splits, seed=seed).split(y)
        if stratified
        else KFold(n_splits, seed=seed).split(len(y))
    )

    n_workers = _resolve_n_jobs(n_jobs, len(folds))
    results: list[tuple[float, float]] | None = None
    _shared_data = (X, y)
    try:
        if n_workers > 1 and _parallel_payload_ok(estimator, scorer):
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                ctx = multiprocessing.get_context("fork")
                data = None  # workers fork below, inheriting _shared_data
            except ValueError:  # platforms without fork
                ctx = multiprocessing.get_context("spawn")
                data = (X, y)
            payloads = [
                (estimator, data, train, test, scorer, use_proba)
                for train, test in folds
            ]
            with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
                results = list(pool.map(_fit_score_fold, payloads))
        if results is None:
            results = [
                _fit_score_fold((estimator, None, train, test, scorer, use_proba))
                for train, test in folds
            ]
    finally:
        _shared_data = None

    scores = np.asarray([score for score, _ in results], dtype=float)
    if return_fold_times:
        return scores, [seconds for _, seconds in results]
    return scores
