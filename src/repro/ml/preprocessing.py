"""Feature preprocessing: scalers, encoders, clipping and discretization.

FastFT applies many unstable operations (``log``, ``reciprocal``, ``divide``)
whose outputs must be sanitized before reaching a downstream model;
:class:`RobustClipper` performs the NaN/inf replacement and winsorization the
paper's pipeline needs, and :class:`KBinsDiscretizer` supports the
histogram-based mutual-information estimator.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "RobustClipper",
    "LabelEncoder",
    "KBinsDiscretizer",
    "sanitize_features",
]


class StandardScaler(BaseEstimator):
    """Zero-mean, unit-variance scaling per column."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale each column into ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        self.feature_range = feature_range
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.range_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        lo, hi = self.feature_range
        unit = (np.asarray(X, dtype=float) - self.min_) / self.range_
        return unit * (hi - lo) + lo

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class RobustClipper(BaseEstimator):
    """Replace non-finite values and winsorize to column quantiles.

    Parameters
    ----------
    quantile:
        Two-sided clipping quantile; 0.001 clips to [0.1%, 99.9%] per column.
    """

    def __init__(self, quantile: float = 0.001) -> None:
        self.quantile = quantile
        self.lo_: np.ndarray | None = None
        self.hi_: np.ndarray | None = None
        self.fill_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "RobustClipper":
        X = np.asarray(X, dtype=float)
        finite = np.where(np.isfinite(X), X, np.nan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN columns
            self.lo_ = np.nanquantile(finite, self.quantile, axis=0)
            self.hi_ = np.nanquantile(finite, 1.0 - self.quantile, axis=0)
            self.fill_ = np.nanmedian(finite, axis=0)
        self.lo_ = np.where(np.isfinite(self.lo_), self.lo_, 0.0)
        self.hi_ = np.where(np.isfinite(self.hi_), self.hi_, 0.0)
        self.fill_ = np.where(np.isfinite(self.fill_), self.fill_, 0.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.lo_ is None:
            raise RuntimeError("RobustClipper is not fitted")
        X = np.asarray(X, dtype=float).copy()
        bad = ~np.isfinite(X)
        if bad.any():
            X[bad] = np.broadcast_to(self.fill_, X.shape)[bad]
        return np.clip(X, self.lo_, self.hi_)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def sanitize_features(X: np.ndarray, clip: float = 1e12) -> np.ndarray:
    """One-shot cleanup of a generated feature matrix.

    Replaces NaN with the column median (0 when a whole column is NaN) and
    clips to ``[-clip, clip]``. Used after every transformation step so that
    unstable operations cannot poison downstream evaluation.
    """
    X = np.asarray(X, dtype=float)
    out = X.copy()
    out[~np.isfinite(out)] = np.nan
    if np.isnan(out).any():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN columns
            med = np.nanmedian(out, axis=0)
        med = np.where(np.isfinite(med), med, 0.0)
        idx = np.where(np.isnan(out))
        out[idx] = med[idx[1]]
    return np.clip(out, -clip, clip)


class LabelEncoder(BaseEstimator):
    """Map arbitrary labels to contiguous integers 0..K−1."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y).ravel())
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        y = np.asarray(y).ravel()
        index = np.searchsorted(self.classes_, y)
        if np.any(index >= len(self.classes_)) or np.any(self.classes_[index] != y):
            raise ValueError("y contains labels unseen during fit")
        return index

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, idx: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        return self.classes_[np.asarray(idx, dtype=int)]


class KBinsDiscretizer(BaseEstimator):
    """Quantile binning of continuous columns into integer codes.

    Supports the histogram mutual-information estimator in
    :mod:`repro.ml.mutual_info`; constant columns map to a single bin.
    """

    def __init__(self, n_bins: int = 16) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "KBinsDiscretizer":
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        self.edges_ = []
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            edges = np.unique(np.quantile(X[:, j], quantiles))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("KBinsDiscretizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        codes = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
