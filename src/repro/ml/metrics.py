"""Evaluation metrics used by the paper (Section V, "Evaluation Metrics").

Classification: F1-score, Precision, Recall (binary and macro/micro/weighted).
Regression: 1-RAE, 1-MAE, 1-MSE (the paper reports the "1 minus error" form so
that higher is better across all task types).
Detection: Precision, F1 and AUC over anomaly scores.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_counts",
    "roc_auc_score",
    "roc_curve",
    "mean_absolute_error",
    "mean_squared_error",
    "relative_absolute_error",
    "one_minus_rae",
    "one_minus_mae",
    "one_minus_mse",
    "log_loss",
]


def _as_1d(y: np.ndarray) -> np.ndarray:
    return np.asarray(y).ravel()


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-matching labels."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    if y_true.shape[0] == 0:
        raise ValueError("accuracy_score requires at least one sample")
    return float(np.mean(y_true == y_pred))


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (tp, fp, fn, support) arrays in ``labels`` order."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    tp = np.array([np.sum((y_true == c) & (y_pred == c)) for c in labels], dtype=float)
    fp = np.array([np.sum((y_true != c) & (y_pred == c)) for c in labels], dtype=float)
    fn = np.array([np.sum((y_true == c) & (y_pred != c)) for c in labels], dtype=float)
    support = np.array([np.sum(y_true == c) for c in labels], dtype=float)
    return tp, fp, fn, support


def _averaged(per_class: np.ndarray, support: np.ndarray, average: str) -> float:
    if average == "macro":
        return float(np.mean(per_class))
    if average == "weighted":
        total = support.sum()
        if total == 0:
            return 0.0
        return float(np.sum(per_class * support) / total)
    raise ValueError(f"Unknown average {average!r}")


def _binary_or_averaged(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    average: str,
    kind: str,
) -> float:
    """Dispatch precision/recall/f1 over binary vs multiclass averaging."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    tp, fp, fn, support = confusion_counts(y_true, y_pred, labels)

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
        recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    per_class = {"precision": precision, "recall": recall, "f1": f1}[kind]

    if average == "binary":
        if len(labels) > 2:
            raise ValueError("average='binary' requires a binary target")
        # Positive class is the largest label value (1 in {0,1}).
        return float(per_class[-1])
    if average == "micro":
        tp_s, fp_s, fn_s = tp.sum(), fp.sum(), fn.sum()
        p = tp_s / (tp_s + fp_s) if tp_s + fp_s > 0 else 0.0
        r = tp_s / (tp_s + fn_s) if tp_s + fn_s > 0 else 0.0
        if kind == "precision":
            return float(p)
        if kind == "recall":
            return float(r)
        return float(2 * p * r / (p + r)) if p + r > 0 else 0.0
    return _averaged(per_class, support, average)


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "weighted") -> float:
    """Precision = TP / (TP + FP), averaged per ``average``."""
    return _binary_or_averaged(y_true, y_pred, average, "precision")


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "weighted") -> float:
    """Recall = TP / (TP + FN), averaged per ``average``."""
    return _binary_or_averaged(y_true, y_pred, average, "recall")


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "weighted") -> float:
    """F1 = harmonic mean of precision and recall, averaged per ``average``.

    The paper reports weighted F1 for classification tasks (the convention of
    the GRFG lineage it builds on), which is the default here.
    """
    return _binary_or_averaged(y_true, y_pred, average, "f1")


def roc_curve(y_true: np.ndarray, y_score: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (fpr, tpr) points for a binary target and continuous scores."""
    y_true, y_score = _as_1d(y_true).astype(float), _as_1d(y_score).astype(float)
    labels = np.unique(y_true)
    if len(labels) != 2:
        raise ValueError("roc_curve requires exactly two classes present")
    positive = labels[-1]
    y_bin = (y_true == positive).astype(float)

    order = np.argsort(-y_score, kind="stable")
    y_bin = y_bin[order]
    score_sorted = y_score[order]

    distinct = np.where(np.diff(score_sorted))[0]
    threshold_idx = np.concatenate([distinct, [len(y_bin) - 1]])

    tps = np.cumsum(y_bin)[threshold_idx]
    fps = (threshold_idx + 1) - tps
    n_pos, n_neg = y_bin.sum(), len(y_bin) - y_bin.sum()
    tpr = np.concatenate([[0.0], tps / max(n_pos, 1e-12)])
    fpr = np.concatenate([[0.0], fps / max(n_neg, 1e-12)])
    return fpr, tpr


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve (binary; rank-equivalent Mann-Whitney form)."""
    fpr, tpr = roc_curve(y_true, y_score)
    return float(np.trapezoid(tpr, fpr))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    return float(np.mean((y_true - y_pred) ** 2))


def relative_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RAE = Σ|y−ŷ| / Σ|y−ȳ| — the error normalizer used for 1-RAE."""
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    denom = float(np.sum(np.abs(y_true - np.mean(y_true))))
    if denom == 0.0:
        return 0.0 if np.allclose(y_true, y_pred) else float("inf")
    return float(np.sum(np.abs(y_true - y_pred)) / denom)


def one_minus_rae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """1 − RAE, the paper's headline regression metric (higher is better)."""
    return 1.0 - relative_absolute_error(y_true, y_pred)


def one_minus_mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """1 − MAE (paper's secondary regression metric)."""
    return 1.0 - mean_absolute_error(y_true, y_pred)


def one_minus_mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """1 − MSE (paper's secondary regression metric)."""
    return 1.0 - mean_squared_error(y_true, y_pred)


def log_loss(y_true: np.ndarray, proba: np.ndarray, eps: float = 1e-12) -> float:
    """Multiclass cross-entropy over predicted probabilities."""
    y_true = _as_1d(y_true)
    proba = np.asarray(proba, dtype=float)
    if proba.ndim == 1:
        proba = np.column_stack([1.0 - proba, proba])
    labels = np.unique(y_true)
    index = {c: i for i, c in enumerate(labels)}
    rows = np.arange(len(y_true))
    cols = np.array([index[c] for c in y_true])
    picked = np.clip(proba[rows, cols], eps, 1.0)
    return float(-np.mean(np.log(picked)))
