"""Estimator base classes: a minimal, sklearn-compatible parameter protocol.

Every estimator in :mod:`repro.ml` stores its constructor arguments verbatim
as attributes so that :func:`clone` can produce an unfitted copy — the same
contract scikit-learn relies on for cross-validation.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np


class BaseEstimator:
    """Base class providing ``get_params`` / ``set_params`` / ``repr``."""

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, p in signature.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]

    def get_params(self) -> dict[str, Any]:
        """Return constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters in place and return self."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(f"Invalid parameter {name!r} for {type(self).__name__}")
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return a new unfitted estimator with the same parameters."""
    return type(estimator)(**estimator.get_params())


class ClassifierMixin:
    """Mixin adding ``score`` (accuracy) and class bookkeeping helpers."""

    _estimator_type = "classifier"

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


class RegressorMixin:
    """Mixin adding ``score`` (R²) for regressors."""

    _estimator_type = "regressor"

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert inputs to 2-D float X and 1-D y arrays."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        y = y.ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("Cannot fit with zero samples")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinity; impute or clip first")
    return X, y


def check_array(X: Any) -> np.ndarray:
    """Validate and convert a feature matrix for prediction."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinity; impute or clip first")
    return X
