"""Feature selection: variance filtering, top-k relevance, greedy mRMR.

The FastFT engine prunes generated features by target relevance, and several
baselines (ERG's reduction stage, AFT's redundancy control) are instances of
the classic relevance/redundancy trade-off. This module provides those
selectors as reusable components.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.mutual_info import mutual_info_matrix, mutual_info_with_target

__all__ = ["VarianceThreshold", "SelectKBest", "mrmr_select"]


class VarianceThreshold(BaseEstimator):
    """Drop columns whose variance is at or below ``threshold``.

    Zero-variance (constant) columns carry no signal but can destabilize
    MI estimation and model training — this is the cheapest guard.
    """

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.support_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "VarianceThreshold":
        X = np.asarray(X, dtype=float)
        self.support_ = X.var(axis=0) > self.threshold
        if not self.support_.any():
            # Keep the single highest-variance column rather than nothing.
            keep = int(np.argmax(X.var(axis=0)))
            self.support_ = np.zeros(X.shape[1], dtype=bool)
            self.support_[keep] = True
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.support_ is None:
            raise RuntimeError("VarianceThreshold is not fitted")
        return np.asarray(X, dtype=float)[:, self.support_]

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def get_support(self) -> np.ndarray:
        if self.support_ is None:
            raise RuntimeError("VarianceThreshold is not fitted")
        return self.support_


class SelectKBest(BaseEstimator):
    """Keep the k columns with the highest mutual information to the target."""

    def __init__(self, k: int = 10, task: str = "classification", n_bins: int = 16) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.task = task
        self.n_bins = n_bins
        self.scores_: np.ndarray | None = None
        self.support_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SelectKBest":
        X = np.asarray(X, dtype=float)
        self.scores_ = mutual_info_with_target(X, y, task=self.task, n_bins=self.n_bins)
        k = min(self.k, X.shape[1])
        top = np.argsort(-self.scores_)[:k]
        self.support_ = np.zeros(X.shape[1], dtype=bool)
        self.support_[top] = True
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.support_ is None:
            raise RuntimeError("SelectKBest is not fitted")
        return np.asarray(X, dtype=float)[:, self.support_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def get_support(self) -> np.ndarray:
        if self.support_ is None:
            raise RuntimeError("SelectKBest is not fitted")
        return self.support_


def mrmr_select(
    X: np.ndarray,
    y: np.ndarray,
    k: int,
    task: str = "classification",
    n_bins: int = 16,
    redundancy_weight: float = 1.0,
) -> list[int]:
    """Greedy minimum-redundancy-maximum-relevance column selection.

    At each step pick the column maximizing
    ``MI(F_j, y) − redundancy_weight · mean_{s∈selected} MI(F_j, F_s)``.
    Returns selected column indices in pick order.
    """
    X = np.asarray(X, dtype=float)
    d = X.shape[1]
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, d)
    relevance = mutual_info_with_target(X, y, task=task, n_bins=n_bins)
    redundancy = mutual_info_matrix(X, n_bins=n_bins)

    selected = [int(np.argmax(relevance))]
    while len(selected) < k:
        best_j, best_score = -1, -np.inf
        for j in range(d):
            if j in selected:
                continue
            penalty = float(np.mean(redundancy[j, selected]))
            score = relevance[j] - redundancy_weight * penalty
            if score > best_score:
                best_score, best_j = score, j
        selected.append(best_j)
    return selected
