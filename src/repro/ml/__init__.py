"""Downstream tabular-ML substrate (scikit-learn stand-in).

FastFT treats the downstream task as a black-box oracle ``A(F, y) -> score``.
This subpackage provides everything that oracle needs, implemented from
scratch on numpy/scipy: estimators (trees, forests, boosting, linear models,
SVM, k-NN), metrics, preprocessing, cross-validation and mutual-information
estimators.

The public surface mirrors scikit-learn's API (``fit`` / ``predict`` /
``predict_proba`` / ``get_params``) so examples read like ordinary sklearn
code.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, clone
from repro.ml.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.cache import CachedEvaluator, EvaluationCache, SharedEvaluationCache
from repro.ml.evaluation import DownstreamEvaluator, default_model_for_task
from repro.ml.feature_selection import SelectKBest, VarianceThreshold, mrmr_select
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import LinearRegression, LogisticRegression, RidgeClassifier, RidgeRegression
from repro.ml.metrics import (
    accuracy_score,
    f1_score,
    mean_absolute_error,
    mean_squared_error,
    one_minus_mae,
    one_minus_mse,
    one_minus_rae,
    precision_score,
    recall_score,
    relative_absolute_error,
    roc_auc_score,
)
from repro.ml.model_selection import KFold, StratifiedKFold, cross_val_score, train_test_split
from repro.ml.mutual_info import mutual_info_features, mutual_info_with_target
from repro.ml.neighbors import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, RobustClipper, StandardScaler
from repro.ml.split_engine import ENGINE_NAMES, NaiveEngine, PresortEngine, SplitEngine, resolve_engine
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "RegressorMixin",
    "clone",
    "EvaluationCache",
    "SharedEvaluationCache",
    "CachedEvaluator",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LogisticRegression",
    "LinearRegression",
    "RidgeRegression",
    "RidgeClassifier",
    "LinearSVMClassifier",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "StandardScaler",
    "MinMaxScaler",
    "RobustClipper",
    "LabelEncoder",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_val_score",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "roc_auc_score",
    "mean_absolute_error",
    "mean_squared_error",
    "relative_absolute_error",
    "one_minus_rae",
    "one_minus_mae",
    "one_minus_mse",
    "mutual_info_with_target",
    "mutual_info_features",
    "SelectKBest",
    "VarianceThreshold",
    "mrmr_select",
    "DownstreamEvaluator",
    "default_model_for_task",
    "SplitEngine",
    "NaiveEngine",
    "PresortEngine",
    "ENGINE_NAMES",
    "resolve_engine",
]
