"""Content-addressed memoization of downstream oracle scores.

The :class:`EvaluationCache` attacks the *evaluation* bucket of the paper's
Table II time breakdown: downstream cross-validation dominates search cost,
and identical feature matrices recur — across restarted sessions, repeated
plans within a search, ablation arms sharing a cold start, and batch jobs
re-validating the same candidates. Scores are memoized by a content
signature of the evaluated matrix/target plus an evaluator fingerprint, so
a hit is exact, not approximate.

Three layers:

- :class:`EvaluationCache` — process-local dict, picklable, travels inside
  session checkpoints.
- :class:`SharedEvaluationCache` — the same key space over a
  ``multiprocessing.Manager`` dict, so the worker processes of a
  :class:`repro.core.parallel.SearchOrchestrator` sweep share one oracle
  cache; merged back into a caller's local cache on completion.
- :class:`CachedEvaluator` — the drop-in evaluator front that consults
  either cache.

Historically these classes lived in :mod:`repro.api`, which still
re-exports them (existing imports and pickled checkpoints keep working);
they moved here so :mod:`repro.core.parallel` can use them without
importing the facade.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Mapping

import numpy as np

from repro.ml.evaluation import DownstreamEvaluator

__all__ = ["EvaluationCache", "SharedEvaluationCache", "CachedEvaluator"]


class EvaluationCache:
    """Process-local memo of downstream CV scores, keyed by content.

    The key covers the exact feature matrix bytes, the target bytes and a
    fingerprint of the evaluator (task, folds, seed, model template), so
    two differently-configured oracles never share entries. Use
    :meth:`wrap` to attach the cache to an evaluator::

        cache = EvaluationCache()
        result = api.search(X, y, cache=cache)
        cache.hits, cache.misses

    The cache is a plain picklable object: a session checkpointed with a
    cache-wrapped evaluator carries its entries into the resumed run.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _digest_array(arr: np.ndarray) -> bytes:
        # Keys are derived from the row-major bytes, so logically equal
        # matrices hash identically whatever their layout. C-contiguous
        # inputs — e.g. the arena FeatureSpace's matrix() gathers — are
        # hashed straight from the buffer via the memoryview, skipping the
        # tobytes() copy the seed implementation paid on every signature;
        # other layouts pay exactly one ascontiguousarray copy (the seed
        # paid that copy *plus* tobytes).
        h = hashlib.sha1()
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        h.update(arr.data)
        return h.digest()

    def signature(self, X: np.ndarray, y: np.ndarray, fingerprint: bytes = b"") -> str:
        h = hashlib.sha1()
        h.update(fingerprint)
        h.update(self._digest_array(np.asarray(X)))
        h.update(self._digest_array(np.asarray(y)))
        return h.hexdigest()

    def get(self, key: str) -> float | None:
        score = self._entries.get(key)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def put(self, key: str, score: float) -> None:
        if len(self._entries) >= self.max_entries and key not in self._entries:
            # Drop the oldest entry (dicts preserve insertion order).
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = float(score)

    def snapshot_entries(self) -> dict[str, float]:
        """Copy of the stored ``{key: score}`` entries (for seeding/merging)."""
        return dict(self._entries)

    def merge_entries(self, entries: Mapping[str, float]) -> int:
        """Absorb entries from another cache; returns how many were new.

        Respects ``max_entries`` through the normal :meth:`put` eviction.
        """
        added = 0
        for key, score in entries.items():
            if key not in self._entries:
                added += 1
            self.put(key, score)
        return added

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def wrap(self, evaluator: DownstreamEvaluator) -> "CachedEvaluator":
        return CachedEvaluator(evaluator, self)


class SharedEvaluationCache:
    """Cross-process oracle cache over a ``multiprocessing.Manager`` dict.

    Same content-signature key space as :class:`EvaluationCache`, but the
    entry store lives in a manager process, so every worker of a parallel
    sweep/batch reads and writes one shared memo: a matrix evaluated by one
    worker is a cache hit for every other worker. Scores are exact, so
    sharing never perturbs search trajectories — only how many real CV runs
    they cost.

    Pickling ships only the dict *proxy* (the manager itself stays in the
    creating process), which is exactly what lets the object ride a
    ``ProcessPoolExecutor`` payload. ``hits``/``misses`` are therefore
    per-process counters. Call :meth:`merge_into` to fold the shared
    entries back into a local :class:`EvaluationCache`, and
    :meth:`shutdown` to stop an owned manager.
    """

    def __init__(self, max_entries: int = 100_000, manager=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if manager is None:
            import multiprocessing

            manager = multiprocessing.Manager()
            self._owns_manager = True
        else:
            self._owns_manager = False
        self.max_entries = max_entries
        self._manager = manager
        self._entries = manager.dict()
        self.hits = 0
        self.misses = 0

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # Workers need only the proxy; the manager is not picklable and its
        # lifecycle belongs to the creating process. Fresh per-process
        # hit/miss counters keep the stats honest about *this* process.
        state["_manager"] = None
        state["_owns_manager"] = False
        state["hits"] = 0
        state["misses"] = 0
        return state

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # The key derivation is shared verbatim with the local cache.
    _digest_array = staticmethod(EvaluationCache._digest_array)
    signature = EvaluationCache.signature

    def get(self, key: str) -> float | None:
        score = self._entries.get(key)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def put(self, key: str, score: float) -> None:
        if len(self._entries) >= self.max_entries and key not in self._entries:
            try:
                oldest = next(iter(self._entries.keys()))
                self._entries.pop(oldest)
            except (StopIteration, KeyError):  # racing eviction in a sibling
                pass
        self._entries[key] = float(score)

    def snapshot_entries(self) -> dict[str, float]:
        return dict(self._entries)

    def seed_from(self, cache: EvaluationCache) -> None:
        """Pre-populate the shared store from a local cache's entries."""
        self._entries.update(cache.snapshot_entries())

    def merge_entries(self, entries: "Mapping[str, float]") -> int:
        """Absorb entries from another cache; returns how many were new.

        Mirrors :meth:`EvaluationCache.merge_entries` so shared and local
        caches are interchangeable to callers (e.g. the jobfile sweep
        backend folding durable segments back into the caller's cache).
        """
        added = 0
        for key, score in entries.items():
            if key not in self._entries:
                added += 1
            self.put(key, score)
        return added

    def merge_into(self, cache: EvaluationCache) -> int:
        """Fold the shared entries into a local cache; returns new entries."""
        return cache.merge_entries(self.snapshot_entries())

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def wrap(self, evaluator: DownstreamEvaluator) -> "CachedEvaluator":
        return CachedEvaluator(evaluator, self)

    def shutdown(self) -> None:
        """Stop the manager process (no-op if the manager was borrowed)."""
        if self._owns_manager and self._manager is not None:
            self._manager.shutdown()
            self._manager = None


class CachedEvaluator:
    """Drop-in :class:`DownstreamEvaluator` front that consults a cache.

    ``n_calls``/``total_time`` mirror the wrapped evaluator, so they count
    only *actual* CV runs — exactly what
    :meth:`SearchSession._evaluate_matrix` needs to report honest
    ``n_downstream_calls`` figures.
    """

    def __init__(
        self, evaluator: DownstreamEvaluator, cache: "EvaluationCache | SharedEvaluationCache"
    ) -> None:
        self.evaluator = evaluator
        self.cache = cache
        self._fingerprint = self._evaluator_fingerprint(evaluator)

    @staticmethod
    def _evaluator_fingerprint(evaluator: DownstreamEvaluator) -> bytes:
        # Metrics and models are keyed by their pickled bytes. Two distinct
        # closures share a __qualname__, so anything unpicklable falls back
        # to its object identity: such evaluators never share cache entries
        # (correct, just less sharing) instead of silently colliding.
        def blob(obj) -> bytes:
            try:
                return pickle.dumps(obj)
            except Exception:
                return f"{obj!r}@{id(obj)}".encode()

        h = hashlib.sha1()
        h.update(getattr(evaluator, "task", "?").encode())
        h.update(str(getattr(evaluator, "n_splits", "?")).encode())
        h.update(str(getattr(evaluator, "seed", "?")).encode())
        h.update(blob(getattr(evaluator, "metric", None)))
        h.update(blob(getattr(evaluator, "model", None)))
        return h.digest()

    @property
    def fingerprint(self) -> bytes:
        """The evaluator identity folded into every cache key.

        Public so out-of-band cache users — e.g. the
        :class:`~repro.core.async_oracle.AsyncOracle`, which consults the
        cache at submission time and writes scores back when they land —
        derive exactly the keys this front would.
        """
        return self._fingerprint

    # -- DownstreamEvaluator interface parity ---------------------------------

    @property
    def task(self) -> str:
        return self.evaluator.task

    @property
    def n_calls(self) -> int:
        return self.evaluator.n_calls

    @property
    def total_time(self) -> float:
        return self.evaluator.total_time

    def reset_counters(self) -> None:
        self.evaluator.reset_counters()

    def __call__(self, X: np.ndarray, y: np.ndarray) -> float:
        key = self.cache.signature(X, y, self._fingerprint)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        score = self.evaluator(X, y)
        self.cache.put(key, score)
        return score

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> float:
        """Alias of :meth:`__call__`, mirroring ``DownstreamEvaluator``."""
        return self(X, y)
