"""Split-engine strategies: the hot path of the downstream oracle.

The oracle A(F, y) spends nearly all of its time fitting random forests,
and a CART fit spends nearly all of *its* time finding the best split per
node. This module isolates that search behind a strategy interface so the
tree builder (:mod:`repro.ml.tree`) stays criterion-agnostic and the
algorithm can be swapped without touching tree/forest semantics:

``NaiveEngine``
    The reference implementation: per node, per candidate feature, a
    stable ``argsort`` of the node's values followed by a cumulative-sum
    scan — O(m log m) per feature per node, exactly the original code.

``PresortEngine``
    Argsort every feature **once per fit**. At each node, the node's
    sorted order per feature is recovered by filtering the presorted
    index matrix through a boolean membership mask, and all candidate
    features are scored in one vectorized cumulative scan. Because the
    tree builder keeps node index sets in ascending row order, a stable
    per-node argsort breaks ties by row index — which is precisely the
    order the filtered presort yields, so the engines produce
    **bit-identical** trees, thresholds, importances and predictions.

Both engines share the same per-position gain formulas (same numpy ops in
the same order), so equality is exact, not approximate; the equivalence
suite in ``tests/ml/test_split_engine.py`` asserts it array-for-array.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SplitEngine",
    "NaiveEngine",
    "PresortEngine",
    "resolve_engine",
    "ENGINE_NAMES",
]

_EPS = 1e-15
_NO_SPLIT = (0.0, -1, 0.0)


def _split_positions(x_sorted: np.ndarray, min_samples_leaf: int) -> np.ndarray:
    """Valid split indices i (split between i-1 and i), honoring leaf size."""
    n = len(x_sorted)
    lo, hi = min_samples_leaf, n - min_samples_leaf
    if hi <= lo:
        return np.empty(0, dtype=np.int64)
    positions = np.arange(lo, hi)
    distinct = x_sorted[positions - 1] < x_sorted[positions]
    return positions[distinct]


def _scan_gini(
    x_sorted: np.ndarray, y_sorted: np.ndarray, min_samples_leaf: int, n_classes: int
) -> tuple[float, float]:
    """Best Gini split of one sorted feature: (gain, threshold) or (-inf, nan)."""
    positions = _split_positions(x_sorted, min_samples_leaf)
    if len(positions) == 0:
        return -np.inf, np.nan
    n = len(y_sorted)
    onehot = np.zeros((n, n_classes), dtype=float)
    onehot[np.arange(n), y_sorted] = 1.0
    cum = np.cumsum(onehot, axis=0)

    left_counts = cum[positions - 1]
    total = cum[-1]
    right_counts = total - left_counts
    n_left = positions.astype(float)
    n_right = n - n_left

    gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
    gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
    parent = 1.0 - np.sum((total / n) ** 2)
    gain = parent - (n_left * gini_left + n_right * gini_right) / n

    best = int(np.argmax(gain))
    i = positions[best]
    return float(gain[best]), float(0.5 * (x_sorted[i - 1] + x_sorted[i]))


def _scan_variance(
    x_sorted: np.ndarray, y_sorted: np.ndarray, min_samples_leaf: int
) -> tuple[float, float]:
    """Best variance-reduction split of one sorted feature."""
    positions = _split_positions(x_sorted, min_samples_leaf)
    if len(positions) == 0:
        return -np.inf, np.nan
    n = len(y_sorted)
    cum = np.cumsum(y_sorted)
    cum2 = np.cumsum(y_sorted**2)

    n_left = positions.astype(float)
    n_right = n - n_left
    sum_left = cum[positions - 1]
    sum_right = cum[-1] - sum_left
    sq_left = cum2[positions - 1]
    sq_right = cum2[-1] - sq_left

    var_left = sq_left / n_left - (sum_left / n_left) ** 2
    var_right = sq_right / n_right - (sum_right / n_right) ** 2
    parent = cum2[-1] / n - (cum[-1] / n) ** 2
    gain = parent - (n_left * var_left + n_right * var_right) / n

    best = int(np.argmax(gain))
    i = positions[best]
    return float(gain[best]), float(0.5 * (x_sorted[i - 1] + x_sorted[i]))


class SplitEngine:
    """Strategy interface for per-node best-split search.

    Lifecycle: the tree builder calls :meth:`begin_fit` once per ``fit``,
    then :meth:`best_split` once per internal-node candidate, then
    :meth:`end_fit`. Engines are reusable across sequential fits (a forest
    passes one engine instance to every tree, so per-fit scratch buffers
    are shared) but are not thread-safe.
    """

    name = "?"

    def begin_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        criterion: str,
        n_classes: int,
        min_samples_leaf: int,
    ) -> None:
        if criterion not in ("gini", "variance"):
            raise ValueError(f"Unknown split criterion {criterion!r}")
        self._X = X
        self._y = y
        self._criterion = criterion
        self._n_classes = int(n_classes)
        self._min_samples_leaf = int(min_samples_leaf)

    def best_split(
        self, idx: np.ndarray, candidates: np.ndarray, node_y: np.ndarray
    ) -> tuple[float, int, float]:
        """Return ``(gain, feature, threshold)``; ``feature == -1`` means leaf.

        ``idx`` is the node's sample index set in ascending order;
        ``candidates`` the feature indices to scan, in the order the
        tie-break must respect (first strictly-better feature wins);
        ``node_y`` is ``y[idx]``, which the builder already holds.
        """
        raise NotImplementedError

    def end_fit(self) -> None:
        """Drop per-fit references so fitted estimators pickle lean."""
        self._X = self._y = None

    # -- forest-level workspace hooks (no-ops by default) -------------------

    def begin_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        """Called once by a forest before fitting its trees on resamples
        of ``X``; engines may build forest-wide shared state here."""

    def set_bootstrap(self, idx: "np.ndarray | None") -> None:
        """Row indices of the *next* tree's sample in the forest's ``X``
        (``None`` for a no-resample fit)."""

    def end_forest(self) -> None:
        """Drop forest-level state."""

    def _scan(self, x_sorted: np.ndarray, y_sorted: np.ndarray) -> tuple[float, float]:
        if self._criterion == "gini":
            return _scan_gini(x_sorted, y_sorted, self._min_samples_leaf, self._n_classes)
        return _scan_variance(x_sorted, y_sorted, self._min_samples_leaf)

    # Engines carry no fitted state between fits; pickling one (e.g. inside
    # a fitted tree that kept a reference) must not drag the training data
    # or scratch buffers along.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for key in (
            "_X", "_y", "_XT", "_sorted", "_have_sort", "_mask", "_pos_f", "_ar", "_bufs",
            "_src_XT", "_src_sorted", "_src_have", "_src_tie_free",
            "_next_sample", "_fit_boot", "_fit_identity", "_boot_state",
        ):
            state.pop(key, None)
        return state


class NaiveEngine(SplitEngine):
    """Reference implementation: per-node stable argsort per feature."""

    name = "naive"

    def best_split(
        self, idx: np.ndarray, candidates: np.ndarray, node_y: np.ndarray
    ) -> tuple[float, int, float]:
        X = self._X
        best_gain, best_feature, best_threshold = _NO_SPLIT
        for f in candidates:
            x = X[idx, f]
            order = np.argsort(x, kind="stable")
            gain, threshold = self._scan(x[order], node_y[order])
            if gain > best_gain + _EPS:
                best_gain, best_feature, best_threshold = gain, int(f), float(threshold)
        return best_gain, best_feature, best_threshold


class PresortEngine(SplitEngine):
    """Presorted, fully vectorized split search (bit-identical to naive).

    Each feature is stable-argsorted at most **once per fit** (lazily, the
    first time a node samples it). A node's per-feature sorted index
    partition is then recovered by filtering the presorted row through a
    boolean membership mask — a stable filter, so ties stay ordered by
    global row index, which is exactly the order a per-node stable argsort
    yields (the tree builder keeps node index sets ascending). All
    candidate features of a node are scored in one batched cumulative-sum
    scan: no per-feature Python loop, and ~10 numpy calls per node instead
    of ~15 per feature.

    For nodes much smaller than the training set the O(n) membership
    filter costs more than re-sorting the node block in a single batched
    argsort, so small nodes take that route instead. Both paths compute
    identical sorted orders, so the cutoff is purely a performance knob.
    """

    name = "presort"

    # Use the presort+filter path while m > n / _FILTER_FACTOR; smaller
    # nodes re-sort their (k, m) block in one batched stable argsort
    # (empirically the filter's O(n)-per-feature cost only pays off for
    # the upper levels of the tree).
    _FILTER_FACTOR = 8

    # -- forest-level workspace ---------------------------------------------

    def begin_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        """Share one presort of the forest's matrix across all trees.

        Each tree still gets "one presort of its bootstrap sample per
        fit", but for features whose source column has no duplicate
        values that presort is *derived* from the forest-level presort in
        O(n): replace every source row, in source sorted order, by that
        row's draw positions in ascending order. Bootstrap duplicates of
        one source row are equal values whose stable order is exactly
        ascending draw position, so the derivation is bit-identical to a
        stable argsort of the sample. Columns with duplicate source
        values (where cross-row ties would need a draw-position merge)
        fall back to a per-tree argsort.
        """
        n, d = X.shape
        self._src_XT = np.ascontiguousarray(X.T)
        self._src_sorted = np.empty((d, n), dtype=np.int32)
        self._src_have = np.zeros(d, dtype=bool)
        self._src_tie_free = np.zeros(d, dtype=bool)
        self._next_sample: "tuple | None" = None

    def set_bootstrap(self, idx: "np.ndarray | None") -> None:
        self._next_sample = (idx,)

    def end_forest(self) -> None:
        self._src_XT = self._src_sorted = self._src_have = self._src_tie_free = None
        self._next_sample = None
        # The fitted trees keep a reference to this shared engine, so the
        # within-forest workspace must not outlive the fit — at FULL-scale
        # row counts the scratch block alone is hundreds of MB.
        self._mask = None
        self._bufs = {}

    def begin_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        criterion: str,
        n_classes: int,
        min_samples_leaf: int,
    ) -> None:
        super().begin_fit(X, y, criterion, n_classes, min_samples_leaf)
        n, d = X.shape
        # Row-contiguous layout makes per-node gathers sequential reads;
        # int32 indices halve the traffic of every membership filter.
        self._XT = np.ascontiguousarray(X.T)
        self._sorted = np.empty((d, n), dtype=np.int32)
        self._have_sort = np.zeros(d, dtype=bool)
        self._cutoff = n // self._FILTER_FACTOR
        self._pos_f = np.arange(n, dtype=float)  # shared n_left views
        self._ar = np.arange(max(n, d))  # shared row-index vector
        if self._criterion == "gini":
            # Class counts fit comfortably in int32; exact either way.
            self._y = y.astype(np.int32)
        mask = getattr(self, "_mask", None)
        if mask is None or mask.shape[0] != n:
            self._mask = np.zeros(n, dtype=bool)
        else:
            self._mask[:] = False
        if not hasattr(self, "_bufs"):
            self._bufs: dict[str, np.ndarray] = {}
        # One-shot sample linkage from the owning forest (if any).
        nxt = getattr(self, "_next_sample", None)
        self._next_sample = None
        self._fit_boot = None
        self._fit_identity = False
        if nxt is not None and getattr(self, "_src_XT", None) is not None:
            idx = nxt[0]
            if idx is None:
                self._fit_identity = n == self._src_XT.shape[1]
            elif idx.shape[0] == n:
                self._fit_boot = idx
        self._boot_state = None

    def end_fit(self) -> None:
        super().end_fit()
        # The mask and scratch buffers survive as the forest-shared
        # workspace; everything tied to this fit's data is dropped.
        self._XT = self._sorted = self._have_sort = self._pos_f = self._ar = None
        self._fit_boot = self._boot_state = None
        self._fit_identity = False

    # -- per-fit presort (lazy, possibly derived from the forest) -----------

    def _ensure_src_sorted(self, feats: np.ndarray) -> None:
        need = feats[~self._src_have[feats]]
        if need.size:
            orders = np.argsort(self._src_XT[need], axis=1, kind="stable")
            self._src_sorted[need] = orders
            vals = np.take_along_axis(self._src_XT[need], orders, axis=1)
            self._src_tie_free[need] = np.all(vals[:, 1:] > vals[:, :-1], axis=1)
            self._src_have[need] = True

    def _boot_machinery(self) -> tuple:
        st = self._boot_state
        if st is None:
            idx = self._fit_boot
            n_src = self._src_XT.shape[1]
            order_by_row = np.argsort(idx, kind="stable").astype(np.int32)
            counts = np.bincount(idx, minlength=n_src)
            starts = np.empty(n_src + 1, dtype=np.int64)
            starts[0] = 0
            np.cumsum(counts, out=starts[1:])
            self._boot_state = st = (order_by_row, counts, starts)
        return st

    def _derive_sorted(self, f: int) -> None:
        """O(n) bootstrap sorted order for a tie-free source feature."""
        order_by_row, counts, starts = self._boot_machinery()
        src_order = self._src_sorted[f]
        cnt = counts[src_order]
        total = self._XT.shape[1]
        out_off = np.empty(len(cnt) + 1, dtype=np.int64)
        out_off[0] = 0
        np.cumsum(cnt, out=out_off[1:])
        # Group g (source row r = src_order[g]) occupies output slots
        # [out_off[g], out_off[g+1]); slot t maps to the row's t-th draw.
        rep = np.repeat(starts[src_order] - out_off[:-1], cnt)
        self._sorted[f] = order_by_row[rep + self._ar[:total]]

    def _ensure_sorted(self, missing: np.ndarray) -> None:
        if self._fit_boot is not None or self._fit_identity:
            self._ensure_src_sorted(missing)
            if self._fit_identity:
                self._sorted[missing] = self._src_sorted[missing]
            else:
                for f in missing:
                    if self._src_tie_free[f]:
                        self._derive_sorted(int(f))
                    else:
                        self._sorted[f] = np.argsort(self._XT[f], kind="stable")
        else:
            self._sorted[missing] = np.argsort(self._XT[missing], axis=1, kind="stable")
        self._have_sort[missing] = True

    def _scratch(self, key: str, shape: tuple, dtype=float) -> np.ndarray:
        """A reusable uninitialized buffer view (no allocation when warm)."""
        need = 1
        for s in shape:
            need *= s
        buf = self._bufs.get(key)
        if buf is None or buf.size < need or buf.dtype != dtype:
            buf = np.empty(max(need, 1), dtype=dtype)
            self._bufs[key] = buf
        return buf[:need].reshape(shape)

    def _node_orders(self, idx: np.ndarray, candidates: np.ndarray, node_y: np.ndarray, m: int):
        """Sorted views of the node: ``x_sorted``, ``y_sorted`` (k, m)."""
        if m > self._cutoff:
            # Presort + membership-mask filter. Sort each sampled feature
            # at most once per fit; unsampled features are never sorted.
            missing = candidates[~self._have_sort[candidates]]
            if missing.size:
                self._ensure_sorted(missing)
            rows = self._sorted[candidates]
            if m == rows.shape[1]:
                orders = rows  # root: the presort itself
            else:
                mask = self._mask
                mask[idx] = True
                orders = rows[mask[rows]].reshape(candidates.shape[0], m)
                mask[idx] = False
            x_sorted = self._XT[candidates[:, None], orders]
            y_sorted = self._y[orders]
        else:
            # Small node: one batched stable argsort of the node block.
            # Ties break by position within ``idx`` — the same order the
            # membership filter preserves, since ``idx`` is ascending.
            rows = self._ar[: candidates.shape[0], None]
            block = self._XT[candidates[:, None], idx]
            local = np.argsort(block, axis=1, kind="stable")
            x_sorted = block[rows, local]
            # For gini fits the engine carries int32 class codes (``_y`` is
            # its own copy); gather those so the cumsum buffers keep one
            # stable dtype across nodes.
            y_node = node_y if node_y.dtype == self._y.dtype else self._y[idx]
            y_sorted = y_node[local]
        return x_sorted, y_sorted

    def best_split(
        self, idx: np.ndarray, candidates: np.ndarray, node_y: np.ndarray
    ) -> tuple[float, int, float]:
        m = idx.shape[0]
        k = candidates.shape[0]

        # Candidate split positions form the contiguous run [lo, hi); all
        # per-position arrays below are therefore cheap slice views, and a
        # position's validity (left neighbor strictly smaller) becomes a
        # mask applied at the end — the gain values at valid positions are
        # computed by exactly the naive engine's expressions.
        lo, hi = self._min_samples_leaf, m - self._min_samples_leaf
        if hi <= lo:
            return _NO_SPLIT
        p = hi - lo

        x_sorted, y_sorted = self._node_orders(idx, candidates, node_y, m)

        if self._criterion != "gini":
            gain = self._variance_gains(y_sorted, lo, hi, m)
        elif self._n_classes == 2:
            # Binary fast path, inlined and allocation-free (one scratch
            # block). Class counts are small exact integers, so every
            # row's total is the same value (parent comes from row 0) and
            # the integer cumsum matches the naive float one-hot cumsum
            # bit for bit; each arithmetic step mirrors _scan_gini.
            F = self._scratch("bin", (8, k, p))
            cum1 = np.cumsum(y_sorted, axis=1, out=self._scratch("cum", (k, m), y_sorted.dtype))
            ones_left = cum1[:, lo - 1 : hi - 1]
            ones_total = cum1[:1, -1:]
            n_left = self._pos_f[lo:hi]
            n_right = np.subtract(float(m), n_left, out=self._scratch("nr", (p,)))
            zeros_left = np.subtract(n_left, ones_left, out=F[0])
            ones_right = np.subtract(ones_total, ones_left, out=F[1])
            zeros_right = np.subtract(n_right, ones_right, out=F[2])
            # 1 - ((zeros/count)^2 + (ones/count)^2), left then right
            np.divide(zeros_left, n_left, out=F[3])
            np.multiply(F[3], F[3], out=F[3])
            np.divide(ones_left, n_left, out=F[4])
            np.multiply(F[4], F[4], out=F[4])
            np.add(F[3], F[4], out=F[3])
            gini_left = np.subtract(1.0, F[3], out=F[3])
            np.divide(zeros_right, n_right, out=F[5])
            np.multiply(F[5], F[5], out=F[5])
            np.divide(ones_right, n_right, out=F[6])
            np.multiply(F[6], F[6], out=F[6])
            np.add(F[5], F[6], out=F[5])
            gini_right = np.subtract(1.0, F[5], out=F[5])
            parent = 1.0 - (((m - ones_total) / m) ** 2 + (ones_total / m) ** 2)
            np.multiply(n_left, gini_left, out=F[3])
            np.multiply(n_right, gini_right, out=F[5])
            np.add(F[3], F[5], out=F[3])
            np.divide(F[3], float(m), out=F[3])
            gain = np.subtract(parent, F[3], out=F[7])
        else:
            gain = self._gini_gains(y_sorted, lo, hi, m)

        valid = np.less(
            x_sorted[:, lo - 1 : hi - 1],
            x_sorted[:, lo:hi],
            out=self._scratch("valid", (k, p), dtype=bool),
        )
        np.copyto(gain, -np.inf, where=np.logical_not(valid, out=valid))

        best_pos = np.argmax(gain, axis=1)
        gains = gain[self._ar[:k], best_pos].tolist()
        positions = best_pos.tolist()
        feats = candidates.tolist()

        # Same tie-break as the naive candidate loop: first feature that is
        # strictly better (by _EPS) than the best so far wins.
        best_gain, best_feature, best_threshold = _NO_SPLIT
        for j in range(k):
            g = gains[j]
            if g > best_gain + _EPS:
                i = lo + positions[j]
                best_gain = g
                best_feature = feats[j]
                best_threshold = float(0.5 * (x_sorted[j, i - 1] + x_sorted[j, i]))
        return best_gain, best_feature, best_threshold

    def _gini_gains(self, y_sorted: np.ndarray, lo: int, hi: int, m: int) -> np.ndarray:
        """Multiclass Gini gains at positions [lo, hi), shape (k, p).

        Class counts are small exact integers (so every row's total is
        the same value and the parent term comes from row 0); the gain
        expressions apply the same operations in the same order as
        :func:`_scan_gini`, hence bit-identical values. The binary case
        takes the inlined fast path in :meth:`best_split` instead.
        """
        n_left = self._pos_f[lo:hi]
        n_right = m - n_left
        onehot = (y_sorted[:, :, None] == np.arange(self._n_classes)).astype(float)
        cum = np.cumsum(onehot, axis=1)
        left_counts = cum[:, lo - 1 : hi - 1, :]
        total = cum[:, -1, :]
        right_counts = total[:, None, :] - left_counts
        gini_left = 1.0 - np.sum((left_counts / n_left[None, :, None]) ** 2, axis=2)
        gini_right = 1.0 - np.sum((right_counts / n_right[None, :, None]) ** 2, axis=2)
        parent = np.reshape(1.0 - np.sum((total[:1] / m) ** 2, axis=1), (-1, 1))
        return parent - (n_left * gini_left + n_right * gini_right) / m

    def _variance_gains(self, y_sorted: np.ndarray, lo: int, hi: int, m: int) -> np.ndarray:
        """Variance-reduction gains at positions [lo, hi), shape (k, p)."""
        # Unlike class counts, running float sums depend on accumulation
        # order, and each row accumulates in its own sorted order — so the
        # per-row totals (and the parent term) must stay per-row to match
        # the naive engine bit for bit. Scratch buffers only avoid
        # allocations; every arithmetic step mirrors :func:`_scan_variance`.
        k, p = y_sorted.shape[0], hi - lo
        s = self._scratch
        cum = np.cumsum(y_sorted, axis=1, out=s("vcum", y_sorted.shape))
        y2 = np.multiply(y_sorted, y_sorted, out=s("vy2", y_sorted.shape))
        cum2 = np.cumsum(y2, axis=1, out=s("vcum2", y_sorted.shape))

        n_left = self._pos_f[lo:hi]
        n_right = m - n_left
        sum_left = cum[:, lo - 1 : hi - 1]
        sum_right = np.subtract(cum[:, -1:], sum_left, out=s("v0", (k, p)))
        sq_left = cum2[:, lo - 1 : hi - 1]
        sq_right = np.subtract(cum2[:, -1:], sq_left, out=s("v1", (k, p)))
        t0, t1 = s("v2", (k, p)), s("v3", (k, p))

        def variance(sq, total, count, out):
            # sq/count - (total/count)^2, allocation-free
            np.divide(sq, count, out=out)
            np.divide(total, count, out=t0)
            np.multiply(t0, t0, out=t0)
            return np.subtract(out, t0, out=out)

        var_left = variance(sq_left, sum_left, n_left, s("v4", (k, p)))
        var_right = variance(sq_right, sum_right, n_right, s("v5", (k, p)))
        parent = cum2[:, -1:] / m - (cum[:, -1:] / m) ** 2
        np.multiply(n_left, var_left, out=var_left)
        np.multiply(n_right, var_right, out=var_right)
        np.add(var_left, var_right, out=t1)
        np.divide(t1, m, out=t1)
        return np.subtract(parent, t1, out=t1)


_ENGINES = {
    NaiveEngine.name: NaiveEngine,
    PresortEngine.name: PresortEngine,
}
ENGINE_NAMES = tuple(_ENGINES)


def resolve_engine(spec: "str | SplitEngine | type[SplitEngine] | None") -> SplitEngine:
    """Turn an engine spec (name, instance, class or None) into an instance.

    ``None`` resolves to the naive reference engine; instances pass
    through unchanged so a forest can share one engine (and its scratch
    buffers) across all of its trees.
    """
    if spec is None:
        return NaiveEngine()
    if isinstance(spec, SplitEngine):
        return spec
    if isinstance(spec, type) and issubclass(spec, SplitEngine):
        return spec()
    if isinstance(spec, str):
        try:
            return _ENGINES[spec]()
        except KeyError:
            raise ValueError(
                f"Unknown split engine {spec!r}; expected one of {ENGINE_NAMES}"
            ) from None
    raise TypeError(f"Cannot resolve a split engine from {spec!r}")
