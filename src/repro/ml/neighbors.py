"""k-nearest-neighbor classifier and regressor (brute force, scipy cdist)."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y
from repro.ml.preprocessing import StandardScaler

__all__ = ["KNeighborsClassifier", "KNeighborsRegressor"]


class _BaseKNN(BaseEstimator):
    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._scaler: StandardScaler | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseKNN":
        X, y = check_X_y(X, y)
        self._scaler = StandardScaler().fit(X)
        self._X = self._scaler.transform(X)
        self._y = y
        return self

    def _neighbor_indices(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("Model is not fitted")
        Xs = self._scaler.transform(check_array(X))
        k = min(self.n_neighbors, self._X.shape[0])
        distances = cdist(Xs, self._X)
        return np.argpartition(distances, kth=k - 1, axis=1)[:, :k]


class KNeighborsClassifier(_BaseKNN, ClassifierMixin):
    """Majority vote over the k nearest (standardized-Euclidean) neighbors."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        super().fit(X, y)
        self.classes_ = np.unique(self._y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        neighbors = self._neighbor_indices(X)
        labels = self._y[neighbors]
        proba = np.zeros((len(neighbors), len(self.classes_)))
        for j, cls in enumerate(self.classes_):
            proba[:, j] = np.mean(labels == cls, axis=1)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class KNeighborsRegressor(_BaseKNN, RegressorMixin):
    """Mean of the k nearest neighbors' targets."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        neighbors = self._neighbor_indices(X)
        return self._y.astype(float)[neighbors].mean(axis=1)
