"""Linear support-vector classifier (squared-hinge, L-BFGS).

Stand-in for sklearn's ``LinearSVC`` used in the Table III robustness study.
Multiclass is one-vs-rest; the squared hinge keeps the objective smooth so
L-BFGS converges reliably.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from repro.ml.preprocessing import StandardScaler

__all__ = ["LinearSVMClassifier"]


class LinearSVMClassifier(BaseEstimator, ClassifierMixin):
    """One-vs-rest linear SVM minimizing  λ/2‖w‖² + mean(max(0, 1 − y·f(x))²)."""

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.max_iter = max_iter
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self._scaler: StandardScaler | None = None

    def _fit_binary(self, X: np.ndarray, y_signed: np.ndarray) -> tuple[np.ndarray, float]:
        n, d = X.shape
        lam = 1.0 / (self.C * n)

        def objective(w_flat: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = w_flat[:d], w_flat[d]
            margin = 1.0 - y_signed * (X @ w + b)
            active = np.maximum(margin, 0.0)
            loss = 0.5 * lam * float(w @ w) + float(np.mean(active**2))
            grad_common = -2.0 * active * y_signed / n
            grad_w = lam * w + X.T @ grad_common
            grad_b = float(grad_common.sum())
            return loss, np.concatenate([grad_w, [grad_b]])

        result = optimize.minimize(
            objective,
            np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        return result.x[:d], float(result.x[d])

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        X, y = check_X_y(X, y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        self.classes_, codes = np.unique(y, return_inverse=True)
        k = len(self.classes_)
        if k < 2:
            raise ValueError("Need at least two classes")
        coefs, intercepts = [], []
        targets = range(k) if k > 2 else [1]
        for cls_idx in targets:
            y_signed = np.where(codes == cls_idx, 1.0, -1.0)
            w, b = self._fit_binary(Xs, y_signed)
            coefs.append(w)
            intercepts.append(b)
        self.coef_ = np.stack(coefs)
        self.intercept_ = np.asarray(intercepts)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Model is not fitted")
        Xs = self._scaler.transform(check_array(X))
        scores = Xs @ self.coef_.T + self.intercept_
        return scores[:, 0] if scores.shape[1] == 1 else scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        if scores.ndim == 1:
            return self.classes_[(scores > 0).astype(int)]
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Platt-style probability surrogate via a sigmoid/softmax of margins."""
        scores = self.decision_function(X)
        if scores.ndim == 1:
            p = 1.0 / (1.0 + np.exp(-np.clip(scores, -35, 35)))
            return np.column_stack([1.0 - p, p])
        z = scores - scores.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)
