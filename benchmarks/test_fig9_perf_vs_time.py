"""Fig 9 bench — downstream performance vs time consumption for all methods.

Paper shape to verify: FastFT matches the best scores while spending far
less time in downstream evaluation than the evaluate-everything arm
(FastFT−PP), and CAAFE's runtime is dominated by LLM latency.

Substrate caveat (documented in EXPERIMENTS.md): the paper's 5× *total*
runtime gap requires downstream evaluation to dwarf predictor inference; on
smoke-scale datasets our RF oracle is milliseconds, so the total-wall gap
only emerges at the default/full profiles. The mechanism — evaluation-time
reduction at equal quality — is asserted at every scale.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import fig9
from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset


@pytest.mark.serial
def test_fig9_perf_vs_time(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: fig9.run(
            profile,
            seed=0,
            datasets=["openml_589"],
            methods=[
                "rfg", "erg", "lda", "openfe", "caafe", "grfg",
                "fastft", "fastft_no_pp", "fastft_async",
            ],
        ),
        rounds=1,
        iterations=1,
    )
    save_report("fig9_perf_vs_time", fig9.format_report(data))

    points = data["points"]["openml_589"]
    _, fast_score = points["fastft"]
    _, nopp_score = points["fastft_no_pp"]
    _, async_score = points["fastft_async"]
    # Comparable quality with and without per-step downstream evaluation.
    assert fast_score >= nopp_score - 0.1
    # The async arm steps on estimates between reconciles but lands every
    # real score; its quality must stay comparable too.
    assert async_score >= fast_score - 0.1
    # The CAAFE point carries its simulated LLM latency.
    assert points["caafe"][0] > points["erg"][0]


@pytest.mark.serial
def test_fig9_evaluation_time_mechanism(benchmark, profile, save_report):
    """The mechanism behind Fig 9's gap: the predictor slashes the
    evaluation bucket at matching quality."""
    sized = dataclasses.replace(profile, dataset_scale=max(profile.dataset_scale, 0.2))

    def run():
        ds = load_profile_dataset("openml_589", sized, seed=0)
        with_pp, _ = run_fastft_on_dataset(ds, sized, seed=0)
        no_pp, _ = run_fastft_on_dataset(ds, sized, seed=0, use_performance_predictor=False)
        return with_pp, no_pp

    with_pp, no_pp = benchmark.pedantic(run, rounds=1, iterations=1)
    report = (
        "Fig 9 mechanism — evaluation-time reduction at equal quality (openml_589)\n"
        f"FastFT    : score={with_pp.best_score:.3f} eval_time={with_pp.time.evaluation:.2f}s "
        f"downstream_calls={with_pp.n_downstream_calls}\n"
        f"FastFT-PP : score={no_pp.best_score:.3f} eval_time={no_pp.time.evaluation:.2f}s "
        f"downstream_calls={no_pp.n_downstream_calls}"
    )
    save_report("fig9_mechanism", report)
    assert with_pp.n_downstream_calls < no_pp.n_downstream_calls
    # Seconds track the call reduction loosely at smoke scale: triggered
    # evaluations skew toward later, larger feature sets, so per-call cost
    # is higher than the −PP arm's every-step average. The paper's regime
    # (row-count-dominated evaluation) emerges at default/full profiles.
    assert with_pp.time.evaluation < no_pp.time.evaluation * 1.35
    assert with_pp.best_score >= no_pp.best_score - 0.1
