"""Fig 13 bench — hyper-parameter sweeps: novelty weight ε_s, decay M, memory S.

Paper shape to verify: scores are stable across reasonable settings (the
paper's generalization claim) — we assert a bounded spread per sweep.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig13


def test_fig13_hparams(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: fig13.run(
            sized_profile,
            seed=0,
            datasets=["pima_indian"],
            novelty_weights=[0.01, 0.10, 0.50],
            decay_steps=[100, 1000],
            memory_sizes=[8, 16, 64],
        ),
        rounds=1,
        iterations=1,
    )
    save_report("fig13_hparams", fig13.format_report(data))

    for sweep_name, per_dataset in data["sweeps"].items():
        for ds, points in per_dataset.items():
            scores = np.array([p["score"] for p in points])
            assert scores.max() - scores.min() < 0.2, (
                f"{sweep_name} unstable on {ds}: {scores}"
            )
