"""Serving-layer throughput — compiled vs interpreted plans, server rows/sec.

The ROADMAP's north star is serving heavy inference traffic from the
transformation records a search produces. Two numbers matter on that path:

1. **Compiled vs interpreted apply.** ``TransformationPlan.apply`` is a
   memoized recursive interpreter keyed by feature id; searches routinely
   produce *structurally identical* derivations under distinct ids (the
   feature space only dedups against the live set), which the interpreter
   recomputes per id but the compiler's common-subexpression elimination
   evaluates once. This benchmark times both on a wide plan whose live
   features share duplicated stems — the shape pruning-and-regrowing
   searches leave behind — and verifies the outputs are byte-identical.
2. **Server rows/sec.** End-to-end in-process serving throughput through
   the micro-batcher (request → batched compiled apply → response), the
   number a capacity plan would start from.

Timing notes: like the oracle-throughput bench, the ratio is best-of-two
rounds per side, the report is saved before the floor is asserted, and one
retry guards against background-process noise; the floor sits well below
the typically-measured ratio because CI shares cores.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.sequence import FeatureNode, TransformationPlan
from repro.serve import PipelineArtifact, PipelineService, compile_plan

ROUNDS = 2


def _wide_shared_plan(n_inputs: int = 6, width: int = 24) -> TransformationPlan:
    """``width`` live features, each built on a duplicated copy (distinct
    fids, identical structure) of the same 5-op stem plus two unique ops —
    per-id memoization recomputes every stem; CSE folds them to one."""
    nodes: dict[int, FeatureNode] = {
        j: FeatureNode(j, None, (), j) for j in range(n_inputs)
    }
    fid = n_inputs
    live: list[int] = []

    def emit(op: str, children: tuple[int, ...]) -> int:
        nonlocal fid
        nodes[fid] = FeatureNode(fid, op, children)
        fid += 1
        return fid - 1

    binary_pool = ("divide", "add", "subtract", "multiply")
    unary_pool = ("square", "sqrt", "log", "tanh", "sigmoid")
    for w in range(width):
        stem = emit("add", (0, 1))
        stem = emit("log", (stem,))
        stem = emit("sqrt", (stem,))
        stem = emit("multiply", (stem, 2))
        stem = emit("tanh", (stem,))
        # (binary op, column, unary op) has period lcm(4,3,5)=60 > width,
        # so every live feature is a distinct computation; only the stems
        # are duplicates.
        head = emit(binary_pool[w % 4], (stem, 3 + w % (n_inputs - 3)))
        live.append(emit(unary_pool[w % 5], (head,)))
    return TransformationPlan(
        nodes=nodes,
        live_ids=live,
        n_input_columns=n_inputs,
        feature_names=[f"f{j + 1}" for j in range(n_inputs)],
    )


def _best_of(fn, rounds: int = ROUNDS) -> tuple[float, np.ndarray]:
    best, out = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
        out = result
    return best, out


@pytest.mark.serial
def test_serve_throughput(profile, save_report):
    # The plan shape stays representative in every profile; smoke only
    # shrinks the row count to bound CI time.
    n_rows = 6000 if profile.name == "smoke" else 40000
    plan = _wide_shared_plan()
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n_rows, plan.n_input_columns))
    compiled = compile_plan(plan)

    def measure_and_report() -> float:
        interp_t, interp_out = _best_of(lambda: plan.apply(X))
        compiled_t, compiled_out = _best_of(lambda: compiled.apply(X))
        np.testing.assert_array_equal(compiled_out, interp_out, strict=True)
        chunked_t, chunked_out = _best_of(lambda: compiled.apply(X, chunk_size=1024))
        np.testing.assert_array_equal(chunked_out, interp_out, strict=True)
        speedup = interp_t / compiled_t

        # Server throughput: micro-batched transform requests, in-process.
        artifact = PipelineArtifact(plan, "classification")
        service = PipelineService(artifact, max_wait_ms=0.0)
        try:
            request_rows = 256
            n_requests = max(4, n_rows // request_rows)
            start = time.perf_counter()
            for i in range(n_requests):
                lo = (i * request_rows) % (n_rows - request_rows)
                service.transform(X[lo : lo + request_rows])
            served_rows = n_requests * request_rows
            server_t = time.perf_counter() - start
        finally:
            service.close()

        lines = [
            "Serve throughput — compiled vs interpreted plan apply, server rows/sec",
            f"plan: {compiled.n_nodes} nodes -> {len(compiled.instructions)} instructions "
            f"(CSE merged {compiled.n_merged}), {compiled.n_features} live features",
            f"matrix: {n_rows} x {plan.n_input_columns} (best of {ROUNDS} rounds)",
            f"{'mode':22s} {'seconds':>9s}",
            f"{'interpreted apply':22s} {interp_t:9.4f}",
            f"{'compiled apply':22s} {compiled_t:9.4f}",
            f"{'compiled chunked(1024)':22s} {chunked_t:9.4f}",
            f"speedup: {speedup:.2f}x  (outputs byte-identical: True)",
            f"server : {served_rows} rows in {server_t:.3f}s over {n_requests} requests "
            f"-> {served_rows / server_t:,.0f} rows/sec (in-process micro-batcher)",
        ]
        save_report("serve_throughput", "\n".join(lines))
        return speedup

    # Report first, assert after (fig10 shape); one retry for timing noise.
    speedup = measure_and_report()
    if speedup < 1.3:
        speedup = measure_and_report()
    assert speedup >= 1.3, f"compiled plan too slow: {speedup:.2f}x vs interpreter"
