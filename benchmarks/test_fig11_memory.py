"""Fig 11 bench — predictor memory vs sequence length and the memory/time trade-off.

Paper shape to verify: the recurrent predictor's memory grows *linearly*
(slowly) with sequence length — parameters constant, activations linear —
and a sub-megabyte predictor buys a measurable evaluation-time reduction.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig11


@pytest.mark.serial
def test_fig11_memory(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: fig11.run(profile, seed=0),
        rounds=1,
        iterations=1,
    )
    save_report("fig11_memory", fig11.format_report(data))

    curve = data["memory_curve"]
    params = [p["parameter_bytes"] for p in curve]
    activations = [p["activation_bytes"] for p in curve]
    # Parameters are sequence-length independent; activations grow linearly.
    assert len(set(params)) == 1
    ratios = [b / a for a, b in zip(activations, activations[1:])]
    lengths = [p["seq_len"] for p in curve]
    expected = [b / a for a, b in zip(lengths, lengths[1:])]
    for got, want in zip(ratios, expected):
        assert got == want  # exactly linear for the LSTM encoder
    # The trade-off saves evaluation time.
    assert data["tradeoff"]["time_saved"] > 0
