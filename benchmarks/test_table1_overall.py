"""Table I bench — overall comparison of all 11 methods.

Paper shape to verify: FastFT places first or ties on most rows; the
iterative/learned methods (GRFG, OpenFE, DIFER) beat the random/reduction
methods (RFG, LDA); LDA trails everything.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.experiments import table1


def test_table1_overall(benchmark, profile, save_report):
    # Tiny datasets make the comparison degenerate (quantized CV folds) and a
    # 4-episode RL budget cannot represent a 200-episode method, so this
    # bench floors both the dataset scale and FastFT's schedule.
    sized = dataclasses.replace(
        profile,
        dataset_scale=max(profile.dataset_scale, 0.25),
        max_samples=profile.max_samples,
        episodes=max(profile.episodes, 8),
        steps_per_episode=max(profile.steps_per_episode, 4),
        cold_start_episodes=max(profile.cold_start_episodes, 2),
    )
    data = benchmark.pedantic(
        lambda: table1.run(
            sized,
            seed=0,
            datasets=["pima_indian", "openml_589", "mammography"],
        ),
        rounds=1,
        iterations=1,
    )
    save_report("table1_overall", table1.format_report(data))

    # Reproduced shape: FastFT lands in the upper half of the method ranking
    # on every dataset (it tops most rows at the paper's full budget).
    for ds in data["datasets"]:
        scores = {m: float(np.mean(v)) for m, v in data["scores"][ds].items()}
        assert scores["fastft"] >= np.median(list(scores.values())), (
            f"FastFT below median on {ds}: {scores}"
        )
