"""Oracle-throughput bench — presorted vs naive split engine.

Table II attributes the bulk of FastFT's search wall time to the
downstream oracle A(F, y): cross-validated random forests over every
triggered candidate feature set. This benchmark times
:meth:`DownstreamEvaluator.evaluate` on a representative mid-search
matrix (~2000 x 60, the paper's medium datasets after a few
transformation steps) under both split engines, verifies the scores are
*identical* (the presort engine's bit-identity contract), and records
the speedup so future PRs can track the trajectory.

Timing notes: the ratio is taken from the best of two rounds per engine
to damp CPU-contention noise, and the assertion floor is deliberately
below the typically-measured speedup (~2x on a single-core runner for
the engine alone; fold-parallel CV adds more on multi-core hardware)
because this box shares cores with the rest of the suite.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.ml.evaluation import DownstreamEvaluator, default_model_for_task

ROUNDS = 2


def _representative_matrix(seed: int = 0, n: int = 2000, d: int = 60):
    """A mid-search candidate set: informative columns plus the tie
    structures transformation chains produce (rounded and duplicated
    features)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[:, d // 3] = np.round(X[:, d // 3])
    X[:, d // 2] = X[:, d // 2 - 1]
    y = (X @ rng.normal(size=d) + 0.25 * rng.normal(size=n) > 0).astype(int)
    return X, y


def _time_engine(engine: str, X, y, n_estimators: int, n_splits: int):
    best, score = float("inf"), None
    for _ in range(ROUNDS):
        evaluator = DownstreamEvaluator(
            "classification",
            model=default_model_for_task(
                "classification", n_estimators=n_estimators, seed=0, split_engine=engine
            ),
            n_splits=n_splits,
            seed=0,
            engine=engine,
        )
        start = time.perf_counter()
        s = evaluator.evaluate(X, y)
        best = min(best, time.perf_counter() - start)
        if score is None:
            score = s
        else:
            assert s == score  # deterministic across rounds
    return best, score


@pytest.mark.serial
def test_oracle_throughput(profile, save_report):
    # The matrix stays at the representative size in every profile; the
    # smoke profile only shrinks the forest/CV budget to bound CI time.
    n_estimators = profile.rf_estimators if profile.name != "smoke" else 6
    n_splits = profile.cv_splits if profile.name != "smoke" else 3
    X, y = _representative_matrix()

    def measure_and_report() -> float:
        naive_t, naive_score = _time_engine("naive", X, y, n_estimators, n_splits)
        presort_t, presort_score = _time_engine("presort", X, y, n_estimators, n_splits)
        speedup = naive_t / presort_t

        lines = [
            "Oracle throughput — DownstreamEvaluator.evaluate, naive vs presort split engine",
            f"matrix: {X.shape[0]} x {X.shape[1]} (binary classification, "
            f"{n_estimators}-tree forest, {n_splits}-fold CV, best of {ROUNDS} rounds)",
            f"{'engine':10s} {'seconds':>9s} {'score':>10s}",
            f"{'naive':10s} {naive_t:9.3f} {naive_score:10.6f}",
            f"{'presort':10s} {presort_t:9.3f} {presort_score:10.6f}",
            f"speedup: {speedup:.2f}x  (scores identical: {naive_score == presort_score})",
        ]
        save_report("oracle_throughput", "\n".join(lines))
        # Bit-identity is the hard guarantee: same oracle scores either way.
        assert presort_score == naive_score
        return speedup

    # Like fig10, this is a wall-time ratio: the report is saved before the
    # floor is asserted, and one retry on a fresh pair of timings guards
    # against a background process landing on one engine's rounds. The
    # floor is set for a noisy shared-CPU runner; the report records the
    # actual measured ratio for tracking.
    speedup = measure_and_report()
    if speedup < 1.4:
        speedup = measure_and_report()
    assert speedup >= 1.4, f"presort engine too slow: {speedup:.2f}x vs naive"
