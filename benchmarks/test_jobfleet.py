"""Job-fleet bench — the crash-safe jobfile backend vs the in-process pool.

Three arms over the same multi-seed sweep:

1. **pool** — ``api.sweep(..., backend="pool")``, the reference;
2. **fleet** — ``backend="jobfile"``: file-backed jobs, leases, durable
   oracle cache;
3. **fleet+chaos** — the same fleet with a worker SIGKILLed mid-episode on
   its first attempt, exercising lease release, retry, checkpoint resume,
   and the durable cache.

The hard guarantee, asserted on every run regardless of core count, is
*bit-identity*: all three arms must produce field-for-field identical
per-seed results. The wall-clock floor (fleet overhead vs pool) is only
asserted on runners with >= 4 cores; below that the report records an
explicit ``skipped: n_cores=N`` line instead, because process spawn /
fsync overhead dominates when workers can't actually run in parallel.

Timing notes: wall-time ratio, contention-sensitive — ``@pytest.mark.serial``.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np
import pytest

from repro import api
from repro.jobs import ChaosSpec, run_jobfile_sweep
from repro.obs import MetricsRegistry

N_SEEDS = 4


def _problem(n: int = 150, d: int = 5):
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] > 0).astype(int)
    return X, y


def _config(profile) -> "api.FastFTConfig":
    from repro.core.config import FastFTConfig

    smoke = profile.name == "smoke"
    return FastFTConfig(
        episodes=3 if smoke else max(4, profile.episodes),
        steps_per_episode=3 if smoke else max(4, profile.steps_per_episode),
        cold_start_episodes=1,
        retrain_every_episodes=1,
        component_epochs=2,
        trigger_warmup=2,
        cv_splits=3 if smoke else profile.cv_splits,
        rf_estimators=6 if smoke else profile.rf_estimators,
        max_clusters=3,
        mi_max_rows=64,
    )


def _digests(sweep) -> dict[int, str]:
    return {
        s: sweep[s].plan.to_json()
        + repr(sweep[s].best_score)
        + repr(sweep[s].base_score)
        for s in sweep.seeds
    }


@pytest.mark.serial
def test_jobfleet_vs_pool(profile, save_report):
    cpu = os.cpu_count() or 1
    n_workers = min(4, cpu)
    seeds = list(range(N_SEEDS))
    X, y = _problem()
    cfg = _config(profile)

    start = time.perf_counter()
    pool = api.sweep(X, y, seeds=seeds, config=cfg, n_jobs=n_workers)
    pool_t = time.perf_counter() - start

    start = time.perf_counter()
    fleet = api.sweep(
        X, y, seeds=seeds, config=cfg, n_jobs=n_workers, backend="jobfile"
    )
    fleet_t = time.perf_counter() - start

    # Chaos arm: SIGKILL the first seed's worker mid-episode on attempt 0;
    # the retry resumes from its checkpoint and must converge identically.
    def chaos(seed, attempt):
        if seed == seeds[0] and attempt == 0:
            return ChaosSpec(kill_at_global_step=2)
        return None

    metrics = MetricsRegistry()
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="jobfleet-bench-") as d:
        chaotic = run_jobfile_sweep(
            X, y, seeds=seeds, config=cfg, n_workers=n_workers,
            sweep_dir=d, chaos_factory=chaos, metrics=metrics,
        )
    chaos_t = time.perf_counter() - start
    retries = metrics.counter("jobs_retries_total").value

    identical = _digests(pool) == _digests(fleet) == _digests(chaotic)
    overhead = fleet_t / pool_t

    if cpu >= 4:
        overhead_line = f"fleet overhead: {overhead:.2f}x pool wall-clock"
    else:
        overhead_line = (
            f"fleet overhead: skipped: n_cores={cpu} (spawn/fsync overhead "
            f"dominates without real parallelism; measured {overhead:.2f}x, "
            "identity still asserted)"
        )
    lines = [
        "Job fleet — crash-safe jobfile backend vs in-process pool",
        f"problem: {X.shape[0]} x {X.shape[1]} (binary classification), "
        f"{len(seeds)} seeds, {n_workers} workers on {cpu} core(s)",
        f"{'arm':14s} {'seconds':>9s} {'mean':>9s} {'std':>9s}",
        f"{'pool':14s} {pool_t:9.3f} {pool.score_mean:9.4f} {pool.score_std:9.4f}",
        f"{'fleet':14s} {fleet_t:9.3f} {fleet.score_mean:9.4f} {fleet.score_std:9.4f}",
        f"{'fleet+chaos':14s} {chaos_t:9.3f} {chaotic.score_mean:9.4f} "
        f"{chaotic.score_std:9.4f}",
        f"chaos: 1 worker SIGKILLed mid-episode, {retries:.0f} retry(ies), "
        "resumed from checkpoint",
        f"bit-identical across all arms: {identical}",
        overhead_line,
    ]
    save_report("jobfleet", "\n".join(lines))

    # The hard guarantee, regardless of machine: all three arms agree
    # field-for-field. This is the fleet's entire reason to exist.
    assert identical
    assert retries >= 1, "the chaos arm never actually killed a worker"

    if cpu < 4:
        pytest.skip(
            "fleet-overhead floor needs >= 4 cores (identity checks above "
            f"ran; skipped: n_cores={cpu})"
        )
    # The fleet pays process spawns, fsyncs and lease polling; with real
    # parallelism that overhead must stay within 2.5x of the pool.
    assert overhead <= 2.5, (
        f"jobfile backend too slow: {overhead:.2f}x the pool with "
        f"{n_workers} workers on {cpu} cores"
    )
