"""Fig 15 bench — case study: traceable features at reward peaks (Cardiovascular).

Paper shape to verify: reward peaks coincide with newly generated, fully
traceable formulas over the named medical features, and the run improves on
the base score.
"""

from __future__ import annotations

from repro.experiments import fig15


def test_fig15_case_study(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: fig15.run(profile, seed=0, top_k=5),
        rounds=1,
        iterations=1,
    )
    save_report("fig15_case_study", fig15.format_report(data))

    assert data["best_score"] >= data["base_score"]
    named = ("Age", "Weight", "Height", "SBP", "DBP", "Active", "BMI",
             "Cholesterol", "Glucose", "Smoke", "Alcohol", "Pulse")
    peak_exprs = [e for peak in data["peaks"] for e in peak["expressions"]]
    assert peak_exprs, "Reward peaks should carry generated features"
    assert any(any(n in e for n in named) for e in peak_exprs)
