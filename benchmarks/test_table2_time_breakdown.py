"""Table II bench — runtime breakdown, FastFT vs FastFT−PP.

Paper shape to verify: the Evaluation bucket dominates the −PP arm and
shrinks substantially once the Performance Predictor takes over.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2


@pytest.mark.serial
def test_table2_time_breakdown(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: table2.run(
            sized_profile, seed=0, datasets=["wine_quality_white", "cardiovascular"]
        ),
        rounds=1,
        iterations=1,
    )
    save_report("table2_time_breakdown", table2.format_report(data))

    for ds in data["datasets"]:
        row = data["rows"][ds]
        # The deterministic mechanism: the predictor replaces downstream calls.
        assert row["fastft"]["evals"] < row["fastft_no_pp"]["evals"]
        # Evaluation seconds track the call reduction, but per-call cost
        # varies with the feature-set size at trigger time and smoke-scale
        # evaluations are ~0.1 s each, so allow wide timer head-room; the
        # paper-shape seconds gap is asserted at default/full profiles where
        # evaluation cost dominates.
        assert row["fastft"]["evaluation"] < row["fastft_no_pp"]["evaluation"] * 1.35
        # And evaluation dominates the no-PP arm (the paper's premise).
        no_pp = row["fastft_no_pp"]
        assert no_pp["evaluation"] > no_pp["estimation"]
