"""Sweep-throughput bench — serial vs process-pool multi-seed search.

The paper's reporting protocol repeats every seeded search and averages;
``repro.parallel`` exists so that protocol stops costing N× wall clock on
one core. This benchmark runs the same 4-seed sweep serially and through
``SearchOrchestrator`` workers, verifies the per-seed results are
*bit-identical* (plan JSON and score reprs — the determinism contract that
makes the parallel path trustworthy), and records the wall-clock ratio.

Timing notes: like fig10, this is a wall-time ratio and therefore
contention-sensitive (``@pytest.mark.serial``; see the fig10 caveat in the
repo notes — never time it while other CPU-heavy work runs). On a 1-core
runner a process pool cannot beat serial execution, so the speedup
assertion is skipped there after the identity checks and the report still
record what was measured; the floor scales with the cores available
(>= 1.5x needs the 4 workers to actually have ~4 cores).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import api

N_SEEDS = 4


def _sweep_problem(n: int = 150, d: int = 5):
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] > 0).astype(int)
    return X, y


def _sweep_config(profile) -> dict:
    # The smoke profile bounds CI time; larger profiles lengthen the
    # per-seed search so the pool's fork/manager overhead amortizes.
    smoke = profile.name == "smoke"
    return dict(
        episodes=3 if smoke else max(4, profile.episodes),
        steps_per_episode=3 if smoke else max(4, profile.steps_per_episode),
        cold_start_episodes=1,
        retrain_every_episodes=1,
        component_epochs=2,
        trigger_warmup=2,
        cv_splits=3 if smoke else profile.cv_splits,
        rf_estimators=6 if smoke else profile.rf_estimators,
        max_clusters=3,
        mi_max_rows=64,
    )


def _digests(sweep: "api.SweepResult") -> dict[int, str]:
    return {
        s: sweep[s].plan.to_json() + repr(sweep[s].best_score) + repr(sweep[s].base_score)
        for s in sweep.seeds
    }


@pytest.mark.serial
def test_sweep_throughput(profile, save_report):
    cpu = os.cpu_count() or 1
    n_workers = min(4, cpu)
    seeds = list(range(N_SEEDS))
    X, y = _sweep_problem()
    cfg = _sweep_config(profile)

    def timed_sweep(n_jobs: int):
        start = time.perf_counter()
        sweep = api.sweep(X, y, "classification", seeds=seeds, n_jobs=n_jobs, **cfg)
        return sweep, time.perf_counter() - start

    def measure_and_report() -> float:
        serial, serial_t = timed_sweep(1)
        parallel, parallel_t = timed_sweep(n_workers)
        speedup = serial_t / parallel_t
        identical = _digests(serial) == _digests(parallel)

        if cpu < 2:
            # A sub-1x "speedup" on one core reads like a regression when
            # it is just physics; say explicitly that the ratio is skipped.
            speedup_line = (
                f"speedup: skipped: n_cores={cpu} (a process pool cannot beat "
                f"serial on one core; per-seed results bit-identical: {identical})"
            )
        else:
            speedup_line = (
                f"speedup: {speedup:.2f}x  (per-seed results bit-identical: {identical})"
            )
        lines = [
            "Sweep throughput — api.sweep, serial vs SearchOrchestrator process pool",
            f"problem: {X.shape[0]} x {X.shape[1]} (binary classification), "
            f"{len(seeds)} seeds, {n_workers} workers on {cpu} core(s)",
            f"{'mode':10s} {'seconds':>9s} {'mean':>9s} {'std':>9s}",
            f"{'serial':10s} {serial_t:9.3f} {serial.score_mean:9.4f} {serial.score_std:9.4f}",
            f"{'parallel':10s} {parallel_t:9.3f} {parallel.score_mean:9.4f} "
            f"{parallel.score_std:9.4f}",
            speedup_line,
        ]
        save_report("sweep_throughput", "\n".join(lines))
        # Bit-identity is the hard guarantee regardless of core count:
        # plan JSON and score reprs match seed-for-seed.
        assert identical
        return speedup

    speedup = measure_and_report()
    if cpu < 2:
        pytest.skip(
            "parallel sweep speedup needs >= 2 cores (timing ratios are "
            "meaningless on a 1-core runner; identity checks above ran)"
        )
    # The report is saved before the floor is asserted; one retry on fresh
    # timings guards against background load landing on one arm (the
    # fig10-style flake mode).
    floor = 1.5 if cpu >= 4 else 1.05
    if speedup < floor:
        speedup = measure_and_report()
    assert speedup >= floor, (
        f"parallel sweep too slow: {speedup:.2f}x vs serial with "
        f"{n_workers} workers on {cpu} cores"
    )
