"""Serving front-end under open-loop load: saturation, shedding, hot swap.

Three phases against the asyncio :class:`InferenceServer`, each on a fresh
server so its PR 8 histograms cover exactly that phase:

1. **Saturation probe.** A burst of concurrent ``/predict`` requests (every
   arrival at t=0 — open-loop in the limit) measures rows/sec at
   saturation; p50/p99 request latency come from the server's own
   ``serve_request_seconds`` histogram via ``GET /healthz`` — the
   benchmark does not re-instrument.
2. **Overload + load shedding.** A model with a fixed per-batch cost makes
   capacity machine-independent (50 batches/sec); traffic is offered
   open-loop at 3x that with a 16-deep admission queue. The server must
   shed the excess with 429 + ``Retry-After`` (counted in ``/metrics``)
   while the latency of *admitted* requests stays bounded by the queue,
   instead of growing with the backlog.
3. **Hot swap under fire.** Sustained open-loop traffic against a
   registry-backed server while a new version is published, promoted and
   ``POST /admin/reload``-ed mid-stream. Zero dropped requests, and every
   response's predictions must match its reported ``artifact_version`` —
   versions never mix inside one response.

The report is saved (with the run-metadata header) before any floor is
asserted, so CI uploads it even when an assertion fails.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
import time

import numpy as np
import pytest

from repro import api
from repro.core.sequence import FeatureNode, TransformationPlan
from repro.serve import ArtifactRegistry, InferenceServer, PipelineArtifact


def _wide_plan(n_inputs: int = 6, width: int = 12) -> TransformationPlan:
    """A compact wide plan: real vectorized compute, no search needed."""
    nodes: dict[int, FeatureNode] = {
        j: FeatureNode(j, None, (), j) for j in range(n_inputs)
    }
    fid = n_inputs
    live: list[int] = []

    def emit(op: str, children: tuple[int, ...]) -> int:
        nonlocal fid
        nodes[fid] = FeatureNode(fid, op, children)
        fid += 1
        return fid - 1

    binary_pool = ("divide", "add", "subtract", "multiply")
    unary_pool = ("square", "sqrt", "log", "tanh", "sigmoid")
    for w in range(width):
        stem = emit("add", (0, 1))
        stem = emit("log", (stem,))
        stem = emit("multiply", (stem, 2))
        head = emit(binary_pool[w % 4], (stem, 3 + w % (n_inputs - 3)))
        live.append(emit(unary_pool[w % 5], (head,)))
    return TransformationPlan(
        nodes=nodes,
        live_ids=live,
        n_input_columns=n_inputs,
        feature_names=[f"f{j + 1}" for j in range(n_inputs)],
    )


class ConstModel:
    """Predicts a constant — the value identifies the artifact version."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def predict(self, features) -> np.ndarray:
        return np.full(len(features), self.value)


class ThrottleModel:
    """Fixed per-batch cost: overload capacity independent of the machine."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def predict(self, features) -> np.ndarray:
        time.sleep(self.delay_s)
        return np.zeros(len(features))


# -- open-loop HTTP client ------------------------------------------------------


async def _request(host, port, method, path, body=b"", timeout=30.0):
    """One request on its own connection; returns (status, headers, body)."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Connection: close\r\nContent-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            raw = await reader.read(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
        head_blob, _, payload = raw.partition(b"\r\n\r\n")
        status = int(head_blob.split(b" ", 2)[1])
        return status, head_blob.decode("latin-1"), payload

    try:
        return await asyncio.wait_for(go(), timeout=timeout)
    except Exception as exc:
        return None, type(exc).__name__, b""


async def _open_loop(host, port, path, body, rate_hz, count):
    """Fire ``count`` requests at fixed arrival times, completions ignored
    (open-loop: offered load does not slow down when the server does)."""
    interval = 0.0 if rate_hz is None else 1.0 / rate_hz

    async def fire(delay):
        await asyncio.sleep(delay)
        return await _request(host, port, "POST", path, body)

    tasks = [asyncio.create_task(fire(i * interval)) for i in range(count)]
    return await asyncio.gather(*tasks)


def _predict_payload(rng, n_rows, n_cols) -> bytes:
    rows = rng.normal(size=(n_rows, n_cols)).tolist()
    return json.dumps({"rows": rows}).encode()


def _metric_value(metrics_text: str, name: str) -> float:
    match = re.search(rf"^{re.escape(name)} ([0-9.e+-]+)$", metrics_text, re.M)
    return float(match.group(1)) if match else 0.0


# -- phases ---------------------------------------------------------------------


def _phase_saturation(plan, rng, profile) -> dict:
    n_requests = 24 if profile.name == "smoke" else 64
    rows_per_request = 2048
    artifact = PipelineArtifact(plan, "classification", model=ConstModel(0.0))
    body = _predict_payload(rng, rows_per_request, plan.n_input_columns)
    with InferenceServer(artifact, port=0, max_wait_ms=1.0) as server:
        host, port = server.address
        start = time.perf_counter()
        results = asyncio.run(
            _open_loop(host, port, "/predict", body, rate_hz=None, count=n_requests)
        )
        wall = time.perf_counter() - start
        health = json.loads(
            asyncio.run(_request(host, port, "GET", "/healthz"))[2]
        )
    batcher = health["batcher"]
    statuses = [status for status, _, _ in results]
    return {
        "requests": n_requests,
        "rows_per_request": rows_per_request,
        "ok": sum(1 for s in statuses if s == 200),
        "errors": sum(1 for s in statuses if s != 200),
        "wall_s": wall,
        "rows_per_sec": batcher["rows"] / wall,
        "p50_s": batcher["request_latency_p50"],
        "p99_s": batcher["request_latency_p99"],
        "batches": batcher["batches"],
        "batch_requests_p50": batcher["batch_requests_p50"],
    }


def _phase_overload(plan, rng, profile) -> dict:
    batch_delay_s = 0.02  # capacity: 50 batches/sec, one request per batch
    rows_per_request = 256
    max_queue = 16
    offered_hz = 150.0  # 3x capacity
    duration_s = 1.2 if profile.name == "smoke" else 3.0
    count = int(offered_hz * duration_s)
    artifact = PipelineArtifact(
        plan, "classification", model=ThrottleModel(batch_delay_s)
    )
    body = _predict_payload(rng, rows_per_request, plan.n_input_columns)
    server = InferenceServer(
        artifact,
        port=0,
        max_wait_ms=0.0,
        max_batch_rows=rows_per_request,  # one request per batch
        max_queue=max_queue,
    )
    with server:
        host, port = server.address
        results = asyncio.run(
            _open_loop(host, port, "/predict", body, rate_hz=offered_hz, count=count)
        )
        metrics = asyncio.run(_request(host, port, "GET", "/metrics"))[2].decode()
        health = json.loads(asyncio.run(_request(host, port, "GET", "/healthz"))[2])
    statuses = [status for status, _, _ in results]
    retry_after = None
    for status, head, _ in results:
        if status == 429:
            match = re.search(r"^Retry-After: (\d+)$", head, re.M)
            retry_after = int(match.group(1)) if match else None
            break
    return {
        "offered_hz": offered_hz,
        "capacity_hz": 1.0 / batch_delay_s,
        "count": count,
        "max_queue": max_queue,
        "ok": sum(1 for s in statuses if s == 200),
        "shed_429": sum(1 for s in statuses if s == 429),
        "errors": sum(1 for s in statuses if s not in (200, 429)),
        "retry_after": retry_after,
        "shed_metric": _metric_value(metrics, "serve_requests_shed_total"),
        "p99_s": health["batcher"]["request_latency_p99"],
    }


def _phase_hot_swap(plan, rng, profile, tmp_path) -> dict:
    offered_hz = 80.0
    duration_s = 1.2 if profile.name == "smoke" else 3.0
    count = int(offered_hz * duration_s)
    rows_per_request = 64
    registry = ArtifactRegistry(tmp_path / "registry")
    registry.publish(
        PipelineArtifact(plan, "classification", model=ConstModel(0.0)),
        "bench", tag="prod",
    )
    body = _predict_payload(rng, rows_per_request, plan.n_input_columns)
    server = api.serve_from_registry(
        registry, "bench", tag="prod", reload=True, port=0, max_wait_ms=1.0
    )
    swap_info: dict = {}

    async def drive(host, port):
        async def swap():
            await asyncio.sleep(duration_s * 0.4)
            loop = asyncio.get_running_loop()

            def publish():
                registry.publish(
                    PipelineArtifact(plan, "classification", model=ConstModel(1.0)),
                    "bench", tag="prod",
                )

            await loop.run_in_executor(None, publish)
            status, _, payload = await _request(
                host, port, "POST", "/admin/reload", b"{}"
            )
            swap_info["status"] = status
            swap_info["response"] = json.loads(payload) if status == 200 else None

        results, _ = await asyncio.gather(
            _open_loop(host, port, "/predict", body, rate_hz=offered_hz, count=count),
            swap(),
        )
        return results

    with server:
        host, port = server.address
        results = asyncio.run(drive(host, port))

    ok = mixed = mislabeled = 0
    errors: list = []
    versions_seen: set = set()
    expected = {0.0: "v0001", 1.0: "v0002"}
    for status, head, payload in results:
        if status != 200:
            errors.append((status, head))
            continue
        ok += 1
        out = json.loads(payload)
        values = set(out["predictions"])
        if len(values) != 1:
            mixed += 1
            continue
        version = out["artifact_version"]
        versions_seen.add(version)
        if expected[values.pop()] != version:
            mislabeled += 1
    return {
        "offered_hz": offered_hz,
        "count": count,
        "ok": ok,
        "errors": errors[:3],
        "n_errors": len(errors),
        "mixed": mixed,
        "mislabeled": mislabeled,
        "versions_seen": sorted(versions_seen),
        "swap": swap_info,
    }


@pytest.mark.serial
def test_serve_load(profile, save_report, tmp_path):
    plan = _wide_plan()
    rng = np.random.default_rng(7)

    sat = _phase_saturation(plan, rng, profile)
    over = _phase_overload(plan, rng, profile)
    swap = _phase_hot_swap(plan, rng, profile, tmp_path)

    lines = [
        "Serve load — open-loop traffic against the asyncio front end",
        f"plan: {plan.n_features} live features over {plan.n_input_columns} inputs; "
        f"profile: {profile.name}",
        "latency quantiles read from the server's serve_request_seconds histogram",
        "",
        "[saturation] burst of concurrent /predict requests",
        f"  requests   : {sat['requests']} x {sat['rows_per_request']} rows "
        f"({sat['ok']} ok, {sat['errors']} errors) in {sat['wall_s']:.3f}s",
        f"  rows/sec   : {sat['rows_per_sec']:,.0f} at saturation "
        f"({sat['batches']} batches, p50 {sat['batch_requests_p50']:.0f} req/batch)",
        f"  latency    : p50 {sat['p50_s'] * 1e3:.1f} ms   p99 {sat['p99_s'] * 1e3:.1f} ms",
        "",
        "[overload] 3x capacity offered open-loop, bounded queue sheds",
        f"  offered    : {over['offered_hz']:.0f} req/s vs capacity "
        f"{over['capacity_hz']:.0f} req/s (fixed 20 ms/batch model), "
        f"max_queue={over['max_queue']}",
        f"  outcome    : {over['ok']} served, {over['shed_429']} shed with 429 "
        f"(Retry-After: {over['retry_after']}), {over['errors']} errors",
        f"  shed metric: serve_requests_shed_total={over['shed_metric']:.0f}",
        f"  latency    : admitted p99 {over['p99_s']:.3f}s "
        f"(bounded by the queue, not the backlog)",
        "",
        "[hot swap] publish+promote+reload mid-traffic (registry tag 'prod')",
        f"  requests   : {swap['count']} offered at {swap['offered_hz']:.0f} req/s -> "
        f"{swap['ok']} ok, {swap['n_errors']} dropped",
        f"  swap       : /admin/reload -> {swap['swap'].get('response')}",
        f"  versions   : {swap['versions_seen']} "
        f"(mixed-version responses: {swap['mixed']}, mislabeled: {swap['mislabeled']})",
    ]
    save_report("serve_load", "\n".join(lines))

    # Saturation: every burst request answered, histograms populated.
    assert sat["errors"] == 0
    assert sat["rows_per_sec"] > 0
    assert 0 < sat["p50_s"] <= sat["p99_s"]

    # Overload: the shed path engaged (client 429s match the server
    # counter) and admitted-request latency stayed queue-bounded instead
    # of growing with the backlog.
    assert over["shed_429"] > 0
    assert over["shed_metric"] == over["shed_429"]
    assert over["errors"] == 0
    assert over["retry_after"] is not None and over["retry_after"] >= 1
    assert over["p99_s"] < 2.5, f"latency collapsed under overload: {over['p99_s']:.2f}s"

    # Hot swap: zero dropped requests, versions never mixed or mislabeled,
    # and both versions actually served traffic.
    assert swap["n_errors"] == 0, f"dropped requests during swap: {swap['errors']}"
    assert swap["swap"].get("status") == 200
    assert swap["swap"]["response"]["swapped"] is True
    assert swap["mixed"] == 0 and swap["mislabeled"] == 0
    assert swap["versions_seen"] == ["v0001", "v0002"]
