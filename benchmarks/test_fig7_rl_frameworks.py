"""Fig 7 bench — Actor-Critic vs the DQN family.

Paper shape to verify: all five frameworks run inside the cascade and
Actor-Critic's final score is at or near the top.
"""

from __future__ import annotations

from repro.experiments import fig7


def test_fig7_rl_frameworks(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: fig7.run(
            sized_profile,
            seed=0,
            dataset_name="pima_indian",
            frameworks=["actor_critic", "dqn", "dueling_double_dqn"],
        ),
        rounds=1,
        iterations=1,
    )
    save_report("fig7_rl_frameworks", fig7.format_report(data))

    finals = data["finals"]
    assert finals["actor_critic"] >= max(finals.values()) - 0.1
    # Learning curves are monotone non-decreasing (best-so-far semantics).
    for curve in data["curves"].values():
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
