"""Tracing-overhead bench — the ≤5 % budget of the observability layer.

Tracing is only trustworthy if turning it on does not change what it
measures. This benchmark runs the same seeded search twice with the
downstream oracle mocked out to a constant-time stub (wall time is pure
optimization + estimation — the worst case for tracing overhead, since a
real oracle would dwarf it), once bare and once under a
:class:`~repro.obs.TracingCallback` writing a full JSONL trace, then:

- asserts the two trajectories are **bit-identical** step for step (the
  per-PR goldens in ``tests/test_determinism_golden.py`` pin the same
  guarantee against the recorded digests);
- asserts traced steps/sec is within 5 % of untraced;
- writes the sample trace and its ``repro trace`` report next to the
  usual benchmark report, so CI uploads a real trace as an artifact.

Timing notes: wall-time ratio, contention-sensitive
(``@pytest.mark.serial``); the overhead floor is skipped on 1-core
runners and retried once on fresh timings, like the other ratio benches.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import FastFTConfig
from repro.core.session import SearchSession
from repro.obs import TracingCallback, load_trace, render_trace_report

# benchmarks/ is not a package: pytest puts this directory on sys.path,
# so the sibling bench's shared stub imports as a top-level module.
from test_search_throughput import _search_problem, _StubOracle

ROUNDS = 3
REPORT_DIR = Path(__file__).resolve().parent / "reports"
MAX_OVERHEAD = 0.05


def _obs_config(profile) -> FastFTConfig:
    smoke = profile.name == "smoke"
    return FastFTConfig(
        episodes=3,
        steps_per_episode=5 if smoke else 8,
        cold_start_episodes=1,
        retrain_every_episodes=0,
        component_epochs=2,
        trigger_warmup=2,
        max_clusters=4,
        seed=0,
    )


def _run_arm(profile, X, y, trace_path: str | None):
    best_t = float("inf")
    reference = last = None
    for _ in range(ROUNDS):
        callbacks = [TracingCallback(path=trace_path)] if trace_path else None
        session = SearchSession(
            X, y, "classification",
            config=_obs_config(profile),
            evaluator=_StubOracle(),
            callbacks=callbacks,
        )
        session.start()
        start = time.perf_counter()
        result = session.run()
        best_t = min(best_t, time.perf_counter() - start)
        if reference is None:
            reference = result
        else:
            assert result.plan.to_json() == reference.plan.to_json()
        last = result
    # reference carries the first round's trajectory; last matches the
    # surviving trace file's wall-clock accounting (each round rewrites it).
    return best_t, reference, last


@pytest.mark.serial
def test_obs_overhead(profile, save_report):
    cpu = os.cpu_count() or 1
    X, y = _search_problem()
    REPORT_DIR.mkdir(exist_ok=True)
    trace_path = REPORT_DIR / "obs_sample_trace.jsonl"

    def measure_and_report() -> float:
        bare_t, bare, _ = _run_arm(profile, X, y, None)
        traced_t, traced, traced_last = _run_arm(profile, X, y, str(trace_path))
        n_steps = len(bare.history)
        overhead = traced_t / bare_t - 1.0

        identical = (
            bare.plan.to_json() == traced.plan.to_json()
            and repr(bare.best_score) == repr(traced.best_score)
            and len(bare.history) == len(traced.history)
            and all(
                a.deterministic_dict() == b.deterministic_dict()
                for a, b in zip(bare.history, traced.history)
            )
        )

        # The recorded trace must reproduce the run's Table II breakdown
        # exactly (residual spans close the gap to result.time).
        trace = load_trace(str(trace_path))
        buckets = trace.bucket_totals()
        breakdown_exact = (
            abs(buckets["optimization"] - traced_last.time.optimization) < 1e-6
            and abs(buckets["estimation"] - traced_last.time.estimation) < 1e-6
            and abs(buckets["evaluation"] - traced_last.time.evaluation) < 1e-6
        )
        report_path = REPORT_DIR / "obs_sample_trace_report.txt"
        report_path.write_text(render_trace_report([str(trace_path)]))

        lines = [
            "Tracing overhead — steps/sec with TracingCallback on vs off, "
            "oracle mocked out",
            f"matrix: {X.shape[0]} x {X.shape[1]} (binary classification), "
            f"{n_steps} steps, best of {ROUNDS} rounds",
            f"{'tracing':12s} {'seconds':>9s} {'steps/sec':>10s}",
            f"{'off':12s} {bare_t:9.3f} {n_steps / bare_t:10.2f}",
            f"{'on':12s} {traced_t:9.3f} {n_steps / traced_t:10.2f}",
            f"overhead: {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)",
            f"trajectories bit-identical: {identical}",
            f"trace spans: {len(trace.spans)}, Table II breakdown exact: "
            f"{breakdown_exact}",
            f"sample trace: {trace_path.name}, report: {report_path.name}",
        ]
        save_report("obs_overhead", "\n".join(lines))
        # The hard guarantees: tracing never perturbs the trajectory, and
        # the trace reproduces the run's time accounting.
        assert identical
        assert breakdown_exact
        return overhead

    overhead = measure_and_report()
    if cpu < 2:
        pytest.skip(
            "tracing-overhead floor needs >= 2 cores (1-core wall-time "
            "ratios are dominated by the suite's own background load; the "
            "identity checks above ran and the report records the ratio)"
        )
    # Report saved before the ceiling is asserted; one retry on fresh
    # timings guards against background load landing on one arm.
    if overhead > MAX_OVERHEAD:
        overhead = measure_and_report()
    assert overhead <= MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.2f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% budget"
    )
