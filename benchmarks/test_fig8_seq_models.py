"""Fig 8 bench — LSTM vs RNN vs Transformer for the evaluation components.

Paper shape to verify: comparable scores across encoders (the paper's core
finding — transformation sequences don't need sophisticated sequence models).

Substrate caveat (documented in EXPERIMENTS.md): the paper also reports the
LSTM as *fastest*, which reflects cuDNN-fused recurrent kernels on GPUs. Our
numpy substrate unrolls the LSTM in a Python loop while the attention block
is a handful of vectorized matmuls, so the absolute time ordering inverts;
only the score-comparability claim is asserted.
"""

from __future__ import annotations

from repro.experiments import fig8


def test_fig8_seq_models(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: fig8.run(sized_profile, seed=0, dataset_name="pima_indian"),
        rounds=1,
        iterations=1,
    )
    save_report("fig8_seq_models", fig8.format_report(data))

    rows = data["rows"]
    scores = [rows[m]["score"] for m in data["seq_models"]]
    # Comparable performance across encoders (the paper's point).
    assert max(scores) - min(scores) < 0.15
    # All arms record a positive estimation-time bucket.
    assert all(rows[m]["estimation_time"] > 0 for m in data["seq_models"])
