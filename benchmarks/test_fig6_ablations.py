"""Fig 6 bench — component ablations (−PP, −RCT, −NE).

Paper shape to verify: each ablation arm completes and stays in the
neighbourhood of full FastFT (the paper reports minor drops per component);
the full model is best or near-best on average.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig6


def test_fig6_ablations(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: fig6.run(sized_profile, seed=0, datasets=["wine_quality_red", "openml_589"]),
        rounds=1,
        iterations=1,
    )
    save_report("fig6_ablations", fig6.format_report(data))

    means = {
        arm: float(np.mean([data["scores"][d][arm] for d in data["datasets"]]))
        for arm in fig6.ARMS
    }
    # Full FastFT is within noise of the best ablation arm.
    assert means["FastFT"] >= max(means.values()) - 0.1


def test_fig6_extra_groupwise_ablation(benchmark, sized_profile, save_report):
    """DESIGN.md ablation candidate: group-wise crossing fan-out cap.

    max_new_per_step=1 degenerates group-wise crossing to single-pair
    crossing (the pre-GRFG design); the group-wise default should explore at
    least as well.
    """
    from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset

    def run():
        ds = load_profile_dataset("openml_589", sized_profile, seed=0)
        group, _ = run_fastft_on_dataset(ds, sized_profile, seed=0)
        single, _ = run_fastft_on_dataset(ds, sized_profile, seed=0, max_new_per_step=1)
        return group, single

    group, single = benchmark.pedantic(run, rounds=1, iterations=1)
    report = (
        "Ablation: group-wise vs single-pair crossing (openml_589)\n"
        f"group-wise : {group.best_score:.4f} ({group.history[-1].n_features} features)\n"
        f"single-pair: {single.best_score:.4f} ({single.history[-1].n_features} features)"
    )
    save_report("fig6_extra_groupwise", report)
    assert group.best_score >= single.best_score - 0.1
