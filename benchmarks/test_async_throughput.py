"""Async-oracle throughput bench — serial vs overlapped downstream CV.

Table II's breakdown says downstream evaluation dominates FastFT's wall
clock; the serial arm pays ``optimization + estimation + evaluation`` as a
straight sum because every triggered CV runs inline. The async oracle
(``oracle_mode="async"``) submits triggered evaluations to worker
processes and keeps stepping on the predictor's φ estimates, so with
enough cores the wall-clock floor drops toward
``max(evaluation, optimization + estimation)`` — the buckets overlap
instead of adding.

This benchmark runs the same seeded search three ways:

- ``serial``      — the reference arm; its bucket sum is the baseline,
- ``async-inline``— ``oracle_workers=0``, the arm that *defines* the
  async trajectory (deferral without concurrency),
- ``async-pool``  — real workers; must reproduce the inline arm
  bit-for-bit (the determinism contract) while beating the serial sum.

The oracle is the real cross-validated evaluator padded to a per-call
wall floor, modeling the paper's expensive-oracle regime at smoke scale;
the padded portion parallelizes across workers exactly like real fold
compute. Timing notes: wall-time ratio, contention-sensitive
(``@pytest.mark.serial``). The identity assertion runs unconditionally;
the overlap floor (pool wall <= 0.75x the serial bucket sum per episode)
only holds when the workers have real cores, so on fewer than 4 cores the
report carries an explicit ``skipped: n_cores=N`` line instead of a
misleading ratio.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import api
from repro.ml.evaluation import DownstreamEvaluator

EVAL_FLOOR = 0.25  # seconds per downstream call (smoke); models Table II's regime


class _PaddedOracle:
    """Real CV with an enforced per-call wall floor.

    Scores are exactly the wrapped evaluator's, so trajectories are real;
    only the *cost* is floored, which keeps the evaluation bucket dominant
    at smoke scale the way full-size CV is at paper scale.
    """

    def __init__(self, inner: DownstreamEvaluator, floor: float) -> None:
        self._inner = inner
        self._floor = floor

    @property
    def task(self) -> str:
        return self._inner.task

    @property
    def n_calls(self) -> int:
        return self._inner.n_calls

    @property
    def total_time(self) -> float:
        return self._inner.total_time

    def reset_counters(self) -> None:
        self._inner.reset_counters()

    def for_worker(self) -> "_PaddedOracle":
        return _PaddedOracle(self._inner.for_worker(), self._floor)

    def __call__(self, X: np.ndarray, y: np.ndarray) -> float:
        start = time.perf_counter()
        score = self._inner(X, y)
        pad = self._floor - (time.perf_counter() - start)
        if pad > 0:
            time.sleep(pad)
        return score

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> float:
        return self(X, y)


def _async_problem(n: int = 400, d: int = 6):
    rng = np.random.default_rng(23)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] > 0).astype(int)
    return X, y


def _async_config(profile) -> dict:
    smoke = profile.name == "smoke"
    steps = 6 if smoke else 8
    return dict(
        episodes=4 if smoke else 5,
        steps_per_episode=steps,
        cold_start_episodes=1,
        # No per-episode refits: retraining is an episode-boundary cost
        # identical in every arm; this ratio isolates the overlap win.
        retrain_every_episodes=0,
        component_epochs=2,
        trigger_warmup=2,
        # Trigger often (top-60% predicted performance) so several
        # evaluations are in flight per reconcile window.
        alpha=60.0,
        cv_splits=3,
        rf_estimators=6 if smoke else profile.rf_estimators,
        max_clusters=3,
        mi_max_rows=128,
        seed=9,
        # Reconcile once per episode: the widest window the determinism
        # contract allows without crossing a retrain boundary.
        reconcile_every_k=steps,
    )


def _evaluator():
    return DownstreamEvaluator("classification", n_splits=3, seed=0)


def _deterministic_view(result) -> list:
    return [r.deterministic_dict() for r in result.history]


@pytest.mark.serial
def test_async_throughput(profile, save_report):
    cpu = os.cpu_count() or 1
    n_workers = min(4, cpu)
    X, y = _async_problem()
    cfg = _async_config(profile)
    episodes = cfg["episodes"]

    def timed_run(**overrides):
        run_cfg = dict(cfg, **overrides)
        evaluator = _PaddedOracle(_evaluator(), EVAL_FLOOR)
        start = time.perf_counter()
        result = api.search(X, y, "classification", evaluator=evaluator, **run_cfg)
        return result, time.perf_counter() - start

    def measure_and_report() -> float:
        serial, serial_t = timed_run(oracle_mode="serial")
        inline, inline_t = timed_run(oracle_mode="async", oracle_workers=0)
        pooled, pooled_t = timed_run(oracle_mode="async", oracle_workers=n_workers)

        buckets = serial.time  # Table II's per-run seconds
        bucket_sum = buckets.overall
        overlap_floor = max(buckets.evaluation, buckets.optimization + buckets.estimation)
        ratio = pooled_t / bucket_sum if bucket_sum > 0 else float("inf")

        identical = (
            pooled.plan.to_json() == inline.plan.to_json()
            and repr(pooled.base_score) == repr(inline.base_score)
            and repr(pooled.best_score) == repr(inline.best_score)
            and _deterministic_view(pooled) == _deterministic_view(inline)
        )

        if cpu < 4:
            ratio_line = (
                f"overlap: skipped: n_cores={cpu} (the 0.75x floor needs >= 4 "
                f"cores; async-pool == async-inline bit-identical: {identical})"
            )
        else:
            ratio_line = (
                f"overlap: async-pool wall = {ratio:.2f}x the serial bucket sum "
                f"(target <= 0.75x; async-pool == async-inline bit-identical: "
                f"{identical})"
            )
        lines = [
            "Async-oracle throughput — serial bucket sum vs overlapped evaluation",
            f"problem: {X.shape[0]} x {X.shape[1]} (binary classification), "
            f"{episodes} episodes x {cfg['steps_per_episode']} steps, "
            f"oracle floor {EVAL_FLOOR:.2f}s/call, {n_workers} workers on "
            f"{cpu} core(s)",
            f"serial buckets (s): optimization {buckets.optimization:.3f}  "
            f"estimation {buckets.estimation:.3f}  evaluation {buckets.evaluation:.3f}  "
            f"sum {bucket_sum:.3f}",
            f"perfect-overlap floor: max(eval, opt+est) = {overlap_floor:.3f}s "
            f"({overlap_floor / episodes:.3f} s/episode)",
            f"{'arm':14s} {'seconds':>9s} {'s/episode':>10s} {'real evals':>11s}",
            f"{'serial':14s} {serial_t:9.3f} {serial_t / episodes:10.3f} "
            f"{serial.n_downstream_calls:11d}",
            f"{'async-inline':14s} {inline_t:9.3f} {inline_t / episodes:10.3f} "
            f"{inline.n_downstream_calls:11d}",
            f"{'async-pool':14s} {pooled_t:9.3f} {pooled_t / episodes:10.3f} "
            f"{pooled.n_downstream_calls:11d}",
            ratio_line,
        ]
        save_report("async_throughput", "\n".join(lines))
        # The hard guarantee at any core count: worker timing never leaks
        # into the trajectory — the pool reproduces the inline reference.
        assert identical
        return ratio

    ratio = measure_and_report()
    if cpu < 4:
        pytest.skip(
            f"skipped: n_cores={cpu} — the async overlap floor needs >= 4 cores "
            "(identity checks above ran; the report records the skip)"
        )
    # Report saved before the floor is asserted; one retry on fresh timings
    # guards against background load landing on one arm (fig10 flake mode).
    if ratio > 0.75:
        ratio = measure_and_report()
    assert ratio <= 0.75, (
        f"async oracle overlap too weak: pool wall = {ratio:.2f}x the serial "
        f"bucket sum with {n_workers} workers on {cpu} cores"
    )
