"""Table IV bench — top-10 importances and traceable formulas on Wine Quality Red.

Paper shape to verify: the transformed dataset's top-10 importance mass is
more balanced (smaller sum) than the original's, and every listed FastFT
feature is an explicit formula over the original columns.
"""

from __future__ import annotations

from repro.experiments import table4


def test_table4_traceability(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: table4.run(profile, seed=0),
        rounds=1,
        iterations=1,
    )
    save_report("table4_traceability", table4.format_report(data))

    # Traceability: formulas reference original wine features.
    assert any(
        any(name in expr for name in ("alcohol", "acidity", "pH", "sulphates", "density"))
        for expr, _ in data["transformed"]
    )
    # The top-10 lists are importance-sorted.
    original = [imp for _, imp in data["original"]]
    assert original == sorted(original, reverse=True)
