"""Fig 14 bench — the novelty reward's effect on exploration breadth.

Paper shape to verify: with the Novelty Estimator, FastFT accumulates at
least as many unencountered feature combinations and at least comparable
average novelty distance as the −NE arm, at comparable-or-better score.
"""

from __future__ import annotations

from repro.experiments import fig14


def test_fig14_novelty(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: fig14.run(sized_profile, seed=0, dataset_name="wine_quality_red"),
        rounds=1,
        iterations=1,
    )
    save_report("fig14_novelty", fig14.format_report(data))

    full = data["arms"]["FastFT"]
    no_ne = data["arms"]["FastFT-NE"]
    assert full["final_unencountered"] >= no_ne["final_unencountered"] * 0.7
    assert full["score"] >= no_ne["score"] - 0.1
    # The unencountered counter is cumulative (non-decreasing).
    series = full["unencountered"]
    assert all(a <= b for a, b in zip(series, series[1:]))
