"""Extension benches beyond the paper's figures.

1. Noise robustness (the paper's §IX future-work direction): fixed
   transformation plans re-evaluated under growing feature noise.
2. Pruning-cap ablation (a DESIGN.md design-choice candidate): how the
   post-step feature budget affects quality — unbounded growth is not free.
"""

from __future__ import annotations

from repro.experiments import ext_noise
from repro.experiments.harness import load_profile_dataset, run_fastft_on_dataset


def test_ext_noise_robustness(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: ext_noise.run(profile, seed=0, noise_levels=[0.0, 0.25, 0.5]),
        rounds=1,
        iterations=1,
    )
    save_report("ext_noise_robustness", ext_noise.format_report(data))

    rows = data["rows"]
    # Scores degrade (weakly) monotonically with noise for the FastFT plan...
    assert rows[0]["fastft"] >= rows[-1]["fastft"] - 0.05
    # ...and the transformed features never collapse below chance behaviour.
    assert rows[-1]["fastft"] > 0.0


def test_ext_pruning_cap_ablation(benchmark, profile, save_report):
    """Feature-budget sweep: tiny caps choke the search, huge caps dilute
    the downstream model; the default (3× originals) sits in between."""

    def run():
        ds = load_profile_dataset("openml_589", profile, seed=0)
        out = {}
        for cap in (ds.n_features + 2, 3 * ds.n_features, 8 * ds.n_features):
            result, _ = run_fastft_on_dataset(ds, profile, seed=0, max_features=cap)
            out[cap] = (result.best_score, max(r.n_features for r in result.history))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — post-step pruning cap (openml_589)"]
    for cap, (score, peak) in data.items():
        lines.append(f"cap={cap:4d}: score={score:.4f} peak_features={peak}")
    save_report("ext_pruning_cap", "\n".join(lines))

    for cap, (_, peak) in data.items():
        assert peak <= cap
