"""Benchmark plumbing: run each experiment once, save its report to disk.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure of
the paper at the scaled-down SMOKE/DEFAULT profiles and writes the formatted
reports to ``benchmarks/reports/``. Pass ``--profile=default`` (or ``full``,
hours of compute) to rescale.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPORT_DIR = Path(__file__).resolve().parent / "reports"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serial: timing-ratio benchmark; must not run concurrently with "
        "other CPU-heavy work (see fig10)",
    )


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store",
        default="smoke",
        choices=["smoke", "default", "full"],
        help="Experiment scale profile (smoke | default | full)",
    )


@pytest.fixture(scope="session")
def profile(request):
    from repro.experiments import DEFAULT, FULL, SMOKE

    return {"smoke": SMOKE, "default": DEFAULT, "full": FULL}[
        request.config.getoption("--profile")
    ]


@pytest.fixture(scope="session")
def sized_profile(profile):
    """The selected profile with floors on dataset size and RL schedule.

    Sweep-style figures (learning curves, threshold/hyper-parameter sweeps)
    are uninformative on sub-100-sample datasets where every arm lands on the
    same quantized CV score; this keeps the method budgets of the selected
    profile but guarantees enough data/episodes for the sweeps to resolve.
    """
    import dataclasses

    return dataclasses.replace(
        profile,
        dataset_scale=max(profile.dataset_scale, 0.25),
        episodes=max(profile.episodes, 6),
        steps_per_episode=max(profile.steps_per_episode, 4),
        cold_start_episodes=max(profile.cold_start_episodes, 2),
    )


@pytest.fixture(scope="session")
def save_report():
    from repro.obs import run_metadata_header

    REPORT_DIR.mkdir(exist_ok=True)

    def _save(name: str, report: str) -> None:
        path = REPORT_DIR / f"{name}.txt"
        # Perf numbers are only interpretable with the producing machine
        # attached; every report leads with the environment header.
        path.write_text(run_metadata_header() + "\n" + report + "\n")
        print(f"\n{report}\n[report saved to {path}]")

    return _save
