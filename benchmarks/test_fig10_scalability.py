"""Fig 10 bench — runtime scalability vs dataset size.

Paper shape to verify: as size grows, OpenFE's runtime grows faster than
FastFT's (per-candidate downstream evaluation vs predictor), and CAAFE
carries a large size-independent constant.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig10


@pytest.mark.serial
def test_fig10_scalability(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: fig10.run(profile, seed=0, scales=[0.04, 0.12]),
        rounds=1,
        iterations=1,
    )

    # This assertion compares *relative wall-time growth* between two
    # methods, which is sensitive to CPU contention: a background process
    # that lands on one method's large-scale run skews the ratio. Hence
    # the serial marker, a generous tolerance (the paper's effect is
    # ~2x+, so 0.6 still verifies the shape), and one retry on a fresh
    # run before declaring failure.
    small, large = 0, -1

    def growth_assertions(d):
        fastft_growth = d["times"]["fastft"][large] / max(d["times"]["fastft"][small], 1e-9)
        openfe_growth = d["times"]["openfe"][large] / max(d["times"]["openfe"][small], 1e-9)
        # OpenFE scales worse than FastFT with dataset size (paper's Fig 10).
        assert openfe_growth > fastft_growth * 0.6
        # CAAFE's constant LLM latency dominates at small sizes.
        assert d["times"]["caafe"][small] > d["times"]["fastft"][small]

    # Save before asserting so a genuine failure still records the
    # measured times for diagnosis (the retry overwrites with its run).
    save_report("fig10_scalability", fig10.format_report(data))
    try:
        growth_assertions(data)
    except AssertionError:
        data = fig10.run(profile, seed=0, scales=[0.04, 0.12])
        save_report("fig10_scalability", fig10.format_report(data))
        growth_assertions(data)
