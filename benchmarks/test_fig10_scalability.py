"""Fig 10 bench — runtime scalability vs dataset size.

Paper shape to verify: as size grows, OpenFE's runtime grows faster than
FastFT's (per-candidate downstream evaluation vs predictor), and CAAFE
carries a large size-independent constant.
"""

from __future__ import annotations

from repro.experiments import fig10


def test_fig10_scalability(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: fig10.run(profile, seed=0, scales=[0.04, 0.12]),
        rounds=1,
        iterations=1,
    )
    save_report("fig10_scalability", fig10.format_report(data))

    small, large = 0, -1
    fastft_growth = data["times"]["fastft"][large] / max(data["times"]["fastft"][small], 1e-9)
    openfe_growth = data["times"]["openfe"][large] / max(data["times"]["openfe"][small], 1e-9)
    # OpenFE scales worse than FastFT with dataset size (paper's Fig 10).
    assert openfe_growth > fastft_growth * 0.8
    # CAAFE's constant LLM latency dominates at small sizes.
    assert data["times"]["caafe"][small] > data["times"]["fastft"][small]
