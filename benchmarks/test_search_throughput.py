"""Search-throughput bench — arena inner loop vs the seed implementation.

Table II splits FastFT's per-step cost into optimization, estimation and
evaluation; PR 2 and the evaluation cache attacked the evaluation bucket,
and this benchmark tracks the other two. It runs the same seeded search
twice with the downstream oracle mocked out to a constant-time stub — so
wall time is pure optimization + estimation — once with
``inner_loop="naive"`` (the seed implementation: dict-of-columns
FeatureSpace, full MI/state recomputation per step, three sequence encodes
per novelty score) and once with ``inner_loop="arena"`` (columnar arena,
incremental state/MI caches, fused estimation passes), verifies the two
trajectories are *bit-identical* step for step, and records steps/sec.

Timing notes: like fig10 this is a wall-time ratio and contention-
sensitive (``@pytest.mark.serial`` — never time it while other CPU-heavy
work runs). The matrix stays at the representative 2000 x 30 scale in
every profile (the paper's medium datasets; the 30 originals grow to the
default 90-feature cap so pruning and reclustering are exercised); the
smoke profile only trims the step budget to bound CI time. The identity
assertions run unconditionally; the speedup floor is deliberately below
the locally measured ~2x+ ratio and is skipped on 1-core runners, where
the suite's own background load makes ratios meaningless.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.config import FastFTConfig
from repro.core.session import SearchSession

ROUNDS = 2


class _StubOracle:
    """Constant-time downstream stand-in: deterministic, content-dependent
    (the search still sees score structure) and far cheaper than CV."""

    def __init__(self) -> None:
        self.n_calls = 0
        self.total_time = 0.0
        self.task = "classification"

    def __call__(self, X: np.ndarray, y: np.ndarray) -> float:
        self.n_calls += 1
        return 0.5 + 0.05 * float(np.tanh(X[0].sum() + X.shape[1] / 64.0))

    def reset_counters(self) -> None:
        self.n_calls = 0


def _search_problem(n: int = 2000, d: int = 30):
    rng = np.random.default_rng(5)
    X = rng.normal(size=(n, d))
    y = (X @ rng.normal(size=d) + 0.25 * rng.normal(size=n) > 0).astype(int)
    return X, y


def _search_config(profile, inner_loop: str) -> FastFTConfig:
    smoke = profile.name == "smoke"
    return FastFTConfig(
        episodes=3,
        steps_per_episode=5 if smoke else 8,
        cold_start_episodes=1,
        # No per-episode refits: component (re)training is an episode-
        # boundary cost that is identical in both arms (table2 tracks it);
        # this ratio isolates the per-step optimization+estimation path.
        retrain_every_episodes=0,
        component_epochs=2,
        trigger_warmup=2,
        max_clusters=4,
        seed=0,
        inner_loop=inner_loop,
    )


def _run_arm(inner_loop: str, profile, X, y):
    best_t = float("inf")
    reference = None
    for _ in range(ROUNDS):
        session = SearchSession(
            X, y, "classification",
            config=_search_config(profile, inner_loop),
            evaluator=_StubOracle(),
        )
        session.start()
        start = time.perf_counter()
        result = session.run()
        best_t = min(best_t, time.perf_counter() - start)
        if reference is None:
            reference = result
        else:  # deterministic across rounds
            assert result.plan.to_json() == reference.plan.to_json()
    return best_t, reference


@pytest.mark.serial
def test_search_throughput(profile, save_report):
    cpu = os.cpu_count() or 1
    X, y = _search_problem()

    def measure_and_report() -> float:
        naive_t, naive = _run_arm("naive", profile, X, y)
        arena_t, arena = _run_arm("arena", profile, X, y)
        n_steps = len(naive.history)
        speedup = naive_t / arena_t

        identical = (
            naive.plan.to_json() == arena.plan.to_json()
            and repr(naive.best_score) == repr(arena.best_score)
            and len(naive.history) == len(arena.history)
            and all(
                a.deterministic_dict() == b.deterministic_dict()
                for a, b in zip(naive.history, arena.history)
            )
        )

        lines = [
            "Search throughput — optimization+estimation steps/sec, oracle mocked out",
            f"matrix: {X.shape[0]} x {X.shape[1]} (binary classification), "
            f"{n_steps} steps to the {naive.history[-1].n_features}-feature cap, "
            f"best of {ROUNDS} rounds",
            f"{'inner_loop':12s} {'seconds':>9s} {'steps/sec':>10s}",
            f"{'naive':12s} {naive_t:9.3f} {n_steps / naive_t:10.2f}",
            f"{'arena':12s} {arena_t:9.3f} {n_steps / arena_t:10.2f}",
            f"speedup: {speedup:.2f}x  (trajectories bit-identical: {identical})",
        ]
        save_report("search_throughput", "\n".join(lines))
        # Bit-identity is the hard guarantee: the arena inner loop replays
        # the seed implementation's exact decisions, scores and plans.
        assert identical
        return speedup

    speedup = measure_and_report()
    if cpu < 2:
        pytest.skip(
            "search-throughput floor needs >= 2 cores (this suite's own "
            "background load skews 1-core wall-time ratios; the identity "
            "checks above ran and the report records the measured ratio)"
        )
    # Report saved before the floor is asserted; one retry on fresh timings
    # guards against background load landing on one arm (fig10 flake mode).
    if speedup < 1.5:
        speedup = measure_and_report()
    assert speedup >= 1.5, f"arena inner loop too slow: {speedup:.2f}x vs naive"
