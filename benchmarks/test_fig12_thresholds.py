"""Fig 12 bench — α/β threshold sweeps (efficiency vs efficacy).

Paper shape to verify: higher thresholds mean more downstream evaluations
and more evaluation time; performance fluctuates only mildly except at the
degenerate α=β=0 point.
"""

from __future__ import annotations

from repro.experiments import fig12


def test_fig12_thresholds(benchmark, sized_profile, save_report):
    data = benchmark.pedantic(
        lambda: fig12.run(
            sized_profile,
            seed=0,
            dataset_name="pima_indian",
            alpha_values=[0.0, 10.0, 20.0],
            beta_values=[0.0, 10.0, 20.0],
        ),
        rounds=1,
        iterations=1,
    )
    save_report("fig12_thresholds", fig12.format_report(data))

    calls = [p["n_downstream_calls"] for p in data["alpha_sweep"]]
    # More permissive α (top-20% vs never) triggers at least as many evaluations.
    assert calls[0] <= calls[-1]
    # α=0 with β=5 still evaluates occasionally (novelty channel),
    # but α=β=0 in the beta sweep point 0 evaluates the least overall.
    beta_calls = [p["n_downstream_calls"] for p in data["beta_sweep"]]
    assert beta_calls[0] <= max(beta_calls)
