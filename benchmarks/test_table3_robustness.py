"""Table III bench — robustness across six downstream models on German Credit.

Paper shape to verify: FastFT's features stay competitive under every
downstream model (it wins most columns in the paper); LDA's projection is the
weakest row.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import table3


def test_table3_robustness(benchmark, profile, save_report):
    data = benchmark.pedantic(
        lambda: table3.run(profile, seed=0, methods=["erg", "lda", "rdg", "fastft"]),
        rounds=1,
        iterations=1,
    )
    save_report("table3_robustness", table3.format_report(data))

    fastft_scores = np.array(list(data["table"]["fastft"].values()))
    lda_scores = np.array(list(data["table"]["lda"].values()))
    # FastFT beats the LDA strawman on average across models.
    assert fastft_scores.mean() > lda_scores.mean()
    # Robustness: no downstream model collapses on FastFT features.
    assert fastft_scores.min() > 0.3
