"""Tests for the 11 baseline feature-transformation methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AFT,
    BASELINE_REGISTRY,
    CAAFE,
    DIFER,
    ERG,
    GRFG,
    LDA,
    NFS,
    OpenFE,
    RDG,
    RFG,
    TTG,
)
from repro.baselines.caafe import SemanticProposalEngine
from repro.baselines.lda import LatentTopicModel

FAST_KWARGS = {
    "rfg": dict(n_rounds=3),
    "rdg": dict(n_rounds=2),
    "erg": dict(binary_pair_budget=6),
    "lda": dict(n_iter=8, n_topics=4),
    "aft": dict(n_rounds=2, candidates_per_round=8),
    "nfs": dict(n_epochs=2),
    "ttg": dict(node_budget=4),
    "difer": dict(corpus_size=4, search_rounds=1, predictor_epochs=2),
    "openfe": dict(binary_pair_budget=6, admit_budget=2),
    "caafe": dict(n_iterations=1),
    "grfg": dict(episodes=2, steps_per_episode=2, component_epochs=1,
                 max_clusters=3, mi_max_rows=80),
}


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(150, 6))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)
    names = [f"col{j}" for j in range(6)]
    return X, y, names


class TestBaselineProtocol:
    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_fit_returns_complete_result(self, name, problem):
        X, y, names = problem
        method = BASELINE_REGISTRY[name](
            cv_splits=3, rf_estimators=4, seed=0, **FAST_KWARGS[name]
        )
        result = method.fit(X, y, task="classification", feature_names=names)
        assert result.name == method.name
        assert np.isfinite(result.base_score)
        assert np.isfinite(result.best_score)
        assert result.wall_time > 0
        assert result.n_evaluations >= 1

    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_plan_reapplies_to_new_data(self, name, problem):
        X, y, names = problem
        method = BASELINE_REGISTRY[name](
            cv_splits=3, rf_estimators=4, seed=0, **FAST_KWARGS[name]
        )
        result = method.fit(X, y, task="classification", feature_names=names)
        rng = np.random.default_rng(9)
        out = result.transform(rng.normal(size=(25, 6)))
        assert out.shape[0] == 25
        assert out.shape[1] >= 1
        assert np.isfinite(out).all()


class TestRFG:
    def test_improvement_property(self, problem):
        X, y, names = problem
        result = RFG(n_rounds=4, cv_splits=3, rf_estimators=4, seed=0).fit(X, y)
        assert result.best_score >= result.base_score
        assert result.improvement >= 0

    def test_rdg_has_smaller_budget(self):
        assert RDG().n_rounds < RFG().n_rounds

    def test_feature_cap(self, problem):
        X, y, _ = problem
        result = RFG(
            n_rounds=5, steps_per_round=4, max_features_factor=2,
            cv_splits=3, rf_estimators=4, seed=0,
        ).fit(X, y)
        assert result.plan.n_features <= 2 * X.shape[1]


class TestERG:
    def test_expands_then_reduces(self, problem):
        X, y, _ = problem
        result = ERG(keep_factor=2.0, binary_pair_budget=6,
                     cv_splits=3, rf_estimators=4, seed=0).fit(X, y)
        assert result.plan.n_features <= 2 * X.shape[1]

    def test_invalid_keep_factor(self):
        with pytest.raises(ValueError):
            ERG(keep_factor=0)


class TestLDA:
    def test_projection_dimension(self, problem):
        X, y, _ = problem
        result = LDA(n_topics=4, n_iter=5, cv_splits=3, rf_estimators=4, seed=0).fit(X, y)
        assert result.plan.n_features == 4
        assert result.transform(X).shape == (len(X), 4)

    def test_topic_model_rows_are_distributions(self, problem):
        X, _, _ = problem
        model = LatentTopicModel(n_topics=3, n_iter=10, seed=0)
        theta = model.fit_transform(X)
        assert theta.shape == (len(X), 3)
        assert np.allclose(theta.sum(axis=1), 1.0, atol=1e-6)
        assert (theta >= 0).all()

    def test_topic_model_transform_new_data(self, problem):
        X, _, _ = problem
        model = LatentTopicModel(n_topics=3, n_iter=10, seed=0)
        model.fit_transform(X[:100])
        theta = model.transform(X[100:])
        assert theta.shape == (50, 3)

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            LatentTopicModel().transform(np.ones((3, 2)))

    def test_invalid_topics_raise(self):
        with pytest.raises(ValueError):
            LatentTopicModel(n_topics=0)


class TestCAAFE:
    def test_template_matching_on_named_features(self):
        engine = SemanticProposalEngine(["Weight", "Height", "Age"], seed=0)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = rng.integers(0, 2, 50)
        proposals = engine.propose(X, y, "classification", k=5)
        assert ("divide", 0, 1) in proposals  # weight/height template

    def test_generic_fallback_without_names(self):
        engine = SemanticProposalEngine(["f1", "f2", "f3"], seed=0)
        rng = np.random.default_rng(0)
        proposals = engine.propose(
            rng.normal(size=(50, 3)), rng.integers(0, 2, 50), "classification", k=4
        )
        assert len(proposals) == 4
        assert all(i != j for _, i, j in proposals)

    def test_simulated_latency_charged(self, problem):
        X, y, names = problem
        result = CAAFE(
            n_iterations=2, simulated_llm_latency=10.0,
            cv_splits=3, rf_estimators=4, seed=0,
        ).fit(X, y, feature_names=names)
        assert result.wall_time >= 20.0  # 2 calls × 10s, without sleeping
        assert result.extra["llm_calls"] == 2


class TestSearchBaselines:
    def test_nfs_controller_runs(self, problem):
        X, y, names = problem
        result = NFS(n_epochs=3, cv_splits=3, rf_estimators=4, seed=0).fit(
            X, y, feature_names=names
        )
        assert result.best_score >= result.base_score

    def test_nfs_deterministic_across_fits(self, problem):
        # Two fresh fits must match bit-for-bit: encoder weights, head
        # init, and action sampling all derive from `seed`. (The head was
        # once unseeded, which silently drifted Table I's NFS column on
        # every regeneration.)
        X, y, names = problem
        first, second = (
            NFS(n_epochs=2, cv_splits=3, rf_estimators=4, seed=0).fit(
                X, y, feature_names=names
            )
            for _ in range(2)
        )
        assert first.best_score == second.best_score
        probe = np.random.default_rng(11).normal(size=(20, 6))
        np.testing.assert_array_equal(first.transform(probe), second.transform(probe))

    def test_ttg_graph_recorded(self, problem):
        X, y, _ = problem
        result = TTG(node_budget=5, cv_splits=3, rf_estimators=4, seed=0).fit(X, y)
        assert result.extra.get("graph_nodes", 0) >= 5
        assert result.extra.get("graph_edges", 0) >= 4

    def test_difer_corpus_grows_during_search(self, problem):
        X, y, _ = problem
        result = DIFER(
            corpus_size=4, search_rounds=2, evaluate_top=1,
            predictor_epochs=2, cv_splits=3, rf_estimators=4, seed=0,
        ).fit(X, y)
        assert result.extra["corpus_size"] == 4 + 2

    def test_openfe_admits_bounded(self, problem):
        X, y, _ = problem
        result = OpenFE(
            binary_pair_budget=6, admit_budget=2, cv_splits=3, rf_estimators=4, seed=0
        ).fit(X, y)
        assert result.extra["admitted"] <= 2
        assert result.plan.n_features <= X.shape[1] + 2

    def test_aft_keeps_original_features(self, problem):
        X, y, _ = problem
        result = AFT(n_rounds=2, cv_splits=3, rf_estimators=4, seed=0).fit(X, y)
        assert result.plan.n_features >= X.shape[1]

    def test_grfg_never_uses_predictor(self, problem):
        X, y, names = problem
        result = GRFG(
            episodes=2, steps_per_episode=2, cv_splits=3, rf_estimators=4, seed=0,
            component_epochs=1, max_clusters=3,
        ).fit(X, y, feature_names=names)
        # every step is downstream-evaluated: baseline + episodes*steps
        assert result.n_evaluations >= 1 + 2 * 2
