"""Determinism goldens: the repo's central correctness currency, pinned.

Bit-identical seeded runs are what every other guarantee here leans on —
checkpoint/resume, the presort oracle, the compiled serving path, and now
the parallel orchestrator all promise "same numbers as the serial seed
run". This suite makes that promise testable in three layers:

1. two in-process runs of the same tiny end-to-end search agree
   field-for-field (steps, scores, plan JSON);
2. the same search driven through ``SearchOrchestrator`` (one worker)
   agrees with them;
3. the run's digest — sha256 over the plan JSON and the score reprs —
   matches a golden checked into this file, so *silent* drift introduced
   by a future PR (a reordered RNG draw, a refactored reduction, a new
   default) fails loudly here even if the run is still self-consistent.

If a PR changes these digests on purpose (e.g. it deliberately alters the
search trajectory), the failure message prints the new digest to check in
— but the diff must say *why* the trajectory moved.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro import api
from repro.core.result import FastFTResult

# One tiny schedule exercising every stage: cold start (1 episode),
# component training, triggered exploration and a fine-tune refit.
GOLDEN_CONFIG = dict(
    episodes=3,
    steps_per_episode=2,
    cold_start_episodes=1,
    retrain_every_episodes=1,
    component_epochs=2,
    trigger_warmup=2,
    cv_splits=3,
    rf_estimators=4,
    max_clusters=3,
    mi_max_rows=64,
    seed=7,
)

# sha256(plan JSON + repr(base_score) + repr(best_score)) per task type.
GOLDEN_DIGESTS = {
    "classification": "a73dfd00b22b5f87047d3d0704068556e27c3d7415b038413f57549143737992",
    "regression": "77cb665889fbadc35d975453a20562419475850d80175a0fd5666df8549f5d93",
}

# The async-oracle arm (oracle_mode="async"): triggered evaluations defer
# to the pool and reconcile every k global steps, so steps that trigger
# record their φ estimate (is_real=False) and the real score lands later —
# a *different* pinned trajectory with its own goldens, never a silent
# change to GOLDEN_DIGESTS above. The reference arm is oracle_workers=0
# (inline deferred); a real pool must match it bit-for-bit.
ASYNC_GOLDEN_CONFIG = dict(
    GOLDEN_CONFIG, oracle_mode="async", reconcile_every_k=2, oracle_workers=0
)

# At this tiny scale the deferred arm happens to land on the same final
# plan/base/best as the serial arm (the result digests coincide); the
# step-level history digests below pin the part that genuinely differs
# (deferred steps score φ, rewards and replay priorities shift).
ASYNC_GOLDEN_DIGESTS = {
    "classification": "a73dfd00b22b5f87047d3d0704068556e27c3d7415b038413f57549143737992",
    "regression": "77cb665889fbadc35d975453a20562419475850d80175a0fd5666df8549f5d93",
}

# sha256 over the deterministic step-history JSON (timing fields excluded).
ASYNC_GOLDEN_HISTORY_DIGESTS = {
    "classification": "7daf746e389f9308c49d5d3981e53800ebfbd41b301238963d8cfbb8f8fe13d0",
    "regression": "36475cc1be37ec3c0a8b5c533c19efc017eec864a33629572c98ca912d93e2cb",
}


def _problem(task: str) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(17)
    X = rng.normal(size=(90, 4))
    if task == "classification":
        y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] > 0).astype(int)
    else:
        y = X[:, 0] * X[:, 1] + 0.5 * X[:, 2] ** 2
    return X, y


def _digest(result: FastFTResult) -> str:
    h = hashlib.sha256()
    h.update(result.plan.to_json().encode())
    h.update(repr(result.base_score).encode())
    h.update(repr(result.best_score).encode())
    return h.hexdigest()


def _deterministic_view(result: FastFTResult) -> list[dict]:
    # json round-trip normalizes container types so comparisons are exact
    # on values, not on list-vs-tuple incidentals.
    return [
        json.loads(json.dumps(r.deterministic_dict())) for r in result.history
    ]


def _history_digest(result: FastFTResult) -> str:
    return hashlib.sha256(
        json.dumps(_deterministic_view(result), sort_keys=True).encode()
    ).hexdigest()


@pytest.mark.parametrize("task", ["classification", "regression"])
class TestDeterminismGolden:
    def test_two_inprocess_runs_are_bit_identical(self, task):
        X, y = _problem(task)
        first = api.search(X, y, task, **GOLDEN_CONFIG)
        second = api.search(X, y, task, **GOLDEN_CONFIG)
        assert first.plan.to_json() == second.plan.to_json()
        assert repr(first.base_score) == repr(second.base_score)
        assert repr(first.best_score) == repr(second.best_score)
        assert _deterministic_view(first) == _deterministic_view(second)
        assert _digest(first) == _digest(second)

    def test_orchestrator_single_worker_matches_inprocess(self, task):
        X, y = _problem(task)
        reference = api.search(X, y, task, **GOLDEN_CONFIG)
        sweep = api.sweep(
            X, y, task, seeds=[GOLDEN_CONFIG["seed"]], n_jobs=1,
            **{k: v for k, v in GOLDEN_CONFIG.items() if k != "seed"},
        )
        orchestrated = sweep[GOLDEN_CONFIG["seed"]]
        assert orchestrated.plan.to_json() == reference.plan.to_json()
        assert repr(orchestrated.best_score) == repr(reference.best_score)
        assert _deterministic_view(orchestrated) == _deterministic_view(reference)
        assert _digest(orchestrated) == _digest(reference)

    def test_digest_matches_checked_in_golden(self, task):
        X, y = _problem(task)
        result = api.search(X, y, task, **GOLDEN_CONFIG)
        assert _digest(result) == GOLDEN_DIGESTS[task], (
            f"{task} search trajectory drifted from the checked-in golden. "
            f"If this PR changes the search on purpose, update "
            f"GOLDEN_DIGESTS[{task!r}] to {_digest(result)!r} and explain "
            f"the trajectory change in the PR; if not, a refactor broke "
            f"seeded determinism — bisect before touching the golden."
        )


@pytest.mark.parametrize("task", ["classification", "regression"])
class TestAsyncOracleGolden:
    """The oracle_mode="async" determinism contract (see
    repro.core.async_oracle): a pinned reconcile schedule makes the arm
    bit-identical across runs and across pool sizes — worker timing never
    leaks into the trajectory."""

    def test_two_async_runs_are_bit_identical(self, task):
        X, y = _problem(task)
        first = api.search(X, y, task, **ASYNC_GOLDEN_CONFIG)
        second = api.search(X, y, task, **ASYNC_GOLDEN_CONFIG)
        assert first.plan.to_json() == second.plan.to_json()
        assert repr(first.best_score) == repr(second.best_score)
        assert _deterministic_view(first) == _deterministic_view(second)
        assert _digest(first) == _digest(second)

    def test_pooled_matches_inline_reference_arm(self, task):
        X, y = _problem(task)
        inline = api.search(X, y, task, **ASYNC_GOLDEN_CONFIG)
        pooled = api.search(
            X, y, task, **dict(ASYNC_GOLDEN_CONFIG, oracle_workers=2)
        )
        assert pooled.plan.to_json() == inline.plan.to_json()
        assert repr(pooled.base_score) == repr(inline.base_score)
        assert repr(pooled.best_score) == repr(inline.best_score)
        assert _deterministic_view(pooled) == _deterministic_view(inline)

    def test_async_digests_match_checked_in_goldens(self, task):
        X, y = _problem(task)
        result = api.search(X, y, task, **ASYNC_GOLDEN_CONFIG)
        assert _digest(result) == ASYNC_GOLDEN_DIGESTS[task], (
            f"async-arm {task} result drifted; if intentional, update "
            f"ASYNC_GOLDEN_DIGESTS[{task!r}] to {_digest(result)!r} and "
            f"explain why in the PR."
        )
        assert _history_digest(result) == ASYNC_GOLDEN_HISTORY_DIGESTS[task], (
            f"async-arm {task} step history drifted; if intentional, update "
            f"ASYNC_GOLDEN_HISTORY_DIGESTS[{task!r}] to "
            f"{_history_digest(result)!r} and explain why in the PR."
        )

    def test_async_arm_is_a_distinct_trajectory(self, task):
        """Deferred steps record φ estimates (triggered + not real), so the
        async step history must differ from serial — if it ever collapses
        into the serial history, the deferral isn't happening."""
        X, y = _problem(task)
        serial = api.search(X, y, task, **GOLDEN_CONFIG)
        deferred_run = api.search(X, y, task, **ASYNC_GOLDEN_CONFIG)
        deferred = [r for r in deferred_run.history if r.triggered and not r.is_real]
        assert deferred, "async arm never deferred a triggered evaluation"
        assert _deterministic_view(deferred_run) != _deterministic_view(serial)


@pytest.mark.parametrize("task", ["classification", "regression"])
class TestTracingGolden:
    """Observability must be read-only: a search traced by
    :class:`repro.obs.TracingCallback` must replay the *same* pinned
    trajectory as an untraced run, on both oracle arms — and the trace it
    writes must account for the run's Table II time exactly."""

    def test_goldens_unchanged_with_tracing_on(self, task, tmp_path):
        from repro.obs import TracingCallback, load_trace

        X, y = _problem(task)
        trace_path = tmp_path / "golden.trace.jsonl"
        result = api.search(
            X, y, task,
            callbacks=[TracingCallback(path=str(trace_path))],
            **GOLDEN_CONFIG,
        )
        assert _digest(result) == GOLDEN_DIGESTS[task], (
            f"tracing perturbed the {task} golden trajectory"
        )
        trace = load_trace(str(trace_path))
        buckets = trace.bucket_totals()
        assert buckets["optimization"] == pytest.approx(result.time.optimization, abs=1e-9)
        assert buckets["estimation"] == pytest.approx(result.time.estimation, abs=1e-9)
        assert buckets["evaluation"] == pytest.approx(result.time.evaluation, abs=1e-9)
        assert len(trace.spans_named("step")) == len(result.history)

    def test_async_goldens_unchanged_with_tracing_on(self, task, tmp_path):
        from repro.obs import TracingCallback

        X, y = _problem(task)
        trace_path = tmp_path / "async.trace.jsonl"
        result = api.search(
            X, y, task,
            callbacks=[TracingCallback(path=str(trace_path))],
            **ASYNC_GOLDEN_CONFIG,
        )
        assert _digest(result) == ASYNC_GOLDEN_DIGESTS[task], (
            f"tracing perturbed the async-arm {task} golden trajectory"
        )
        assert _history_digest(result) == ASYNC_GOLDEN_HISTORY_DIGESTS[task], (
            f"tracing perturbed the async-arm {task} step history"
        )
