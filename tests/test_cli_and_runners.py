"""Tests for the CLI (`python -m repro`) and the run_all experiment driver."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main
from repro.core.sequence import TransformationPlan
from repro.experiments.run_all import EXPERIMENTS, run_experiments


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.task is None

    def test_transform_args(self):
        args = build_parser().parse_args(
            ["transform", "pima_indian", "--episodes", "3", "--scale", "0.1"]
        )
        assert args.dataset == ["pima_indian"]  # several names = one batch
        assert args.episodes == 3
        assert args.scale == 0.1
        assert args.n_jobs == 1

    def test_transform_accepts_several_datasets(self):
        args = build_parser().parse_args(
            ["transform", "pima_indian", "wine_quality_red", "--n-jobs", "2"]
        )
        assert args.dataset == ["pima_indian", "wine_quality_red"]
        assert args.n_jobs == 2

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "pima_indian", "--seeds", "0,1,2", "--n-jobs", "4"]
        )
        assert args.dataset == "pima_indian"
        assert args.seeds == "0,1,2"
        assert args.n_jobs == 4
        assert args.episodes == 8  # shared search flags apply

    def test_experiments_only_subset(self):
        args = build_parser().parse_args(["experiments", "--only", "fig11", "table4"])
        assert args.only == ["fig11", "table4"]

    def test_transform_schedule_flags_are_explicit(self):
        """The schedule knobs the CLI used to override silently are now
        visible flags with the same values as defaults."""
        args = build_parser().parse_args(["transform", "pima_indian"])
        assert args.cold_start_episodes is None  # -> max(1, episodes // 4)
        assert args.retrain_every == 2
        assert args.component_epochs == 4
        assert args.rf_estimators == 8
        custom = build_parser().parse_args(
            [
                "transform", "pima_indian",
                "--cold-start-episodes", "3",
                "--retrain-every", "5",
                "--component-epochs", "9",
                "--rf-estimators", "12",
            ]
        )
        assert custom.cold_start_episodes == 3
        assert custom.retrain_every == 5
        assert custom.component_epochs == 9
        assert custom.rf_estimators == 12

    def test_transform_session_flags(self):
        args = build_parser().parse_args(
            ["transform", "pima_indian", "--checkpoint", "c.ckpt",
             "--time-budget", "30", "--resume", "r.ckpt"]
        )
        assert args.checkpoint == "c.ckpt"
        assert args.time_budget == 30.0
        assert args.resume == "r.ckpt"

    def test_resume_command_args(self):
        args = build_parser().parse_args(["resume", "r.ckpt", "--time-budget", "5"])
        assert args.checkpoint_file == "r.ckpt"
        assert args.time_budget == 5.0

    def test_export_args(self):
        args = build_parser().parse_args(
            ["export", "pima_indian", "--episodes", "3", "--registry", "reg",
             "--name", "pima", "--tag", "prod"]
        )
        assert args.dataset == "pima_indian"
        assert args.episodes == 3
        assert args.registry == "reg" and args.name == "pima" and args.tag == "prod"
        assert args.out is None

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--artifact", "art", "--port", "0", "--max-requests", "3",
             "--max-wait-ms", "1.5", "--url-file", "u.txt"]
        )
        assert args.artifact == "art"
        assert args.port == 0
        assert args.max_requests == 3
        assert args.max_wait_ms == 1.5
        assert args.url_file == "u.txt"
        assert args.registry is None and args.version is None and args.tag is None
        # Production front-end knobs default off.
        assert args.max_queue is None and args.deadline_ms is None
        assert args.reload is False and args.shadow_tag is None

    def test_serve_frontend_args(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "reg", "--name", "churn", "--tag", "prod",
             "--max-queue", "64", "--deadline-ms", "250", "--reload",
             "--shadow-tag", "next"]
        )
        assert args.max_queue == 64
        assert args.deadline_ms == 250.0
        assert args.reload is True
        assert args.shadow_tag == "next"


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cardiovascular" in out
        assert "openml_618" in out

    def test_datasets_task_filter(self, capsys):
        main(["datasets", "--task", "detection"])
        out = capsys.readouterr().out
        assert "thyroid" in out
        assert "pima_indian" not in out

    def test_transform_end_to_end(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "transform",
                "pima_indian",
                "--scale", "0.08",
                "--episodes", "2",
                "--steps", "2",
                "--save-plan", str(plan_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score" in out and "plan" in out
        # The saved plan is valid JSON and re-loadable.
        text = plan_path.read_text()
        plan = TransformationPlan.from_json(text)
        assert plan.n_input_columns == 8
        # Saved plans are indent=2 formatted and newline-terminated so
        # they diff cleanly under version control.
        assert text.startswith("{\n  ")
        assert text.endswith("}\n")

    def test_transform_batch_end_to_end(self, capsys):
        code = main(
            [
                "transform", "pima_indian", "wine_quality_red",
                "--scale", "0.08",
                "--episodes", "2",
                "--steps", "2",
                "--cv", "3",
                "--rf-estimators", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pima_indian" in out and "wine_quality_red" in out
        assert out.count("->") == 2  # one score line per dataset

    def test_transform_batch_rejects_single_search_flags(self, capsys):
        code = main(
            ["transform", "pima_indian", "wine_quality_red", "--save-plan", "p.json"]
        )
        assert code == 2
        assert "single search" in capsys.readouterr().err

    def test_sweep_end_to_end(self, capsys, tmp_path):
        plan_path = tmp_path / "best_plan.json"
        code = main(
            [
                "sweep", "pima_indian",
                "--scale", "0.08",
                "--episodes", "2",
                "--steps", "2",
                "--cv", "3",
                "--rf-estimators", "3",
                "--seeds", "0,1",
                "--save-plan", str(plan_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean" in out and "best" in out
        assert TransformationPlan.from_json(plan_path.read_text()).n_input_columns == 8

    def test_sweep_rejects_bad_seeds(self, capsys):
        assert main(["sweep", "pima_indian", "--seeds", "a,b"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err
        assert main(["sweep", "pima_indian", "--seeds", ","]) == 2
        assert "at least one seed" in capsys.readouterr().err

    def test_transform_checkpoint_and_resume_command(self, capsys, tmp_path):
        ckpt = tmp_path / "session.ckpt"
        code = main(
            [
                "transform", "pima_indian",
                "--scale", "0.08",
                "--episodes", "2",
                "--steps", "2",
                "--checkpoint", str(ckpt),
            ]
        )
        assert code == 0
        assert ckpt.exists()
        first = capsys.readouterr().out
        # The finished checkpoint resumes cleanly and reports the same score.
        code = main(["resume", str(ckpt)])
        assert code == 0
        second = capsys.readouterr().out
        score_line = [ln for ln in first.splitlines() if ln.startswith("score")][0]
        assert score_line in second

    def test_transform_resume_flag(self, capsys, tmp_path):
        ckpt = tmp_path / "session.ckpt"
        main(
            ["transform", "pima_indian", "--scale", "0.08", "--episodes", "2",
             "--steps", "2", "--checkpoint", str(ckpt)]
        )
        capsys.readouterr()
        code = main(["transform", "--resume", str(ckpt)])
        assert code == 0
        assert "score" in capsys.readouterr().out

    def test_transform_requires_dataset_or_resume(self, capsys):
        assert main(["transform"]) == 2
        assert "dataset name is required" in capsys.readouterr().err

    def test_export_then_serve_end_to_end(self, capsys, tmp_path):
        """CLI acceptance: export into a registry, then serve it over a
        real socket with a bounded request budget."""
        import json
        import threading
        import time
        import urllib.request

        registry = str(tmp_path / "reg")
        code = main(
            ["export", "pima_indian", "--scale", "0.08", "--episodes", "2",
             "--steps", "2", "--registry", registry, "--name", "pima",
             "--tag", "prod"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "published : pima v0001 (tag 'prod')" in out

        url_file = tmp_path / "url.txt"
        thread = threading.Thread(
            target=main,
            args=(
                ["serve", "--registry", registry, "--name", "pima", "--tag", "prod",
                 "--port", "0", "--max-requests", "2", "--url-file", str(url_file)],
            ),
            daemon=True,
        )
        thread.start()
        for _ in range(200):
            if url_file.exists():
                break
            time.sleep(0.05)
        url = url_file.read_text().strip()
        health = json.loads(urllib.request.urlopen(url + "/healthz", timeout=10).read())
        assert health["status"] == "ok"
        req = urllib.request.Request(
            url + "/predict",
            data=json.dumps({"rows": [[1.0] * 8]}).encode(),
        )
        body = json.loads(urllib.request.urlopen(req, timeout=10).read())
        assert len(body["predictions"]) == 1
        thread.join(timeout=10)
        assert not thread.is_alive()  # --max-requests shut the server down

    def test_export_requires_one_destination(self, capsys):
        assert main(["export", "pima_indian"]) == 2
        assert "exactly one of --out or --registry" in capsys.readouterr().err
        assert main(["export", "pima_indian", "--registry", "r"]) == 2
        assert "requires --name" in capsys.readouterr().err

    def test_serve_requires_one_source(self, capsys):
        assert main(["serve"]) == 2
        assert "exactly one of --artifact or --registry" in capsys.readouterr().err
        assert main(["serve", "--artifact", "/nonexistent/art"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_reload_requires_registry(self, capsys, tmp_path):
        art = tmp_path / "art"
        art.mkdir()
        assert main(["serve", "--artifact", str(art), "--reload"]) == 2
        assert "--reload/--shadow-tag require --registry" in capsys.readouterr().err
        assert main(["serve", "--artifact", str(art), "--shadow-tag", "next"]) == 2
        assert "require --registry" in capsys.readouterr().err

    def test_export_to_directory(self, capsys, tmp_path):
        out_dir = tmp_path / "artifact"
        code = main(
            ["export", "pima_indian", "--scale", "0.08", "--episodes", "2",
             "--steps", "2", "--out", str(out_dir)]
        )
        assert code == 0
        from repro.serve import PipelineArtifact

        artifact = PipelineArtifact.load(out_dir)
        assert artifact.manifest["dataset"] == "pima_indian"
        assert artifact.predict([[1.0] * 8] * 3).shape == (3,)

    def test_experiments_command(self, capsys, tmp_path):
        code = main(
            ["experiments", "--only", "fig11", "--profile", "smoke", "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig11.txt").exists()


class TestRunAll:
    def test_registry_covers_every_paper_artifact(self):
        expected = {"table1", "table2", "table3", "table4"} | {
            f"fig{i}" for i in range(6, 16)
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], out_dir=tmp_path)

    def test_run_selected_writes_report(self, tmp_path, capsys):
        reports = run_experiments(["fig11"], profile_name="smoke", out_dir=tmp_path)
        assert "fig11" in reports
        assert "Seq length" in (tmp_path / "fig11.txt").read_text()
