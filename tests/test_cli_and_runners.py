"""Tests for the CLI (`python -m repro`) and the run_all experiment driver."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main
from repro.core.sequence import TransformationPlan
from repro.experiments.run_all import EXPERIMENTS, run_experiments


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.task is None

    def test_transform_args(self):
        args = build_parser().parse_args(
            ["transform", "pima_indian", "--episodes", "3", "--scale", "0.1"]
        )
        assert args.dataset == "pima_indian"
        assert args.episodes == 3
        assert args.scale == 0.1

    def test_experiments_only_subset(self):
        args = build_parser().parse_args(["experiments", "--only", "fig11", "table4"])
        assert args.only == ["fig11", "table4"]

    def test_transform_schedule_flags_are_explicit(self):
        """The schedule knobs the CLI used to override silently are now
        visible flags with the same values as defaults."""
        args = build_parser().parse_args(["transform", "pima_indian"])
        assert args.cold_start_episodes is None  # -> max(1, episodes // 4)
        assert args.retrain_every == 2
        assert args.component_epochs == 4
        assert args.rf_estimators == 8
        custom = build_parser().parse_args(
            [
                "transform", "pima_indian",
                "--cold-start-episodes", "3",
                "--retrain-every", "5",
                "--component-epochs", "9",
                "--rf-estimators", "12",
            ]
        )
        assert custom.cold_start_episodes == 3
        assert custom.retrain_every == 5
        assert custom.component_epochs == 9
        assert custom.rf_estimators == 12

    def test_transform_session_flags(self):
        args = build_parser().parse_args(
            ["transform", "pima_indian", "--checkpoint", "c.ckpt",
             "--time-budget", "30", "--resume", "r.ckpt"]
        )
        assert args.checkpoint == "c.ckpt"
        assert args.time_budget == 30.0
        assert args.resume == "r.ckpt"

    def test_resume_command_args(self):
        args = build_parser().parse_args(["resume", "r.ckpt", "--time-budget", "5"])
        assert args.checkpoint_file == "r.ckpt"
        assert args.time_budget == 5.0


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cardiovascular" in out
        assert "openml_618" in out

    def test_datasets_task_filter(self, capsys):
        main(["datasets", "--task", "detection"])
        out = capsys.readouterr().out
        assert "thyroid" in out
        assert "pima_indian" not in out

    def test_transform_end_to_end(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "transform",
                "pima_indian",
                "--scale", "0.08",
                "--episodes", "2",
                "--steps", "2",
                "--save-plan", str(plan_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score" in out and "plan" in out
        # The saved plan is valid JSON and re-loadable.
        plan = TransformationPlan.from_json(plan_path.read_text())
        assert plan.n_input_columns == 8

    def test_transform_checkpoint_and_resume_command(self, capsys, tmp_path):
        ckpt = tmp_path / "session.ckpt"
        code = main(
            [
                "transform", "pima_indian",
                "--scale", "0.08",
                "--episodes", "2",
                "--steps", "2",
                "--checkpoint", str(ckpt),
            ]
        )
        assert code == 0
        assert ckpt.exists()
        first = capsys.readouterr().out
        # The finished checkpoint resumes cleanly and reports the same score.
        code = main(["resume", str(ckpt)])
        assert code == 0
        second = capsys.readouterr().out
        score_line = [ln for ln in first.splitlines() if ln.startswith("score")][0]
        assert score_line in second

    def test_transform_resume_flag(self, capsys, tmp_path):
        ckpt = tmp_path / "session.ckpt"
        main(
            ["transform", "pima_indian", "--scale", "0.08", "--episodes", "2",
             "--steps", "2", "--checkpoint", str(ckpt)]
        )
        capsys.readouterr()
        code = main(["transform", "--resume", str(ckpt)])
        assert code == 0
        assert "score" in capsys.readouterr().out

    def test_transform_requires_dataset_or_resume(self, capsys):
        assert main(["transform"]) == 2
        assert "dataset name is required" in capsys.readouterr().err

    def test_experiments_command(self, capsys, tmp_path):
        code = main(
            ["experiments", "--only", "fig11", "--profile", "smoke", "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig11.txt").exists()


class TestRunAll:
    def test_registry_covers_every_paper_artifact(self):
        expected = {"table1", "table2", "table3", "table4"} | {
            f"fig{i}" for i in range(6, 16)
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], out_dir=tmp_path)

    def test_run_selected_writes_report(self, tmp_path, capsys):
        reports = run_experiments(["fig11"], profile_name="smoke", out_dir=tmp_path)
        assert "fig11" in reports
        assert "Seq length" in (tmp_path / "fig11.txt").read_text()
