"""repro.jobs.cache: the durable oracle log under damage and concurrency.

The central claim: a torn or corrupted tail never costs a single earlier
record. The torn-tail test proves it exhaustively — truncation at *every*
byte offset inside the final record."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.jobs.cache import (
    DurableOracleCache,
    encode_record,
    load_durable_entries,
    load_segment,
)
from repro.jobs.chaos import flip_byte, truncate_tail

KEYS = [f"{i:040x}" for i in range(4)]
SCORES = [0.123456789, -1.5, 7.25e-12, 0.9999999999999999]


def _write_segment(path, n=3):
    with open(path, "wb") as fh:
        for key, score in zip(KEYS[:n], SCORES[:n]):
            fh.write(encode_record(key, score))


class TestRecordFraming:
    def test_scores_round_trip_bit_exactly(self, tmp_path):
        path = str(tmp_path / "seg.log")
        _write_segment(path, n=3)
        entries = load_segment(path)
        assert [repr(entries[k]) for k in KEYS[:3]] == [repr(s) for s in SCORES[:3]]

    def test_torn_tail_at_every_byte_offset_of_last_record(self, tmp_path):
        """Chop N bytes off the end for every N inside the last record:
        the damaged record is dropped, every earlier record survives."""
        intact = str(tmp_path / "intact.log")
        _write_segment(intact, n=3)
        last_len = len(encode_record(KEYS[2], SCORES[2]))
        for cut in range(1, last_len + 1):
            path = str(tmp_path / f"torn-{cut}.log")
            _write_segment(path, n=3)
            truncate_tail(path, cut)
            entries = load_segment(path)
            assert KEYS[2] not in entries, f"cut={cut} kept a torn record"
            assert [repr(entries[k]) for k in KEYS[:2]] == [
                repr(s) for s in SCORES[:2]
            ], f"cut={cut} lost an earlier record"

    def test_mid_file_corruption_invalidates_suffix_only(self, tmp_path):
        path = str(tmp_path / "seg.log")
        _write_segment(path, n=3)
        # Flip a byte inside the *second* record's score field.
        rec_len = len(encode_record(KEYS[0], SCORES[0]))
        flip_byte(path, rec_len + 45)
        entries = load_segment(path)
        assert repr(entries[KEYS[0]]) == repr(SCORES[0])
        assert KEYS[1] not in entries and KEYS[2] not in entries

    def test_repair_truncates_back_to_last_valid_record(self, tmp_path):
        path = str(tmp_path / "seg.log")
        _write_segment(path, n=3)
        truncate_tail(path, 5)
        with pytest.warns(RuntimeWarning, match="damaged tail"):
            entries = load_segment(path, repair=True)
        assert set(entries) == set(KEYS[:2])
        # After repair the file is byte-clean: loading again warns nothing
        # and appending works.
        assert load_segment(path) == entries
        with open(path, "ab") as fh:
            fh.write(encode_record(KEYS[3], SCORES[3]))
        assert set(load_segment(path)) == set(KEYS[:2]) | {KEYS[3]}


class TestDurableOracleCache:
    def test_put_appends_and_reopen_reloads(self, tmp_path):
        d = str(tmp_path)
        cache = DurableOracleCache(d, owner="w1")
        cache.put(KEYS[0], SCORES[0])
        cache.put(KEYS[0], SCORES[0])  # redundant put: no extra record
        cache.close()
        assert os.path.getsize(cache.segment_path) == len(
            encode_record(KEYS[0], SCORES[0])
        )
        reopened = DurableOracleCache(d, owner="w2")
        assert repr(reopened.get(KEYS[0])) == repr(SCORES[0])
        reopened.close()

    def test_reader_never_repairs_foreign_segments(self, tmp_path):
        d = str(tmp_path)
        w1 = DurableOracleCache(d, owner="w1")
        w1.put(KEYS[0], SCORES[0])
        w1.put(KEYS[1], SCORES[1])
        w1.close()
        truncate_tail(w1.segment_path, 3)
        size_after_damage = os.path.getsize(w1.segment_path)
        w2 = DurableOracleCache(d, owner="w2")
        # w2 sees the intact prefix but leaves w1's file alone.
        assert repr(w2.get(KEYS[0])) == repr(SCORES[0])
        assert w2.get(KEYS[1]) is None
        assert os.path.getsize(w1.segment_path) == size_after_damage
        w2.close()
        # w1 itself repairs its own tail on reopen.
        with pytest.warns(RuntimeWarning, match="damaged tail"):
            w1b = DurableOracleCache(d, owner="w1")
        assert os.path.getsize(w1b.segment_path) < size_after_damage
        w1b.close()

    def test_concurrent_owner_segments_merge(self, tmp_path):
        d = str(tmp_path)
        a = DurableOracleCache(d, owner="a")
        b = DurableOracleCache(d, owner="b")
        a.put(KEYS[0], SCORES[0])
        b.put(KEYS[1], SCORES[1])
        assert a.refresh() == 1  # folds in b's record
        assert repr(a.get(KEYS[1])) == repr(SCORES[1])
        merged = load_durable_entries(d)
        assert set(merged) == {KEYS[0], KEYS[1]}
        a.close()
        b.close()

    def test_pickling_degrades_to_in_memory_cache(self, tmp_path):
        cache = DurableOracleCache(str(tmp_path), owner="w1")
        cache.put(KEYS[0], SCORES[0])
        clone = pickle.loads(pickle.dumps(cache))
        # Entries travel; durability and owner identity do not.
        assert repr(clone.get(KEYS[0])) == repr(SCORES[0])
        assert clone.segment_path is None
        clone.put(KEYS[1], SCORES[1])  # appends nowhere, stays in memory
        assert set(load_durable_entries(str(tmp_path))) == {KEYS[0]}
        cache.close()

    def test_read_only_cache_never_creates_segments(self, tmp_path):
        cache = DurableOracleCache(str(tmp_path))
        cache.put(KEYS[0], SCORES[0])
        cache.close()
        assert [n for n in os.listdir(tmp_path) if n.endswith(".log")] == []
