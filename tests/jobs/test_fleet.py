"""The job fleet under fire: every run must be bit-identical to the pool.

These tests run real (tiny) searches through the jobfile backend, inject
crashes — SIGKILL mid-episode, frozen heartbeats, corrupted result files,
torn checkpoints — and compare the final ``SweepResult`` field-for-field
against the in-process pool reference. That comparison is the PR's whole
claim: the fleet changes *where* work runs and *how often it restarts*,
never what it computes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.session import CheckpointCorruptError
from repro.jobs import (
    ChaosSpec,
    JobDir,
    SweepGatherError,
    SweepSpec,
    gather,
    init_sweep,
    run_job,
    run_jobfile_sweep,
)
from repro.jobs.chaos import flip_byte, truncate_tail
from repro.obs import MetricsRegistry

SEEDS = [0, 1]


def identity_fields(result) -> tuple:
    return (
        result.plan.to_json(),
        repr(result.base_score),
        repr(result.best_score),
        [r.deterministic_dict() for r in result.history],
    )


def assert_matches_pool(sweep, pool_reference, seeds=SEEDS):
    for seed in seeds:
        assert identity_fields(sweep.results[seed]) == identity_fields(
            pool_reference.results[seed]
        ), f"seed {seed} diverged from the pool backend"


@pytest.fixture
def initialized(tmp_path, problem, tiny_config):
    d = str(tmp_path / "sweep")
    X, y = problem
    spec = SweepSpec(
        task="classification", seeds=SEEDS, config=tiny_config, lease_timeout=5.0
    )
    init_sweep(d, X, y, spec)
    return d


class TestWorkerPath:
    def test_direct_workers_match_pool_and_are_idempotent(
        self, initialized, pool_reference
    ):
        assert run_job(initialized, 0) == "done"
        assert run_job(initialized, 0) == "already-done"
        assert run_job(initialized, 1) == "done"
        assert_matches_pool(gather(initialized), pool_reference)

    def test_worker_rejects_unknown_seed(self, initialized):
        with pytest.raises(ValueError, match="not part of this sweep"):
            run_job(initialized, 99)

    def test_torn_checkpoint_is_quarantined_not_fatal(
        self, initialized, pool_reference
    ):
        """External damage to a checkpoint restarts the job from scratch —
        with a warning, a ``.corrupt`` quarantine file, and an unchanged
        final result."""
        assert run_job(initialized, 0) == "done"
        job = JobDir(initialized, 0)
        truncate_tail(job.checkpoint_path, os.path.getsize(job.checkpoint_path) // 2)
        job.discard_result()
        with pytest.warns(RuntimeWarning, match="discarding unreadable checkpoint"):
            assert run_job(initialized, 0) == "done"
        assert os.path.exists(job.checkpoint_path + ".corrupt")
        assert run_job(initialized, 1) == "done"
        assert_matches_pool(gather(initialized), pool_reference)


class TestSupervisorChaos:
    def test_sigkill_mid_episode_then_retry_is_bit_identical(
        self, problem, tiny_config, pool_reference
    ):
        """The ISSUE's headline chaos test: SIGKILL a worker mid-episode
        (after episode 1's checkpoint, before episode 2's), re-run, and
        demand the gathered sweep match the pool exactly."""
        X, y = problem

        def chaos(seed, attempt):
            if seed == 0 and attempt == 0:
                return ChaosSpec(kill_at_global_step=3)
            return None

        metrics = MetricsRegistry()
        sweep = run_jobfile_sweep(
            X, y, seeds=SEEDS, config=tiny_config, n_workers=2,
            lease_timeout=5.0, chaos_factory=chaos, metrics=metrics,
        )
        assert_matches_pool(sweep, pool_reference)
        assert metrics.counter("jobs_retries_total").value >= 1
        assert metrics.counter("jobs_completed_total").value == len(SEEDS)

    def test_frozen_heartbeat_is_reclaimed_and_retried(
        self, problem, tiny_config, tmp_path, pool_reference
    ):
        """A wedged worker (hung mid-episode, heartbeat frozen) must lose
        its lease to the supervisor and be replaced."""
        from repro.jobs.supervisor import JobFleetSupervisor

        X, y = problem
        d = str(tmp_path / "sweep")
        # A short lease timeout in the spec makes the reclaim quick while
        # keeping healthy workers safe: heartbeats renew at timeout / 4.
        spec = SweepSpec(
            task="classification", seeds=SEEDS, config=tiny_config,
            lease_timeout=0.75,
        )
        init_sweep(d, X, y, spec)

        def chaos(seed, attempt):
            if seed == 1 and attempt == 0:
                return ChaosSpec(
                    hang_at_global_step=2, hang_seconds=60.0, freeze_heartbeat=True
                )
            return None

        metrics = MetricsRegistry()
        supervisor = JobFleetSupervisor(
            d, n_workers=2, chaos_factory=chaos, metrics=metrics
        )
        states = supervisor.run()
        assert set(states.values()) == {"done"}
        assert metrics.counter("jobs_lease_reclaims_total").value >= 1
        assert_matches_pool(gather(d), pool_reference)

    def test_corrupt_result_is_discarded_and_recomputed(
        self, initialized, pool_reference
    ):
        from repro.jobs.supervisor import JobFleetSupervisor

        assert run_job(initialized, 0) == "done"
        job = JobDir(initialized, 0)
        flip_byte(job.result_path, -3)
        with pytest.raises(SweepGatherError):
            gather(initialized)
        JobFleetSupervisor(initialized, n_workers=2).run()
        assert_matches_pool(gather(initialized), pool_reference)


class TestGatherFailurePolicy:
    @pytest.fixture
    def partially_failed(self, problem, tiny_config, tmp_path):
        """A persistent sweep dir where seed 1 exhausted its retries."""
        from repro.jobs.supervisor import JobFleetSupervisor

        X, y = problem
        d = str(tmp_path / "sweep")
        spec = SweepSpec(
            task="classification", seeds=SEEDS, config=tiny_config,
            lease_timeout=5.0, max_retries=0,
        )
        init_sweep(d, X, y, spec)

        def chaos(seed, attempt):
            return ChaosSpec(raise_at_global_step=1) if seed == 1 else None

        states = JobFleetSupervisor(d, n_workers=2, chaos_factory=chaos).run()
        assert states == {0: "done", 1: "failed"}
        return d

    def test_gather_raises_structured_error(self, partially_failed):
        with pytest.raises(SweepGatherError) as excinfo:
            gather(partially_failed)
        err = excinfo.value
        assert err.failed_seeds == [1]
        assert err.completed_seeds == [0]
        assert "seed 1" in str(err) and "permanently failed" in str(err)
        assert "allow_partial" in str(err)

    def test_allow_partial_returns_completed_seeds(
        self, partially_failed, pool_reference
    ):
        sweep = gather(partially_failed, allow_partial=True)
        assert sweep.is_partial
        assert sweep.failed_seeds == [1]
        assert sweep.seeds == [0]
        assert "PARTIAL" in sweep.summary()
        assert_matches_pool(sweep, pool_reference, seeds=[0])

    def test_supervisor_rerun_heals_a_failed_sweep(
        self, partially_failed, pool_reference
    ):
        """`run(reset_failed=True)` without chaos completes the failed seed
        and the healed gather matches the pool bit-for-bit."""
        from repro.jobs.supervisor import JobFleetSupervisor

        states = JobFleetSupervisor(partially_failed, n_workers=2).run(
            reset_failed=True
        )
        assert set(states.values()) == {"done"}
        assert_matches_pool(gather(partially_failed), pool_reference)


class TestApiIntegration:
    def test_api_sweep_backend_jobfile_matches_pool(
        self, problem, tiny_config, pool_reference
    ):
        from repro import api

        X, y = problem
        sweep = api.sweep(
            X, y, seeds=SEEDS, config=tiny_config, n_jobs=2, backend="jobfile"
        )
        assert_matches_pool(sweep, pool_reference)

    def test_api_sweep_rejects_pool_only_arguments(self, problem, tiny_config):
        from repro import api

        X, y = problem
        with pytest.raises(ValueError, match="callbacks_factory is not supported"):
            api.sweep(
                X, y, seeds=SEEDS, config=tiny_config, backend="jobfile",
                callbacks_factory=lambda name: [],
            )
        with pytest.raises(ValueError, match="time_budget is not supported"):
            api.sweep(
                X, y, seeds=SEEDS, config=tiny_config, backend="jobfile",
                time_budget=10.0,
            )
        with pytest.raises(ValueError, match="unknown sweep backend"):
            api.sweep(X, y, seeds=SEEDS, config=tiny_config, backend="slurm")

    def test_persistent_dir_resume_skips_completed_seeds(
        self, problem, tiny_config, tmp_path, pool_reference
    ):
        """Re-running over a persistent sweep dir is a cheap no-op for
        completed seeds (crash-resume at the whole-sweep level)."""
        from repro import api

        X, y = problem
        d = str(tmp_path / "persist")
        first = api.sweep(
            X, y, seeds=SEEDS, config=tiny_config, backend="jobfile", sweep_dir=d
        )
        assert_matches_pool(first, pool_reference)
        metrics = MetricsRegistry()
        again = run_jobfile_sweep(
            X, y, seeds=SEEDS, config=tiny_config, sweep_dir=d, metrics=metrics
        )
        assert_matches_pool(again, pool_reference)
        # Nothing had to be recomputed: the supervisor saw two done jobs.
        assert metrics.counter("jobs_spawned_total").value == 0

    def test_mismatched_spec_is_rejected(self, problem, tiny_config, tmp_path):
        X, y = problem
        d = str(tmp_path / "persist")
        run_jobfile_sweep(X, y, seeds=SEEDS, config=tiny_config, sweep_dir=d)
        with pytest.raises(ValueError, match="does not match"):
            run_jobfile_sweep(X, y, seeds=[5, 6], config=tiny_config, sweep_dir=d)


class TestCheckpointCorruptionRegression:
    def test_resume_names_the_corruption(self, problem, tiny_config, tmp_path):
        """The satellite regression: a torn checkpoint raises a clear
        CheckpointCorruptError, not a bare unpickling backtrace."""
        from repro.core.session import SearchSession

        X, y = problem
        path = str(tmp_path / "ckpt.pkl")
        session = SearchSession(X, y, config=tiny_config)
        session.run(until=2)
        session.checkpoint(path)
        truncate_tail(path, os.path.getsize(path) // 2)
        with pytest.raises(CheckpointCorruptError, match="truncated or corrupt"):
            SearchSession.resume(path)
